"""Per-instance power parameters and block summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import TraceError
from ..netlist import GateNetlist
from ..tech import Technology, TECH90

#: Width of the CMOS switching-current packet, seconds.
CMOS_PULSE_WIDTH = 100e-12
#: Width of the MCML switching disturbance, seconds.
MCML_BLIP_WIDTH = 50e-12
#: Amplitude of the (data-independent) MCML switching disturbance as a
#: fraction of the cell's tail current.
MCML_BLIP_FRACTION = 0.05


@dataclass(frozen=True)
class InstancePower:
    """Calibrated current contribution of one placed cell."""

    name: str
    style: str
    #: static supply current while powered, amperes
    static: float
    #: charge per output toggle (CMOS) or per evaluate phase (WDDL),
    #: coulombs
    toggle_charge: float
    #: data-dependent residual: extra static current when the output is
    #: high (MCML mismatch term, amperes), or the signed true/false rail
    #: charge imbalance (WDDL, coulombs); zero for CMOS
    residual: float
    #: sleep-mode leakage (PG-MCML), amperes
    sleep_leak: float
    has_sleep: bool


class BlockPowerModel:
    """Current model of one mapped netlist.

    The mismatch residuals are drawn from a seeded generator: the same
    seed models the same fabricated die, so an attack campaign sees a
    consistent leakage pattern across traces (as a real chip would),
    while different seeds model different dies.
    """

    def __init__(self, netlist: GateNetlist, tech: Technology = TECH90,
                 seed: int = 0):
        self.netlist = netlist
        self.tech = tech
        self.style = netlist.library.style
        rng = np.random.default_rng(seed)
        self.instances: Dict[str, InstancePower] = {}
        for inst in netlist.instances.values():
            if inst.cell.pseudo:
                continue
            power = inst.cell.power
            if power.style == "cmos":
                self.instances[inst.name] = InstancePower(
                    name=inst.name, style="cmos",
                    static=power.leak,
                    toggle_charge=power.energy_toggle / tech.vdd,
                    residual=0.0, sleep_leak=power.leak,
                    has_sleep=False)
            elif power.style == "wddl":
                # The per-evaluation charge is data-independent; the
                # per-die rail imbalance (a signed charge) is the whole
                # leakage channel — see repro.cells.wddl.
                self.instances[inst.name] = InstancePower(
                    name=inst.name, style="wddl",
                    static=power.leak,
                    toggle_charge=power.energy_toggle / tech.vdd,
                    residual=float(rng.normal(0.0, power.residual_sigma)),
                    sleep_leak=power.leak,
                    has_sleep=False)
            else:
                residual = float(rng.normal(0.0, power.residual_sigma))
                self.instances[inst.name] = InstancePower(
                    name=inst.name, style=power.style,
                    static=power.iss,
                    toggle_charge=0.0,
                    residual=residual,
                    sleep_leak=power.sleep_leak,
                    has_sleep=power.has_sleep)

    # -- static aggregates ---------------------------------------------------

    def static_current(self, asleep: bool = False) -> float:
        """Total quiescent supply current.

        For a PG-MCML block, ``asleep`` selects sleep mode: gated cells
        fall to their sleep leakage while the CMOS sleep-tree buffers
        keep their (static CMOS) leakage.
        """
        total = 0.0
        for ip in self.instances.values():
            if asleep:
                if ip.has_sleep:
                    total += ip.sleep_leak
                elif ip.style in ("cmos", "wddl"):
                    total += ip.static
                else:
                    raise TraceError(
                        "conventional MCML cells cannot sleep; only "
                        "PG-MCML blocks support asleep=True")
            else:
                total += ip.static
        return total

    def average_power(self, awake_fraction: float = 1.0,
                      toggle_rate: float = 0.0) -> float:
        """Long-run average power in watts.

        ``awake_fraction`` is the fraction of time the block is powered
        (always 1 for CMOS and conventional MCML); ``toggle_rate`` is the
        average output-toggle frequency per CMOS instance in Hz.
        """
        if not 0.0 <= awake_fraction <= 1.0:
            raise TraceError("awake fraction must be within [0, 1]")
        vdd = self.tech.vdd
        total = 0.0
        for ip in self.instances.values():
            if ip.style in ("cmos", "wddl"):
                total += vdd * (ip.static + ip.toggle_charge * toggle_rate)
            elif ip.has_sleep:
                total += vdd * (ip.static * awake_fraction
                                + ip.sleep_leak * (1.0 - awake_fraction))
            else:
                total += vdd * ip.static
        return total

    def residual_for(self, inst_name: str) -> float:
        return self.instances[inst_name].residual

    def arrival_times(self, t_apply: float = 0.0) -> Dict[str, float]:
        """Static output-arrival time per instance (inputs at t_apply).

        Used by the differential current composer: an MCML gate's rails
        both slew when it evaluates, drawing a charge packet that is
        data-independent to first order — so its timing comes from
        static analysis, not from the (data-dependent) toggle stream.
        Cached: the profile is a property of the netlist, not the trace.
        """
        if getattr(self, "_arrivals", None) is not None:
            return self._arrivals
        arrivals: Dict[str, float] = {}
        net_time: Dict[str, float] = {
            n: t_apply for n in self.netlist.primary_inputs}
        for inst in self.netlist.sequential_instances():
            delay = self.netlist.instance_delay(inst)
            arrivals[inst.name] = t_apply + delay
            for pin in inst.cell.outputs:
                net_time[inst.pins[pin]] = t_apply + delay
        for inst in self.netlist.levelize():
            delay = self.netlist.instance_delay(inst)
            worst = max((net_time.get(n, t_apply)
                         for n in inst.input_nets()), default=t_apply)
            arrivals[inst.name] = worst + delay
            for pin in inst.cell.outputs:
                net_time[inst.pins[pin]] = worst + delay
        self._arrivals = arrivals
        return arrivals

    def __repr__(self) -> str:
        return (f"BlockPowerModel({self.netlist.name}/{self.style}: "
                f"{len(self.instances)} cells, "
                f"Istatic={self.static_current() * 1e3:.3g} mA)")
