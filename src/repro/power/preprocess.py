"""Trace preprocessing: the attacker's standard toolbox.

Real campaigns rarely attack raw traces.  This module provides the
common preprocessing steps — mean removal, per-sample standardisation,
window selection, sample compression (integration), and alignment by
cross-correlation — with the same (n_traces, n_samples) array
convention used by :mod:`repro.sca`.

These matter for the reproduction's claims: compression and alignment
are exactly the tricks that squeeze the most out of a 1 µA probe, so
the MCML resistance results are checked against *preprocessed* traces
too (``benchmarks/bench_fig6.py``'s resolution ablation and the tests
here).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import TraceError


def _check(traces: np.ndarray) -> np.ndarray:
    arr = np.asarray(traces, dtype=float)
    if arr.ndim != 2 or arr.size == 0:
        raise TraceError("traces must be a non-empty 2-D array")
    return arr


def center(traces: np.ndarray) -> np.ndarray:
    """Remove the per-sample mean (the static current disappears)."""
    arr = _check(traces)
    return arr - arr.mean(axis=0, keepdims=True)


def standardize(traces: np.ndarray, epsilon: float = 1e-18) -> np.ndarray:
    """Per-sample zero-mean / unit-variance normalisation.

    Samples with (near-)zero variance are left at zero rather than
    amplified — a quantised flat region carries no information.
    """
    arr = center(traces)
    std = arr.std(axis=0, keepdims=True)
    return np.where(std > epsilon, arr / np.maximum(std, epsilon), 0.0)


def window(traces: np.ndarray, start: int, stop: int) -> np.ndarray:
    """Select a sample window [start, stop)."""
    arr = _check(traces)
    if not 0 <= start < stop <= arr.shape[1]:
        raise TraceError(
            f"window [{start}, {stop}) outside 0..{arr.shape[1]}")
    return arr[:, start:stop]


def compress(traces: np.ndarray, factor: int) -> np.ndarray:
    """Integrate consecutive samples in groups of ``factor``.

    The classic counter to amplitude quantisation: summing k quantised
    samples recovers up to sqrt(k) of the resolution lost per sample.
    Trailing samples that do not fill a group are dropped.
    """
    arr = _check(traces)
    if factor < 1:
        raise TraceError("compression factor must be >= 1")
    if factor == 1:
        return arr.copy()
    n = (arr.shape[1] // factor) * factor
    if n == 0:
        raise TraceError("trace shorter than one compression group")
    return arr[:, :n].reshape(arr.shape[0], n // factor, factor).sum(axis=2)


def align(traces: np.ndarray, reference: Optional[np.ndarray] = None,
          max_shift: int = 8) -> Tuple[np.ndarray, np.ndarray]:
    """Align traces to a reference by integer-shift cross-correlation.

    Returns ``(aligned, shifts)``.  Samples shifted in from outside the
    window are filled with the trace's own edge value.  Simulated traces
    are already aligned; this exists for the jittered-acquisition
    studies and is validated by re-aligning artificially shifted data.
    """
    arr = _check(traces)
    if max_shift < 0:
        raise TraceError("max_shift must be non-negative")
    ref = arr.mean(axis=0) if reference is None else \
        np.asarray(reference, dtype=float)
    if ref.shape != (arr.shape[1],):
        raise TraceError("reference length must match the sample count")
    ref_c = ref - ref.mean()
    n = arr.shape[1]
    # One batched matmul instead of a per-trace python loop:
    # dot(roll(row_c, s), ref_c) == dot(row_c, roll(ref_c, -s)), so
    # scores[i, j] is trace i against candidate shift j.  argmax takes
    # the first maximum, matching the loop's strict-improvement
    # tie-break (the most negative shift wins a tie).
    shift_axis = np.arange(-max_shift, max_shift + 1)
    rolled_refs = np.stack([np.roll(ref_c, -s) for s in shift_axis])
    arr_c = arr - arr.mean(axis=1, keepdims=True)
    scores = arr_c @ rolled_refs.T
    shifts = shift_axis[np.argmax(scores, axis=1)]
    # roll-with-edge-fill is a clipped gather: sample k of the output is
    # input sample k - shift, clamped to the trace ends.
    idx = np.clip(np.arange(n)[None, :] - shifts[:, None], 0, n - 1)
    aligned = np.take_along_axis(arr, idx, axis=1)
    return aligned, shifts


def add_jitter(traces: np.ndarray, max_shift: int,
               seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Random integer misalignment (a jittery trigger), for studies.

    Returns ``(jittered, true_shifts)``; :func:`align` should undo it.
    """
    arr = _check(traces)
    if max_shift < 0:
        raise TraceError("max_shift must be non-negative")
    rng = np.random.default_rng(seed)
    shifts = rng.integers(-max_shift, max_shift + 1, size=arr.shape[0])
    out = np.empty_like(arr)
    for i, (row, shift) in enumerate(zip(arr, shifts)):
        rolled = np.roll(row, int(shift))
        if shift > 0:
            rolled[:shift] = row[0]
        elif shift < 0:
            rolled[shift:] = row[-1]
        out[i] = rolled
    return out, shifts
