"""Current-trace synthesis from logic activity.

:func:`activity_current` converts the transition stream of an
event-driven simulation into a sampled supply-current waveform, per the
style-specific contribution rules of :mod:`repro.power.models`:

* CMOS: each output toggle deposits its charge packet as a triangular
  pulse of width :data:`~repro.power.models.CMOS_PULSE_WIDTH` — exactly
  the picture a fast-SPICE simulator paints for a switching static gate;
* MCML styles: the supply current is the (constant) sum of tail
  currents, plus each instance's mismatch residual whenever its output
  is high, plus a small symmetric blip at every toggle.

The sampled result is intentionally *pre-measurement*: noise and the
1 µA instrument quantisation live in :mod:`repro.power.noise` so studies
can examine both sides of the probe.

Trace composition is the hot path of every attack campaign (hundreds of
thousands of pulse deposits per Fig. 6 run), so the pulse deposits and
the residual level walk are batched numpy operations, and the entire
data-independent part of a differential trace (static tails + the
evaluation hum) is available pre-composed through
:func:`differential_baseline` for reuse across a whole campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import TraceError
from ..netlist import SimulationTrace
from .models import (
    BlockPowerModel,
    CMOS_PULSE_WIDTH,
    MCML_BLIP_FRACTION,
    MCML_BLIP_WIDTH,
)


@dataclass(frozen=True)
class TraceGrid:
    """A uniform sampling grid for current traces."""

    t0: float
    t1: float
    dt: float

    def __post_init__(self) -> None:
        if self.dt <= 0.0 or self.t1 <= self.t0:
            raise TraceError("grid must have positive span and step")

    @property
    def n(self) -> int:
        return int(round((self.t1 - self.t0) / self.dt)) + 1

    def times(self) -> np.ndarray:
        return self.t0 + self.dt * np.arange(self.n)

    def index(self, t: float) -> float:
        return (t - self.t0) / self.dt


def _deposit_triangles(samples: np.ndarray, grid: TraceGrid,
                       times: np.ndarray, charges: np.ndarray,
                       width: float) -> None:
    """Add one triangular pulse per (time, charge) pair, batched.

    Each pulse rises linearly from ``t`` to its apex at ``t + width/2``
    and falls back to zero at ``t + width``.  All pulses share ``width``
    so every event touches the same small number of grid slots, which
    lets the whole batch go through one fancy-indexed accumulation
    instead of a Python loop per event.
    """
    times = np.asarray(times, dtype=float)
    charges = np.asarray(charges, dtype=float)
    if times.size == 0:
        return
    half = width / 2.0
    peaks = 2.0 * charges / width
    first = np.floor((times - grid.t0) / grid.dt).astype(np.int64)
    span = int(np.ceil(width / grid.dt)) + 2
    ks = first[:, None] + np.arange(span)[None, :]
    u = (grid.t0 + ks * grid.dt) - times[:, None]
    rising = peaks[:, None] * u / half
    falling = peaks[:, None] * (width - u) / half
    contrib = np.where(u <= half, rising, falling)
    valid = (ks >= 0) & (ks < samples.size) & (u >= 0.0) & (u <= width)
    samples += np.bincount(ks[valid], weights=contrib[valid],
                           minlength=samples.size)


def wddl_baseline(model: BlockPowerModel, grid: TraceGrid,
                  include_static: bool = True) -> np.ndarray:
    """The data-independent part of a WDDL trace.

    Every evaluate phase charges exactly one rail of every pair — that
    constant switching count is the countermeasure.  So the baseline is
    the CMOS leakage floor plus one mean-charge packet per instance at
    its static arrival time, identical for every trace of a campaign.
    """
    if model.style != "wddl":
        raise TraceError(
            f"wddl_baseline applies to WDDL blocks, not {model.style!r}")
    samples = np.zeros(grid.n)
    if include_static:
        samples += model.static_current()
    times, charges = [], []
    for inst_name, arrival in model.arrival_times().items():
        ip = model.instances.get(inst_name)
        if ip is None:
            continue
        times.append(arrival)
        charges.append(ip.toggle_charge)
    _deposit_triangles(samples, grid, np.asarray(times),
                       np.asarray(charges), CMOS_PULSE_WIDTH)
    return samples


def wddl_current(model: BlockPowerModel, values, grid: TraceGrid,
                 include_static: bool = True,
                 baseline: Optional[np.ndarray] = None) -> np.ndarray:
    """Supply-current samples for one WDDL evaluate phase.

    ``values`` maps instance name -> settled (single-rail) output value:
    True means the true rail charged this cycle, False the false rail.
    The data dependence is each instance's rail-imbalance charge, signed
    by which rail won — added on top of the precomposed
    :func:`wddl_baseline` at the instance's static arrival time.  There
    is no transition stream: WDDL evaluates every gate exactly once per
    precharge/evaluate cycle by construction.
    """
    if model.style != "wddl":
        raise TraceError(
            f"wddl_current applies to WDDL blocks, not {model.style!r}")
    if baseline is not None:
        if baseline.shape != (grid.n,):
            raise TraceError(
                f"baseline has {baseline.shape} samples, grid wants "
                f"({grid.n},)")
        samples = baseline.copy()
    else:
        samples = wddl_baseline(model, grid, include_static)
    times, charges = [], []
    for inst_name, arrival in model.arrival_times().items():
        ip = model.instances.get(inst_name)
        if ip is None or ip.residual == 0.0:
            continue
        v = values.get(inst_name)
        if v is None:
            raise TraceError(
                f"no settled output value for instance {inst_name!r}")
        times.append(arrival)
        charges.append(ip.residual if v else -ip.residual)
    _deposit_triangles(samples, grid, np.asarray(times),
                       np.asarray(charges), CMOS_PULSE_WIDTH)
    return samples


def differential_baseline(model: BlockPowerModel, grid: TraceGrid,
                          include_static: bool = True) -> np.ndarray:
    """The data-independent part of a differential (MCML-style) trace.

    Constant tail currents plus the evaluation hum: when an MCML gate
    evaluates, BOTH output rails slew (one to Vdd, one to Vdd-swing)
    whatever the data, so the hum's timing comes from static arrival
    analysis and its amplitude is constant — "power consumption almost
    independent from the specific input patterns" (§1).  The baseline is
    identical for every trace of a campaign, so acquisition composes it
    once and adds only the per-trace mismatch residuals on top.
    """
    if model.style == "cmos":
        raise TraceError("CMOS traces have no data-independent baseline")
    if model.style == "wddl":
        raise TraceError("WDDL blocks compose through wddl_baseline")
    samples = np.zeros(grid.n)
    if include_static:
        samples += model.static_current()
    times, charges = [], []
    for inst_name, arrival in model.arrival_times().items():
        ip = model.instances.get(inst_name)
        if ip is None or ip.style == "cmos":
            continue
        times.append(arrival)
        charges.append(MCML_BLIP_FRACTION * ip.static * MCML_BLIP_WIDTH)
    _deposit_triangles(samples, grid, np.asarray(times),
                       np.asarray(charges), MCML_BLIP_WIDTH)
    return samples


def _residual_levels(model: BlockPowerModel, trace: SimulationTrace,
                     grid: TraceGrid) -> Optional[np.ndarray]:
    """Running mismatch-residual sum sampled on the grid (None if flat)."""
    events = []  # (time, delta)
    for tr in trace.transitions:
        if tr.instance is None:
            continue
        ip = model.instances.get(tr.instance)
        if ip is None or ip.residual == 0.0:
            continue
        events.append((tr.time, ip.residual if tr.value else -ip.residual))
    if not events:
        return None
    events.sort()
    event_times = np.array([t for t, _ in events])
    cumulative = np.cumsum([d for _, d in events])
    idx = np.searchsorted(event_times, grid.times(), side="right")
    return np.where(idx > 0, cumulative[np.maximum(idx - 1, 0)], 0.0)


def activity_current(model: BlockPowerModel, trace: SimulationTrace,
                     grid: TraceGrid,
                     include_static: bool = True,
                     baseline: Optional[np.ndarray] = None) -> np.ndarray:
    """Supply-current samples over ``grid`` for one activity trace.

    ``baseline``, for differential styles only, is a precomputed
    :func:`differential_baseline` (with matching ``include_static``) to
    reuse across many traces of one campaign; it is never mutated.
    """
    netlist = model.netlist

    if model.style == "wddl":
        raise TraceError(
            "WDDL traces are phase-composed from settled values, not a "
            "transition stream; use wddl_current")
    if model.style == "cmos":
        if baseline is not None:
            raise TraceError("baseline reuse only applies to MCML styles")
        samples = np.zeros(grid.n)
        if include_static:
            samples += model.static_current()
        times, charges = [], []
        for tr in trace.transitions:
            if tr.instance is None:
                continue
            ip = model.instances.get(tr.instance)
            if ip is None:
                continue
            # Charge scales with the driven load relative to the cell's
            # characterisation load (its own input): bigger fanout, more
            # charge per toggle.
            inst = netlist.instances[tr.instance]
            load = netlist.load_cap(tr.net)
            ref = max(inst.cell.input_cap, 1e-18)
            times.append(tr.time)
            charges.append(ip.toggle_charge * max(load / ref, 0.25))
        _deposit_triangles(samples, grid, np.asarray(times),
                           np.asarray(charges), CMOS_PULSE_WIDTH)
        return samples

    if baseline is not None:
        if baseline.shape != (grid.n,):
            raise TraceError(
                f"baseline has {baseline.shape} samples, grid wants "
                f"({grid.n},)")
        samples = baseline.copy()
    else:
        samples = differential_baseline(model, grid, include_static)
    levels = _residual_levels(model, trace, grid)
    if levels is not None:
        samples += levels
    return samples


def trace_matrix(model: BlockPowerModel, traces, grid: TraceGrid,
                 include_static: bool = True) -> np.ndarray:
    """Stack several activity traces into an (n_traces, n_samples) array.

    For differential styles the shared data-independent baseline is
    composed once for the whole batch.
    """
    traces = list(traces)
    if not traces:
        raise TraceError("no traces supplied")
    baseline = None
    if model.style != "cmos":
        baseline = differential_baseline(model, grid, include_static)
    rows = [activity_current(model, t, grid, include_static,
                             baseline=baseline) for t in traces]
    return np.vstack(rows)
