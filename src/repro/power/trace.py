"""Current-trace synthesis from logic activity.

:func:`activity_current` converts the transition stream of an
event-driven simulation into a sampled supply-current waveform, per the
style-specific contribution rules of :mod:`repro.power.models`:

* CMOS: each output toggle deposits its charge packet as a triangular
  pulse of width :data:`~repro.power.models.CMOS_PULSE_WIDTH` — exactly
  the picture a fast-SPICE simulator paints for a switching static gate;
* MCML styles: the supply current is the (constant) sum of tail
  currents, plus each instance's mismatch residual whenever its output
  is high, plus a small symmetric blip at every toggle.

The sampled result is intentionally *pre-measurement*: noise and the
1 µA instrument quantisation live in :mod:`repro.power.noise` so studies
can examine both sides of the probe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TraceError
from ..netlist import SimulationTrace
from .models import (
    BlockPowerModel,
    CMOS_PULSE_WIDTH,
    MCML_BLIP_FRACTION,
    MCML_BLIP_WIDTH,
)


@dataclass(frozen=True)
class TraceGrid:
    """A uniform sampling grid for current traces."""

    t0: float
    t1: float
    dt: float

    def __post_init__(self) -> None:
        if self.dt <= 0.0 or self.t1 <= self.t0:
            raise TraceError("grid must have positive span and step")

    @property
    def n(self) -> int:
        return int(round((self.t1 - self.t0) / self.dt)) + 1

    def times(self) -> np.ndarray:
        return self.t0 + self.dt * np.arange(self.n)

    def index(self, t: float) -> float:
        return (t - self.t0) / self.dt


def _deposit_triangle(samples: np.ndarray, grid: TraceGrid, t: float,
                      charge: float, width: float) -> None:
    """Add a triangular current pulse carrying ``charge`` at time ``t``."""
    peak = 2.0 * charge / width
    half = width / 2.0
    apex = t + half
    for k in range(int(np.floor(grid.index(t))),
                   int(np.ceil(grid.index(t + width))) + 1):
        if 0 <= k < samples.size:
            tk = grid.t0 + k * grid.dt
            if t <= tk <= apex:
                samples[k] += peak * (tk - t) / half
            elif apex < tk <= t + width:
                samples[k] += peak * (t + width - tk) / half


def activity_current(model: BlockPowerModel, trace: SimulationTrace,
                     grid: TraceGrid,
                     include_static: bool = True) -> np.ndarray:
    """Supply-current samples over ``grid`` for one activity trace."""
    samples = np.zeros(grid.n)
    netlist = model.netlist

    if model.style == "cmos":
        if include_static:
            samples += model.static_current()
        for tr in trace.transitions:
            if tr.instance is None:
                continue
            ip = model.instances.get(tr.instance)
            if ip is None:
                continue
            # Charge scales with the driven load relative to the cell's
            # characterisation load (its own input): bigger fanout, more
            # charge per toggle.
            inst = netlist.instances[tr.instance]
            load = netlist.load_cap(tr.net)
            ref = max(inst.cell.input_cap, 1e-18)
            scale = max(load / ref, 0.25)
            _deposit_triangle(samples, grid, tr.time,
                              ip.toggle_charge * scale, CMOS_PULSE_WIDTH)
        return samples

    # Differential styles: constant tails + the (data-independent)
    # evaluation hum + the mismatch residuals.  When an MCML gate
    # evaluates, BOTH output rails slew (one to Vdd, one to Vdd-swing)
    # whatever the data, so the hum's timing comes from static arrival
    # analysis and its amplitude is constant — "power consumption almost
    # independent from the specific input patterns" (§1).
    if include_static:
        samples += model.static_current()
    for inst_name, arrival in model.arrival_times().items():
        ip = model.instances.get(inst_name)
        if ip is None or ip.style == "cmos":
            continue
        _deposit_triangle(
            samples, grid, arrival,
            MCML_BLIP_FRACTION * ip.static * MCML_BLIP_WIDTH, MCML_BLIP_WIDTH)
    # State-dependent residual: walk transitions keeping the running sum.
    times = grid.times()
    residual_events = []  # (time, delta)
    for tr in trace.transitions:
        if tr.instance is None:
            continue
        ip = model.instances.get(tr.instance)
        if ip is None or ip.residual == 0.0:
            continue
        delta = ip.residual if tr.value else -ip.residual
        residual_events.append((tr.time, delta))
    if residual_events:
        residual_events.sort()
        level = 0.0
        idx = 0
        levels = np.zeros(grid.n)
        for k, tk in enumerate(times):
            while idx < len(residual_events) and residual_events[idx][0] <= tk:
                level += residual_events[idx][1]
                idx += 1
            levels[k] = level
        samples += levels
    return samples


def trace_matrix(model: BlockPowerModel, traces, grid: TraceGrid,
                 include_static: bool = True) -> np.ndarray:
    """Stack several activity traces into an (n_traces, n_samples) array."""
    rows = [activity_current(model, t, grid, include_static) for t in traces]
    if not rows:
        raise TraceError("no traces supplied")
    return np.vstack(rows)
