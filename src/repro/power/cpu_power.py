"""Instruction-level power model of the OpenRISC-class core.

The paper's system context: AES runs in *software* on a CMOS processor,
and only the custom functional unit is differential.  To reason about
the whole system's side channel we need the processor's own leakage —
the classic instruction-level model where each executed instruction
draws a base cost plus Hamming-weight terms for the data it moves
(register writeback, memory traffic).  This is the model behind every
software-CPA paper since Kocher.

Two knobs capture the ISE's effect:

* ``protected_sbox`` — the ``l.sbox`` *computation* happens inside the
  differential unit: its table-lookup leakage disappears (replaced by
  the MCML residual scale);
* ``protected_writeback`` — whether the ISE result's write into the
  register file is also shielded (differential register/pipeline
  path, as in the paper's macro which contains the operand latches).
  With a CMOS register file the S-box *output* still leaks on
  writeback — the nuance the ISE literature [12, 14] wrestles with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cpu import CPU
from ..cpu.isa import Instruction
from ..errors import TraceError

#: Default per-term current scales, amperes per Hamming-weight unit.
ALPHA_WRITEBACK = 8e-6
ALPHA_MEMORY = 6e-6
#: Base current per executed instruction, amperes.
BASE_CURRENT = 150e-6
#: Residual scale of a protected (differential) operation.
PROTECTED_RESIDUAL = 0.05e-6


def _hw(value: int) -> int:
    return bin(value & 0xFFFFFFFF).count("1")


@dataclass
class CpuLeakageModel:
    """Per-cycle current samples from an instruction stream."""

    protected_sbox: bool = False
    protected_writeback: bool = False
    noise_sigma: float = 2e-6
    seed: int = 0

    def __post_init__(self) -> None:
        # One stateful generator for the model's lifetime: every trace
        # gets fresh noise (identical noise across traces would cancel
        # in a correlation attack and fake perfect leakage).
        self._rng = np.random.default_rng(self.seed)

    #: Mnemonics that do not write a general-purpose register.
    _NO_WRITEBACK = frozenset({
        "l.sw", "l.sb", "l.nop", "l.j", "l.bf", "l.bnf", "l.jr",
        "l.sfeq", "l.sfne", "l.sfgtu", "l.sfgeu", "l.sfltu", "l.sfleu",
    })

    def instruction_leak(self, cpu: CPU, inst: Instruction) -> float:
        """Data-dependent current of one just-executed instruction."""
        mn = inst.mnemonic
        leak = BASE_CURRENT
        if mn == "l.sbox":
            result_hw = _hw(cpu.regs[inst.rd])
            # The lookup itself: differential unit or CMOS datapath.
            scale = (PROTECTED_RESIDUAL if self.protected_sbox
                     else ALPHA_WRITEBACK)
            leak += scale * result_hw
            if not self.protected_writeback:
                # The result re-enters the CMOS register file and its
                # Hamming weight leaks there regardless of the unit.
                leak += ALPHA_WRITEBACK * result_hw
        elif mn not in self._NO_WRITEBACK and inst.rd != 0:
            leak += ALPHA_WRITEBACK * _hw(cpu.regs[inst.rd])
        if mn in ("l.lwz", "l.lbz"):
            leak += ALPHA_MEMORY * _hw(cpu.regs[inst.rd])
        elif mn in ("l.sw", "l.sb"):
            leak += ALPHA_MEMORY * _hw(cpu.regs[inst.rb])
        return leak

    def trace_program(self, cpu: CPU, max_instructions: int = 200000
                      ) -> np.ndarray:
        """Run ``cpu`` to halt, returning one current sample per cycle."""
        samples: List[float] = []
        while not cpu.halted:
            if len(samples) >= max_instructions:
                raise TraceError(
                    f"program exceeded {max_instructions} instructions")
            inst = cpu.step()
            samples.append(self.instruction_leak(cpu, inst))
        trace = np.asarray(samples, dtype=float)
        if self.noise_sigma > 0.0:
            trace = trace + self._rng.normal(0.0, self.noise_sigma,
                                             size=trace.shape)
        return trace


def software_aes_traces(firmware_factory, key: bytes,
                        plaintexts: Sequence[bytes],
                        model: Optional[CpuLeakageModel] = None,
                        window: Optional[Tuple[int, int]] = None,
                        cycles: Optional[Sequence[int]] = None
                        ) -> np.ndarray:
    """Per-block CPU power traces for a firmware build.

    ``firmware_factory()`` must return a fresh 1-block
    :class:`~repro.cpu.AESFirmware`; each plaintext is encrypted in its
    own run so cycle indices line up across traces.  ``window`` selects
    a contiguous cycle range; ``cycles`` selects arbitrary cycle indices
    (e.g. exactly the ``l.sbox`` executions); default keeps everything.
    """
    if window is not None and cycles is not None:
        raise TraceError("pass either window or cycles, not both")
    model = model or CpuLeakageModel()
    rows: List[np.ndarray] = []
    length: Optional[int] = None
    for plaintext in plaintexts:
        firmware = firmware_factory()
        cpu = CPU()
        cpu.load_image(firmware.assemble_image())
        from ..cpu.programs import N_BLOCKS_WORD, PLAINTEXT, ROUND_KEYS
        from ..aes import expand_key
        if firmware.expand_key_on_core:
            flat = list(key)
        else:
            flat = [b for rk in expand_key(key) for b in rk]
        for i, byte in enumerate(flat):
            cpu.write_byte(ROUND_KEYS + i, byte)
        for i, byte in enumerate(plaintext):
            cpu.write_byte(PLAINTEXT + i, byte)
        cpu.write_word(N_BLOCKS_WORD, 1)
        cpu.pc = 0
        trace = model.trace_program(cpu)
        if length is None:
            length = trace.size
        elif trace.size != length:
            raise TraceError(
                "firmware produced data-dependent control flow; traces "
                "cannot be aligned by cycle index")
        rows.append(trace)
    matrix = np.vstack(rows)
    if window is not None:
        start, stop = window
        if not 0 <= start < stop <= matrix.shape[1]:
            raise TraceError(f"window {window} outside 0..{matrix.shape[1]}")
        matrix = matrix[:, start:stop]
    elif cycles is not None:
        idx = np.asarray(list(cycles), dtype=int)
        if idx.size == 0 or idx.min() < 0 or idx.max() >= matrix.shape[1]:
            raise TraceError(
                f"cycle indices outside 0..{matrix.shape[1] - 1}")
        matrix = matrix[:, idx]
    return matrix
