"""Sleep-schedule construction and gated current waveforms (Fig. 5).

§6: "The signal triggering the custom instruction's execution controls
also the sleep signal, so that the protected logic is turned on only
during the custom instruction execution."  The schedule is therefore a
direct function of the CPU's ISE activity timeline: a wake window opens
(one insertion delay early) around every burst of ``l.sbox`` cycles.

:func:`gated_block_current` renders the Fig. 5 picture: the conventional
MCML block draws its full tail current forever; the PG-MCML block draws
sleep leakage, ramps up with the cells' wake time constant when the
sleep signal rises, and collapses again after the burst.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TraceError
from ..spice import Waveform
from .models import BlockPowerModel


@dataclass
class GatingSchedule:
    """Wake windows: the sleep signal is high (awake) inside each
    ``[t_on, t_off)`` interval."""

    windows: List[Tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        last_end = -np.inf
        for t_on, t_off in self.windows:
            if t_off <= t_on:
                raise TraceError(f"empty wake window [{t_on}, {t_off})")
            if t_on < last_end:
                raise TraceError("wake windows must be sorted and disjoint")
            last_end = t_off

    def awake(self, t: float) -> bool:
        return any(t_on <= t < t_off for t_on, t_off in self.windows)

    def awake_fraction(self, t0: float, t1: float) -> float:
        """Fraction of [t0, t1] spent awake."""
        if t1 <= t0:
            raise TraceError("empty evaluation interval")
        total = 0.0
        for t_on, t_off in self.windows:
            total += max(0.0, min(t_off, t1) - max(t_on, t0))
        return total / (t1 - t0)

    def signal(self, times: np.ndarray, high: float = 1.2,
               low: float = 0.0) -> Waveform:
        """The sleep-control waveform itself (plotted in Fig. 5)."""
        values = np.full(times.shape, low)
        for t_on, t_off in self.windows:
            values[(times >= t_on) & (times < t_off)] = high
        return Waveform(times, values)


def schedule_from_sbox_events(event_cycles: Sequence[int], period: float,
                              insertion_delay: float,
                              guard_cycles: int = 1,
                              merge_gap_cycles: int = 4) -> GatingSchedule:
    """Build the wake schedule from the CPU's ``l.sbox`` cycle numbers.

    The sleep signal must rise one tree-insertion-delay before the
    instruction needs the unit; consecutive uses closer than
    ``merge_gap_cycles`` share one window (the controller keeps the unit
    awake across a SubBytes burst instead of toggling every cycle).
    """
    if period <= 0.0:
        raise TraceError("clock period must be positive")
    if not event_cycles:
        return GatingSchedule([])
    windows: List[Tuple[float, float]] = []
    cycles = sorted(event_cycles)
    start = cycles[0]
    prev = cycles[0]
    for c in cycles[1:] + [None]:  # type: ignore[list-item]
        if c is not None and c - prev <= merge_gap_cycles:
            prev = c
            continue
        t_on = start * period - insertion_delay - guard_cycles * period
        t_off = (prev + 1) * period
        windows.append((max(t_on, 0.0), t_off))
        if c is not None:
            start = prev = c
    return GatingSchedule(windows)


def gated_block_current(model: BlockPowerModel, schedule: GatingSchedule,
                        times: np.ndarray,
                        wake_time: Optional[float] = None) -> Waveform:
    """Supply current of a power-gated block over ``times``.

    ``wake_time`` defaults to the largest wake constant in the library's
    datasheets.  The turn-on ramps as ``1 - exp(-t/tau)`` and the
    turn-off discharges with the same constant (the tail node floats
    down as the internal capacitance discharges through the sleeping
    stack).
    """
    if model.style != "pgmcml":
        raise TraceError("gated current requires a PG-MCML block model")
    tau = wake_time
    if tau is None:
        tau = max((inst.cell.power.wake_time
                   for inst in model.netlist.instances.values()
                   if inst.cell.power.has_sleep), default=0.0)
    if tau <= 0.0:
        raise TraceError("wake time constant must be positive")

    on_current = model.static_current(asleep=False)
    off_current = model.static_current(asleep=True)

    envelope = np.zeros(times.shape)
    state = 0.0  # 0 = fully asleep, 1 = fully awake
    prev_t = times[0]
    for k, t in enumerate(times):
        dt = t - prev_t
        target = 1.0 if schedule.awake(t) else 0.0
        if dt > 0:
            state += (target - state) * (1.0 - np.exp(-dt / tau))
        elif k == 0:
            state = target
        envelope[k] = state
        prev_t = t
    current = off_current + (on_current - off_current) * envelope
    return Waveform(times, current)


def ungated_block_current(model: BlockPowerModel,
                          times: np.ndarray) -> Waveform:
    """The conventional MCML picture: flat at the full tail current."""
    return Waveform(times, np.full(times.shape, model.static_current()))
