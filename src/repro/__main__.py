"""Command-line entry point: regenerate any of the paper's artefacts.

Usage::

    python -m repro list                  # what can be regenerated
    python -m repro table1                # print Table 1 vs the paper
    python -m repro fig6                  # run the CPA study + ASCII plot
    python -m repro all                   # everything (several minutes)
    python -m repro fig3 --csv fig3.csv   # also export the series as CSV
    python -m repro fig6 --trace t.jsonl  # record a structured trace
    python -m repro fig6 --no-erc         # skip the ERC preflight
    python -m repro all --solve-budget iters=2000,attempts=3
    python -m repro table1 --backend ngspice   # external simulator

Job-service verbs (see repro.service.cli)::

    python -m repro serve  --dir runs/svc --workers 2
    python -m repro submit --dir runs/svc --style pgmcml --budget 96
    python -m repro jobs   --dir runs/svc
    python -m repro worker --dir runs/svc --once
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict


def _csv_writer(name: str, result, path: str) -> bool:
    from .experiments import plotting

    writers: Dict[str, Callable] = {
        "fig3": plotting.fig3_csv,
        "fig5": plotting.fig5_csv,
        "fig6": plotting.fig6_csv,
    }
    writer = writers.get(name)
    if writer is None:
        return False
    with open(path, "w", encoding="utf-8") as stream:
        writer(result, stream)
    return True


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] in ("serve", "submit", "jobs", "worker"):
        # The service verbs have their own subcommand grammar; hand the
        # whole line to repro.service.cli before the artefact parser.
        from .service.cli import main as service_main
        return service_main(argv)

    from . import experiments

    targets: Dict[str, Callable] = {
        "table1": experiments.table1.main,
        "table2": experiments.table2.main,
        "table3": experiments.table3.main,
        "fig3": experiments.fig3.main,
        "fig5": experiments.fig5.main,
        "fig6": experiments.fig6.main,
        "ablation": experiments.ablation.main,
        "tvla": experiments.tvla.main,
        "matrix": experiments.matrix.main,
        "related": experiments.related.main,
        "scope": experiments.scope.main,
        "software": experiments.software_attack.main,
    }

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the PG-MCML "
                    "paper (DAC 2011).")
    parser.add_argument("target", choices=[*targets, "all", "list"],
                        help="which artefact to regenerate")
    parser.add_argument("--csv", metavar="PATH",
                        help="also export the figure's data series as CSV "
                             "(fig3/fig5/fig6 only)")
    parser.add_argument("--trace", metavar="PATH",
                        help="record spans, progress, and a final metrics "
                             "snapshot to a JSONL trace file (see "
                             "repro.obs); stdout output is unchanged")
    parser.add_argument("--grid", metavar="PATH",
                        help="JSON campaign-grid spec for the matrix "
                             "target (styles/attacks/noises/corners/"
                             "budgets; see examples/matrix_smoke.json)")
    parser.add_argument("--report", metavar="PATH",
                        help="write the matrix target's full report "
                             "(cells + frontier) as JSON")
    parser.add_argument("--no-erc", action="store_true",
                        help="skip the electrical-rule preflight at cell "
                             "build / synthesis / campaign start "
                             "(sets REPRO_ERC=off)")
    parser.add_argument("--solve-budget", metavar="SPEC",
                        help="deterministic runaway-solve caps, e.g. "
                             "'2000' (Newton iterations) or "
                             "'iters=2000,attempts=3,rejections=64,"
                             "steps=200000' (sets REPRO_SOLVE_BUDGET)")
    parser.add_argument("--assembly", choices=["bank", "loop", "sparse"],
                        help="MNA assembly strategy: vectorised dense "
                             "banks (default), per-device loop (oracle), "
                             "or CSR + splu for large netlists "
                             "(sets REPRO_SPICE_ASSEMBLY)")
    parser.add_argument("--op-cache", action="store_true",
                        help="reuse DC operating points across "
                             "content-identical solves "
                             "(sets REPRO_OP_CACHE=1)")
    parser.add_argument("--spice-batch", metavar="N",
                        help="lockstep batch size for transient solves "
                             "and trace acquisition; 1 = serial engine "
                             "(sets REPRO_SPICE_BATCH)")
    from .spice.backend import available_backends
    parser.add_argument("--backend", choices=available_backends(),
                        help="simulator backend for DC/transient runs "
                             "(sets REPRO_SPICE_BACKEND); an unavailable "
                             "external backend degrades to the internal "
                             "engine with a note, or fails when "
                             "REPRO_SPICE_BACKEND_STRICT is set")
    args = parser.parse_args(argv)

    if (args.grid or args.report) and args.target not in ("matrix", "all"):
        parser.error("--grid/--report only apply to the matrix target")

    if args.no_erc:
        os.environ["REPRO_ERC"] = "off"
    if args.solve_budget:
        from .spice import SolveBudget
        os.environ["REPRO_SOLVE_BUDGET"] = args.solve_budget
        SolveBudget.from_env()  # fail fast on an unparsable spec
    if args.assembly:
        os.environ["REPRO_SPICE_ASSEMBLY"] = args.assembly
    if args.op_cache:
        from .spice import OP_CACHE_ENV
        os.environ[OP_CACHE_ENV] = "1"
    if args.spice_batch:
        from .spice import BATCH_ENV, batch_size_from_env
        os.environ[BATCH_ENV] = args.spice_batch
        batch_size_from_env()  # fail fast on an unparsable size
    if args.backend:
        from .spice.backend import dispatch
        os.environ[dispatch.BACKEND_ENV] = args.backend
        dispatch.reset_default_backend()
        chosen = dispatch.default_backend()
        if chosen.name != args.backend:
            print(f"note: backend '{args.backend}' unavailable; "
                  f"using '{chosen.name}' (set "
                  f"{dispatch.STRICT_ENV}=1 to fail instead)",
                  file=sys.stderr)

    if args.target == "list":
        print("available targets:")
        for name, fn in targets.items():
            doc = (sys.modules[fn.__module__].__doc__ or "").strip()
            headline = doc.splitlines()[0] if doc else ""
            print(f"  {name:10s} {headline}")
        print("  all        run every target in sequence")
        return 0

    telemetry = None
    if args.trace:
        from .obs import JsonlSink, Telemetry
        telemetry = Telemetry(sinks=[JsonlSink(args.trace)], progress=print)

    names = list(targets) if args.target == "all" else [args.target]
    try:
        for name in names:
            if len(names) > 1:
                print(f"\n{'=' * 72}\n== {name}\n{'=' * 72}")
            if name == "matrix":
                result = targets[name](grid=args.grid, report=args.report,
                                       telemetry=telemetry)
            else:
                result = targets[name](telemetry=telemetry)
            if args.csv and len(names) == 1:
                if _csv_writer(name, result, args.csv):
                    print(f"\nwrote {args.csv}")
                else:
                    print(f"\nno CSV exporter for {name}", file=sys.stderr)
                    return 2
    finally:
        if telemetry is not None:
            telemetry.emit_metrics()
            telemetry.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
