#!/usr/bin/env python3
"""Exploring the Fig. 3 design space and the Fig. 2 topology choice.

Sweeps the buffer tail current through transistor-level simulation
(delay vs Iss for FO1/FO4, area-delay product), then replays the §4
power-gating topology comparison to see why the series sleep transistor
(d) won.

Run:  python examples/cell_design_space.py   (takes ~15 s: real SPICE sweeps)
"""

from repro.experiments import ablation, fig3
from repro.units import uA


def main() -> None:
    print("=== Fig. 3: buffer delay / area-delay vs tail current ===")
    result = fig3.run(sweep=[uA(x) for x in (10, 25, 50, 100, 250)])
    print(f"{'Iss':>6s} {'tFO1':>8s} {'tFO4':>8s} {'area':>7s} "
          f"{'ADP':>9s}")
    for p in result.points:
        print(f"{p.iss * 1e6:5.0f}u {p.delay_fo1 * 1e12:7.2f}p "
              f"{p.delay_fo4 * 1e12:7.2f}p {p.area_um2:6.2f}u2 "
              f"{p.adp_fo4 * 1e18:9.1f}")
    print(f"-> area-delay optimum at {result.optimum_iss() * 1e6:.0f} uA; "
          f"the paper biases the whole library there (50 uA).")

    print("\n=== Fig. 2: why topology (d)? ===")
    topo = ablation.run_topologies()
    for point in topo.points:
        wake = ("never (within 10 ns)" if point.wake_time is None
                else f"{point.wake_time * 1e9:5.2f} ns")
        print(f"({point.topology.value}) Ion={point.active_current * 1e6:6.1f} uA  "
              f"Isleep={point.sleep_current * 1e9:7.3f} nA  "
              f"wake={wake}  +{point.extra_transistors} devices")
    print(f"-> (d) dominates: {topo.chosen_is_best()}")

    print("\n=== §5: the Vt-flavour assignment ===")
    vt = ablation.run_vt_flavors()
    for point in vt.points:
        print(f"{point.name:34s} delay {point.delay * 1e12:6.2f} ps   "
              f"sleep leak {point.sleep_current * 1e9:8.4f} nA")
    print("-> high-Vt NMOS core for sleep leakage, low-Vt PMOS loads "
          "for speed/area: the paper's mix.")


if __name__ == "__main__":
    main()
