#!/usr/bin/env python3
"""EDA interchange: export the protected design the way real flows do.

Produces, for the PG-MCML S-box ISE:

* the cell library as JSON (our Liberty/LEF stand-in),
* the mapped netlist as structural Verilog,
* SDF delay annotation for the routed (placed) netlist,
* a VCD of one SubBytes operation,
* and demonstrates that re-importing the Verilog yields a netlist that
  still computes the S-box.

Files land in ``./ise_export/``.

Run:  python examples/eda_interchange.py
"""

import os

from repro.aes import SBOX
from repro.cells import build_pg_mcml_library, save_library, write_liberty
from repro.netlist import (
    LogicSimulator,
    read_verilog,
    static_timing,
    write_sdf,
    write_vcd,
    write_verilog,
)
from repro.synth import build_sbox_ise, place, simulate_sbox_word, \
    wirelength_hpwl

OUT_DIR = "ise_export"


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    library = build_pg_mcml_library()
    ise = build_sbox_ise(library)

    lib_path = os.path.join(OUT_DIR, "pg_mcml_90nm.lib.json")
    save_library(lib_path, library)
    print(f"library   -> {lib_path}")

    liberty_path = os.path.join(OUT_DIR, "pg_mcml_90nm.lib")
    with open(liberty_path, "w", encoding="utf-8") as stream:
        write_liberty(stream, library)
    print(f"liberty   -> {liberty_path}")

    verilog_path = os.path.join(OUT_DIR, "sbox_ise.v")
    with open(verilog_path, "w", encoding="utf-8") as stream:
        write_verilog(stream, ise.netlist)
    print(f"netlist   -> {verilog_path} "
          f"({ise.netlist.total_cells()} cells)")

    placement = place(ise.netlist)
    print(f"placement -> {placement.rows} rows, "
          f"die {placement.die_width * 1e6:.1f} x "
          f"{placement.die_height * 1e6:.1f} um, "
          f"HPWL {wirelength_hpwl(ise.netlist, placement) * 1e3:.2f} mm")
    routed = static_timing(ise.netlist, placement=placement)
    print(f"timing    -> {routed.critical_delay_ns:.3f} ns routed "
          f"(vs {static_timing(ise.netlist).critical_delay_ns:.3f} ns "
          f"logical)")

    sdf_path = os.path.join(OUT_DIR, "sbox_ise.sdf")
    with open(sdf_path, "w", encoding="utf-8") as stream:
        write_sdf(stream, ise.netlist)
    print(f"delays    -> {sdf_path}")

    # One SubBytes operation, recorded as VCD.
    sim = LogicSimulator(ise.netlist)
    word = 0x00112233
    result = simulate_sbox_word(ise, sim, word)
    sim.reset()
    stimuli = [(0.0, f"op{i}", bool((word >> (31 - i)) & 1))
               for i in range(32)]
    if ise.sleep_tree is not None:
        stimuli.append((0.0, ise.sleep_tree.root_net, True))
    trace = sim.run(stimuli, duration=3e-9)
    vcd_path = os.path.join(OUT_DIR, "subbytes.vcd")
    with open(vcd_path, "w", encoding="utf-8") as stream:
        write_vcd(stream, trace)
    print(f"activity  -> {vcd_path} ({trace.toggles()} transitions; "
          f"sbox(0x{word:08X}) = 0x{result:08X})")

    # Round-trip check: the exported Verilog still computes SubBytes.
    with open(verilog_path, "r", encoding="utf-8") as stream:
        reimported = read_verilog(stream, library)
    sim2 = LogicSimulator(reimported)
    values = {f"op{i}": bool((word >> (31 - i)) & 1) for i in range(32)}
    if ise.sleep_tree is not None:
        values[ise.sleep_tree.root_net] = True
    sim2.initialize(values)
    got = sum(int(sim2.values[net]) << (31 - i)
              for i, net in enumerate(ise.outputs))
    expected = int.from_bytes(bytes(SBOX[b] for b in
                                    word.to_bytes(4, "big")), "big")
    assert got == expected, "re-imported netlist broken!"
    print(f"reimport  -> OK (netlist still computes SubBytes)")


if __name__ == "__main__":
    main()
