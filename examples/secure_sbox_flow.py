#!/usr/bin/env python3
"""The full protected-accelerator flow of §6, end to end.

Synthesises the four-S-box instruction-set extension onto all three
libraries, inserts the sleep tree into the PG-MCML build, runs the AES
firmware on the OpenRISC-flavoured core to obtain the real ISE duty
factor, and prints a Table 3-style comparison — including average power
both at the measured duty and at the paper's 0.01 % operating point.

Run:  python examples/secure_sbox_flow.py
"""

from repro.cells import (
    build_cmos_library,
    build_mcml_library,
    build_pg_mcml_library,
)
from repro.cpu import aes_firmware
from repro.experiments.table3 import CLOCK_PERIOD, PAPER_DUTY, run
from repro.netlist import LogicSimulator
from repro.synth import build_sbox_ise, report_block, simulate_sbox_word
from repro.units import format_si


def main() -> None:
    print("=== synthesis: the S-box ISE macro in three logic styles ===")
    for lib in (build_cmos_library(), build_mcml_library(),
                build_pg_mcml_library()):
        ise = build_sbox_ise(lib)
        report = report_block(ise.netlist)
        line = (f"{lib.style.upper():7s} {report.cells:5d} cells  "
                f"{report.core_area_um2:10,.0f} um2  "
                f"{report.delay_ns:6.3f} ns")
        if ise.sleep_tree is not None:
            line += (f"  sleep tree: {ise.sleep_tree.n_buffers} buffers, "
                     f"t_ins {ise.sleep_tree.insertion_delay * 1e9:.2f} ns")
        print(line)
        if lib.style == "pgmcml":
            # Prove the datapath still computes SubBytes.
            sim = LogicSimulator(ise.netlist)
            word = 0x00112233
            print(f"        l.sbox(0x{word:08X}) = "
                  f"0x{simulate_sbox_word(ise, sim, word):08X}")

    print("\n=== firmware: AES-128 on the core, ISE duty measurement ===")
    firmware = aes_firmware(n_blocks=2, use_ise=True)
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plaintexts = [bytes(range(16)), bytes(range(16, 32))]
    ciphertexts, stats = firmware.run(key, plaintexts)
    print(f"{stats.cycles} cycles for 2 blocks at "
          f"{1.0 / CLOCK_PERIOD / 1e6:.0f} MHz; "
          f"l.sbox active {stats.sbox_cycles} cycles "
          f"-> duty {stats.ise_duty * 100:.3f}% "
          f"(paper benchmark: {PAPER_DUTY * 100:.2f}%)")
    print(f"first ciphertext: {ciphertexts[0].hex()}")

    print("\n=== Table 3: area / delay / average power ===")
    result = run(n_blocks=2)
    print(f"{'style':8s} {'cells':>6s} {'area um2':>11s} {'delay ns':>9s} "
          f"{'P@measured':>12s} {'P@0.01%':>10s}")
    for row in result.rows:
        print(f"{row.style:8s} {row.cells:6d} {row.area_um2:11,.0f} "
              f"{row.delay_ns:9.3f} "
              f"{format_si(row.avg_power_w, 'W'):>12s} "
              f"{format_si(row.avg_power_at_paper_duty_w, 'W'):>10s}")
    print(f"\npower gating buys "
          f"{result.power_ratio_at_paper_duty('mcml', 'pgmcml'):,.0f}x "
          f"over conventional MCML at the paper's duty "
          f"(paper: ~10,000x), and PG-MCML undercuts leakage-dominated "
          f"CMOS by "
          f"{result.power_ratio_at_paper_duty('cmos', 'pgmcml'):.1f}x "
          f"(paper: ~4.3x).")


if __name__ == "__main__":
    main()
