#!/usr/bin/env python3
"""Protecting the whole cipher: a PG-MCML AES-128 hardware core.

The paper gates a 4-S-box functional unit; this example builds the
alternative it alludes to in §2 — the complete AES-128 datapath (16
S-boxes, bit-linear ShiftRows/MixColumns, on-the-fly key schedule,
round counter) in all three libraries — runs a FIPS-197 vector through
each under the clock, and compares the cost of full protection against
the paper's ISE island.

Run:  python examples/full_aes_core.py   (takes ~30 s: three 12-16k cell
cores are built and clock-cycle simulated)
"""

from repro.aes import encrypt_block
from repro.cells import (
    build_cmos_library,
    build_mcml_library,
    build_pg_mcml_library,
)
from repro.netlist import LogicSimulator, static_timing
from repro.synth import build_aes_core, encrypt_with_core, report_block

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
PT = bytes.fromhex("00112233445566778899aabbccddeeff")


def main() -> None:
    print("round-based AES-128 core, 11 clock edges per block\n")
    reference = encrypt_block(PT, KEY)
    for build in (build_cmos_library, build_mcml_library,
                  build_pg_mcml_library):
        library = build()
        core = build_aes_core(library)
        report = report_block(core.netlist)
        sim = LogicSimulator(core.netlist)
        ct = encrypt_with_core(core, sim, PT, KEY)
        ok = "FIPS-197 OK" if ct == reference else "WRONG"
        line = (f"{library.style.upper():7s} {report.cells:6d} cells  "
                f"{report.core_area_um2:10,.0f} um2  "
                f"crit {report.delay_ns:6.3f} ns  -> {ct.hex()}  [{ok}]")
        print(line)
        if core.sleep_tree is not None:
            tree = core.sleep_tree
            print(f"        sleep tree: {tree.n_buffers} buffers over "
                  f"{tree.n_gated_cells} gated cells, insertion "
                  f"{tree.insertion_delay * 1e9:.2f} ns")

    print("\nversus the paper's approach (S-box ISE + software):")
    from repro.experiments import scope
    result = scope.run()
    for row in result.rows:
        print(f"  {row.approach:20s} {row.cells:6d} cells  "
              f"{row.area_um2:10,.0f} um2  "
              f"{row.avg_power_w * 1e6:6.1f} uW   ({row.protected_fraction})")
    print(f"\nfull protection costs {result.area_ratio():.1f}x the area; "
          f"with the sleep transistor, idle power is no longer the "
          f"blocker the pre-PG-MCML literature assumed.")


if __name__ == "__main__":
    main()
