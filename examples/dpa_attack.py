#!/usr/bin/env python3
"""Mounting the Fig. 6 attack yourself — and probing its limits.

Collects simulated current traces from the reduced AES (AddRoundKey +
SubBytes) in each logic style, runs CPA with the Hamming weight of the
S-box output over all 256 key guesses, and prints who breaks.  Then two
follow-ups the paper invites:

* classic single-bit DPA (the attack the title names) on the same data;
* an instrument sweep on PG-MCML: what if the attacker had a much finer
  probe than the paper's 1 uA / 1 ps setup?

Run:  python examples/dpa_attack.py
"""

import numpy as np

from repro.cells import (
    build_cmos_library,
    build_mcml_library,
    build_pg_mcml_library,
)
from repro.power import MeasurementChain
from repro.sca import AttackCampaign, mtd
from repro.units import uA

KEY = 0x2B


def main() -> None:
    print(f"secret key byte: {KEY:#04x}; 256 plaintexts; "
          f"1 uA probe (the paper's resolution)\n")

    campaigns = {}
    print("=== correlation power analysis (Fig. 6) ===")
    for build in (build_cmos_library, build_mcml_library,
                  build_pg_mcml_library):
        campaign = AttackCampaign(build(), KEY)
        result = campaign.run(with_dpa=True)
        campaigns[result.style] = result
        print(result.summary())

    print("\n=== classic difference-of-means DPA (Kocher et al.) ===")
    for style, result in campaigns.items():
        dpa = result.dpa
        outcome = ("KEY RECOVERED" if dpa.succeeded
                   else f"failed (rank {dpa.rank_of_true_key()})")
        print(f"{style.upper():7s}: {outcome}")

    print("\n=== measurements-to-disclosure on the CMOS target ===")
    cmos = campaigns["cmos"]
    threshold = mtd(cmos.traces, cmos.plaintexts, true_key=KEY, step=32)
    print(f"CPA stabilises on the correct key after ~{threshold} traces")

    print("\n=== what would a better probe buy the attacker? ===")
    print(f"{'resolution':>12s} {'noise':>8s} {'rank':>5s} {'peak rho':>9s}")
    for resolution, noise in ((uA(1.0), uA(0.5)), (uA(0.1), uA(0.1)),
                              (uA(0.01), 0.0), (0.0, 0.0)):
        chain = MeasurementChain(noise_sigma=noise, resolution=resolution)
        campaign = AttackCampaign(build_pg_mcml_library(), KEY, chain=chain)
        result = campaign.run()
        label = "ideal" if resolution == 0.0 else f"{resolution * 1e6:g}uA"
        print(f"{label:>12s} {noise * 1e6:7.2f}u {result.rank:5d} "
              f"{result.cpa.peak_per_guess[KEY]:9.4f}")
    print("\nPG-MCML resistance is quantitative: the mismatch residuals "
          "exist, but at the paper's measurement resolution they are "
          "unreachable.")


if __name__ == "__main__":
    main()
