#!/usr/bin/env python3
"""Extending the library: add your own PG-MCML cell.

§5 notes that "an increased number of cells would positively affect our
results".  This example walks the designer workflow for a new cell — an
AOI21 (and-or-invert, Y = NOT(A·B + C), a favourite of synthesis
engines):

1. register the logic function,
2. generate its PG-MCML transistor netlist from the BDD,
3. verify the electrical truth table exhaustively at DC,
4. characterise delay / swing / tail current and sleep leakage,
5. estimate its layout width from the column-packing model.

Run:  python examples/custom_cell.py
"""

import itertools

from repro.cells import PgMcmlCellGenerator, solve_bias
from repro.cells.characterize import characterize_mcml_cell, measure_leakage
from repro.cells.functions import CellFunction
from repro.cells.layout import estimate_sites, mcml_transistor_count
from repro.spice import DC, solve_dc
from repro.tech import TECH90
from repro.units import format_si, uA


def make_aoi21() -> CellFunction:
    def evaluate(assignment):
        return {"Y": not ((assignment["A"] and assignment["B"])
                          or assignment["C"])}

    return CellFunction(name="AOI21", inputs=("A", "B", "C"),
                        outputs=("Y",), evaluate=evaluate,
                        description="Y = NOT(A AND B OR C)")


def main() -> None:
    aoi21 = make_aoi21()
    print(f"new cell: {aoi21.name}  ({aoi21.description})")
    print(f"truth table (A,B,C msb-first): {aoi21.truth_table('Y')}")

    bias = solve_bias(uA(50), gated=True)
    generator = PgMcmlCellGenerator(TECH90, bias.sizing)
    cell = generator.build(aoi21)
    n_mosfets = sum(1 for d in cell.circuit.devices
                    if type(d).__name__ == "Mosfet")
    print(f"\ngenerated netlist: {n_mosfets} transistors, "
          f"stack depth {cell.depth} (limit 4), sleep net "
          f"{cell.sleep_net!r}")

    print("\nelectrical truth table (differential output, volts):")
    hi, lo = bias.sizing.input_high(), bias.sizing.input_low()
    failures = 0
    for bits in itertools.product([False, True], repeat=3):
        test = generator.build(aoi21)
        ckt = test.circuit
        ckt.v("vdd", test.vdd_net, TECH90.vdd)
        ckt.v("vvn", test.vn_net, bias.sizing.vn)
        ckt.v("vvp", test.vp_net, bias.sizing.vp)
        ckt.v("vslp", test.sleep_net, TECH90.vdd)
        for pin, value in zip(aoi21.inputs, bits):
            p, n = test.input_nets[pin]
            ckt.v(f"v{pin}p", p, DC(hi if value else lo))
            ckt.v(f"v{pin}n", n, DC(lo if value else hi))
        op = solve_dc(ckt)
        p, n = test.output_nets["Y"]
        diff = op[p] - op[n]
        expected = aoi21.evaluate(dict(zip(aoi21.inputs, bits)))["Y"]
        ok = (diff > 0.15) == expected
        failures += not ok
        print(f"  A,B,C={tuple(int(b) for b in bits)}  "
              f"Y_diff={diff:+.3f} V  {'ok' if ok else 'WRONG'}")
    assert failures == 0, "electrical truth table mismatch"

    meas = characterize_mcml_cell(aoi21, generator, fanout=1)
    sleep = measure_leakage(aoi21, generator, asleep=True)
    print(f"\ncharacterisation: delay {meas.delay * 1e12:.2f} ps, "
          f"swing {meas.swing:.3f} V, Iss {format_si(meas.iss, 'A')}, "
          f"sleep leak {format_si(sleep, 'A')}")

    sites = estimate_sites(aoi21, "pgmcml")
    width = sites * TECH90.site_width_pgmcml * 1e6
    area = width * TECH90.cell_height * 1e6
    print(f"layout estimate: {mcml_transistor_count(aoi21, True)} "
          f"transistors -> {sites} sites = {width:.3f} um wide "
          f"= {area:.3f} um2")
    print("\nReady to drop into a Library as a Cell datasheet.")


if __name__ == "__main__":
    main()
