#!/usr/bin/env python3
"""Quickstart: touch every layer of the PG-MCML reproduction in a minute.

1. Build the paper's PG-MCML standard-cell library and read a datasheet.
2. Solve the MCML bias point (Vn, load width) for 50 uA / 400 mV.
3. Simulate a generated PG-MCML buffer at transistor level: measure its
   differential delay, and compare the supply current awake vs asleep.
4. Run a one-byte CPA attack against the PG-MCML reduced AES and watch
   it fail (then succeed against static CMOS).

Run:  python examples/quickstart.py
"""

from repro.cells import (
    PgMcmlCellGenerator,
    build_cmos_library,
    build_pg_mcml_library,
    characterize_mcml_cell,
    function,
    measure_leakage,
    solve_bias,
)
from repro.sca import AttackCampaign
from repro.units import format_si, uA


def main() -> None:
    print("=== 1. the library ===")
    library = build_pg_mcml_library()
    buf = library.cell("BUF")
    print(f"{len(library)} cells; BUF datasheet: area {buf.area_um2} um2, "
          f"FO1 delay {format_si(buf.delay(), 's')}, "
          f"tail current {format_si(buf.power.iss, 'A')}, "
          f"sleep leakage {format_si(buf.power.sleep_leak, 'A')}")

    print("\n=== 2. bias solving (the Vn/Vp design knobs of Fig. 1) ===")
    bias = solve_bias(uA(50), gated=True)
    print(f"Vn = {bias.sizing.vn:.4f} V, load width = "
          f"{bias.sizing.w_load * 1e6:.3f} um  ->  measured "
          f"{format_si(bias.iss_measured, 'A')}, "
          f"swing {bias.swing_measured:.3f} V")

    print("\n=== 3. transistor-level characterisation ===")
    generator = PgMcmlCellGenerator(sizing=bias.sizing)
    meas = characterize_mcml_cell(function("BUF"), generator, fanout=1)
    awake = measure_leakage(function("BUF"), generator, asleep=False)
    asleep = measure_leakage(function("BUF"), generator, asleep=True)
    print(f"simulated FO1 delay: {meas.delay * 1e12:.2f} ps "
          f"(paper datasheet: 23.97 ps)")
    print(f"supply current awake:  {format_si(awake, 'A')}")
    print(f"supply current asleep: {format_si(asleep, 'A')}  "
          f"({awake / asleep:,.0f}x reduction)")

    print("\n=== 4. the security claim (Fig. 6 in one byte) ===")
    key = 0x2B
    for build in (build_pg_mcml_library, build_cmos_library):
        campaign = AttackCampaign(build(), key)
        result = campaign.run(plaintexts=list(range(0, 256, 2)))
        print(result.summary())


if __name__ == "__main__":
    main()
