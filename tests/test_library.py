"""Tests for the three built libraries (datasheet layer)."""

import pytest

from repro.cells import (
    build_cmos_library,
    build_mcml_library,
    build_pg_mcml_library,
)
from repro.cells.library import (
    PAPER_AREA_RATIOS,
    PAPER_PG_DELAYS,
    PG_MCML_CELL_NAMES,
    characterize_library_cell,
)
from repro.errors import CellError
from repro.units import ps, uA


@pytest.fixture(scope="module")
def pg():
    return build_pg_mcml_library()


@pytest.fixture(scope="module")
def mcml():
    return build_mcml_library()


@pytest.fixture(scope="module")
def cmos():
    return build_cmos_library()


class TestLibraryContents:
    def test_pg_has_all_16_paper_cells(self, pg):
        for name in PG_MCML_CELL_NAMES:
            assert name in pg

    def test_pg_support_cells(self, pg):
        for name in ("SINGLE2DIFF", "BUFX4", "RAILSWAP", "SLEEPBUF", "OR2"):
            assert name in pg

    def test_cmos_has_inverter_but_mcml_does_not(self, mcml, cmos):
        assert "INV" in cmos
        assert "INV" not in mcml  # inversion is free differentially

    def test_unknown_cell_message(self, pg):
        with pytest.raises(CellError, match="available"):
            pg.cell("NAND7")

    def test_iteration_and_len(self, pg):
        assert len(pg) == len(list(pg))
        assert sorted(c.name for c in pg) == pg.names()

    def test_minimal_library_without_support(self):
        small = build_pg_mcml_library(include_support=False)
        assert "RAILSWAP" not in small
        assert len(small) == 16


class TestDatasheetValues:
    def test_pg_delays_match_table2(self, pg):
        for name, delay in PAPER_PG_DELAYS.items():
            cell = pg.cell(name)
            assert cell.delay(cell.input_cap) == pytest.approx(delay,
                                                               rel=1e-6)

    def test_mcml_slightly_faster_than_pg(self, pg, mcml):
        for name in PG_MCML_CELL_NAMES:
            assert mcml.cell(name).delay_model.intrinsic < \
                pg.cell(name).delay_model.intrinsic

    def test_cmos_faster_than_pg(self, pg, cmos):
        for name in ("BUF", "AND2", "XOR2"):
            assert cmos.cell(name).delay(1e-15) < pg.cell(name).delay(1e-15)

    def test_area_ratio_mean_is_1_6(self, pg, cmos):
        ratios = [pg.cell(n).area_um2 / cmos.cell(n).area_um2
                  for n in PAPER_AREA_RATIOS]
        assert sum(ratios) / len(ratios) == pytest.approx(1.6, abs=0.05)

    def test_area_ratios_per_cell(self, pg, cmos):
        for name, expected in PAPER_AREA_RATIOS.items():
            ratio = pg.cell(name).area_um2 / cmos.cell(name).area_um2
            assert ratio == pytest.approx(expected, abs=0.12)

    def test_pg_cells_have_sleep_power_model(self, pg):
        for name in PG_MCML_CELL_NAMES:
            power = pg.cell(name).power
            assert power.has_sleep
            assert 0.0 < power.sleep_leak < power.iss

    def test_mcml_cells_draw_constant_current(self, mcml):
        cell = mcml.cell("BUF")
        assert cell.power.static_current() == pytest.approx(uA(50))

    def test_two_tail_cells_draw_double(self, pg):
        assert pg.cell("DFF").power.iss == pytest.approx(2 * uA(50))
        assert pg.cell("FA").power.iss == pytest.approx(2 * uA(50))

    def test_cmos_leakage_scales_with_sites(self, cmos):
        assert cmos.cell("FA").power.leak > cmos.cell("INV").power.leak

    def test_railswap_is_free(self, pg):
        swap = pg.cell("RAILSWAP")
        assert swap.pseudo
        assert swap.delay_model.delay(1e-15) == 0.0

    def test_sleepbuf_is_cmos_style(self, pg):
        assert pg.cell("SLEEPBUF").style == "cmos"

    def test_total_area_histogram(self, pg):
        area = pg.total_area_um2({"BUF": 10})
        assert area == pytest.approx(74.48, rel=1e-6)

    def test_datasheet_rows_shape(self, pg):
        rows = pg.datasheet_rows()
        assert len(rows) == len(pg)
        assert all(len(r) == 3 for r in rows)

    def test_bias_scaled_library(self):
        fast = build_pg_mcml_library(iss=uA(100))
        slow = build_pg_mcml_library(iss=uA(25))
        assert fast.cell("BUF").delay_model.intrinsic < \
            slow.cell("BUF").delay_model.intrinsic
        with pytest.raises(CellError):
            build_pg_mcml_library(iss=0.0)


class TestCharacterizedDatasheet:
    def test_buffer_roundtrip(self, pg):
        updated = characterize_library_cell(pg, "BUF")
        assert updated.source == "characterized"
        assert 0.0 < updated.delay_model.intrinsic < ps(100)
        assert updated.power.iss == pytest.approx(uA(50), rel=0.15)
        assert 0.0 < updated.power.sleep_leak < 5e-9

    def test_cmos_not_supported(self, cmos):
        with pytest.raises(CellError):
            characterize_library_cell(cmos, "BUF")
