"""Tests for transient analysis against analytic RC solutions."""

import math

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.spice import Circuit, DC, Pulse, PWL, run_transient, solve_dc
from repro.tech import NMOS_LVT, PMOS_LVT
from repro.units import ns, ps, um

VDD = 1.2


def rc_circuit(r=1e3, c=1e-12, stim=None):
    ckt = Circuit("rc")
    ckt.v("vin", "in", stim if stim is not None else
          Pulse(0.0, 1.0, ns(1), ps(1), ps(1), ns(50)))
    ckt.resistor("r1", "in", "out", r)
    ckt.capacitor("c1", "out", "0", c)
    return ckt


class TestRCStep:
    def test_time_constant(self):
        # v(out) should reach 1 - 1/e at t = delay + tau.
        tau = 1e-9
        ckt = rc_circuit(r=1e3, c=1e-12)
        res = run_transient(ckt, tstop=ns(6), dt=ps(10))
        wave = res.wave("out")
        t63 = wave.first_crossing(1.0 - math.exp(-1.0), "rise")
        assert t63 == pytest.approx(ns(1) + tau, rel=0.05)

    def test_final_value(self):
        res = run_transient(rc_circuit(), tstop=ns(8), dt=ps(20))
        assert res.wave("out").v[-1] == pytest.approx(1.0, abs=0.01)

    def test_trapezoidal_matches_be(self):
        res_be = run_transient(rc_circuit(), tstop=ns(4), dt=ps(20),
                               method="be")
        res_tr = run_transient(rc_circuit(), tstop=ns(4), dt=ps(20),
                               method="trap")
        v_be = res_be.wave("out").value_at(ns(2.2))
        v_tr = res_tr.wave("out").value_at(ns(2.2))
        assert v_be == pytest.approx(v_tr, abs=0.02)

    def test_source_current_charges_cap(self):
        # Integral of supply current equals the charge C*V delivered.
        ckt = rc_circuit(r=1e3, c=1e-12)
        res = run_transient(ckt, tstop=ns(10), dt=ps(10))
        charge = res.current("vin").integral()
        assert charge == pytest.approx(1e-12 * 1.0, rel=0.05)

    def test_record_subset(self):
        res = run_transient(rc_circuit(), tstop=ns(2), dt=ps(50),
                            record=["out"])
        assert "out" in res.voltages
        with pytest.raises(CircuitError):
            res.wave("in")

    def test_unknown_source_current(self):
        res = run_transient(rc_circuit(), tstop=ns(2), dt=ps(50))
        with pytest.raises(CircuitError):
            res.current("nope")

    def test_bad_parameters(self):
        with pytest.raises(CircuitError):
            run_transient(rc_circuit(), tstop=0.0, dt=ps(1))
        with pytest.raises(CircuitError):
            run_transient(rc_circuit(), tstop=ns(1), dt=ps(1),
                          method="gear")


class TestBreakpoints:
    def test_grid_includes_stimulus_edges(self):
        ckt = rc_circuit(stim=PWL([(0.0, 0.0), (ns(1.234), 1.0)]))
        res = run_transient(ckt, tstop=ns(3), dt=ps(100))
        assert np.any(np.isclose(res.time, ns(1.234)))

    def test_tstop_survives_nearby_breakpoint(self):
        # A stimulus corner within dt/1000 of tstop used to evict tstop
        # from the grid during dedup; the run then ended short.
        tstop = ns(3)
        ckt = rc_circuit(stim=PWL([(0.0, 0.0), (tstop - ps(0.01), 1.0)]))
        res = run_transient(ckt, tstop=tstop, dt=ps(100))
        assert res.time[-1] == tstop

    def test_grid_never_exceeds_tstop(self):
        # tstop not a multiple of dt: arange's padding must be clipped.
        res = run_transient(rc_circuit(), tstop=ns(1.05), dt=ps(100))
        assert res.time[-1] == ns(1.05)
        assert np.all(res.time <= ns(1.05))


class TestTransientStats:
    def test_clean_run_stats(self):
        res = run_transient(rc_circuit(), tstop=ns(2), dt=ps(50))
        stats = res.stats
        assert stats.grid_points == len(res.time)
        assert stats.steps_taken >= stats.grid_points - 1
        assert stats.newton_failures == 0
        assert stats.retried_intervals == 0
        assert stats.halvings == 0
        assert stats.be_fallback_steps == 0

    def test_bad_halving_budget_rejected(self):
        with pytest.raises(CircuitError):
            run_transient(rc_circuit(), tstop=ns(1), dt=ps(50),
                          max_step_halvings=-1)

    def test_ringing_detection_runs(self):
        # A smooth RC charge has no trap ringing: the detector must not
        # perturb the solution.
        plain = run_transient(rc_circuit(), tstop=ns(4), dt=ps(20),
                              method="trap")
        res = run_transient(rc_circuit(), tstop=ns(4), dt=ps(20),
                            method="trap", detect_ringing=True)
        assert res.wave("out").v[-1] == pytest.approx(
            plain.wave("out").v[-1], abs=1e-9)


class TestRCDivider:
    def test_cap_between_two_unknowns(self):
        # R-C-R sandwich: both cap terminals are unknown nodes.
        ckt = Circuit()
        ckt.v("vin", "in", Pulse(0, 1.0, ns(0.5), ps(1), ps(1), ns(40)))
        ckt.resistor("r1", "in", "a", 1e3)
        ckt.capacitor("c1", "a", "b", 1e-12)
        ckt.resistor("r2", "b", "0", 1e3)
        res = run_transient(ckt, tstop=ns(10), dt=ps(20))
        # At t -> inf the cap is open: no current, b at ground.
        assert res.wave("b").v[-1] == pytest.approx(0.0, abs=0.01)
        # Immediately after the step the cap couples the edge onto b.
        assert res.wave("b").peak() > 0.2


class TestInverterTransient:
    def build(self):
        ckt = Circuit("inv")
        ckt.v("vdd", "vdd", VDD)
        ckt.v("vin", "in", Pulse(0.0, VDD, ns(0.5), ps(20), ps(20), ns(1),
                                 ns(2)))
        ckt.mosfet("mn", "out", "in", "0", "0", NMOS_LVT,
                   w=um(0.3), l=um(0.1))
        ckt.mosfet("mp", "out", "in", "vdd", "vdd", PMOS_LVT,
                   w=um(0.6), l=um(0.1))
        ckt.capacitor("cl", "out", "0", 2e-15)
        return ckt

    def test_inversion(self):
        res = run_transient(self.build(), tstop=ns(2), dt=ps(5))
        out = res.wave("out")
        assert out.value_at(ns(0.4)) > VDD - 0.1   # input low -> out high
        assert out.value_at(ns(1.2)) < 0.1         # input high -> out low

    def test_switching_draws_supply_current(self):
        res = run_transient(self.build(), tstop=ns(2), dt=ps(5))
        supply = res.current("vdd")
        # Static CMOS: negligible quiescent current, pulses at edges.
        assert supply.peak() > 1e-6
        quiescent = abs(supply.value_at(ns(0.4)))
        assert quiescent < 1e-7

    def test_initial_condition_from_dc(self):
        ckt = self.build()
        op = solve_dc(ckt)
        res = run_transient(ckt, tstop=ns(1), dt=ps(10), ic=op)
        assert res.wave("out").v[0] == pytest.approx(op["out"], abs=1e-6)


class TestRecordValidation:
    def test_unknown_record_name_raises(self):
        # Pre-fix behaviour silently recorded 0.0 for the typo.
        with pytest.raises(CircuitError, match="record names"):
            run_transient(rc_circuit(), tstop=ns(1), dt=ps(100),
                          record=["outt"])

    def test_error_lists_every_offender(self):
        with pytest.raises(CircuitError) as err:
            run_transient(rc_circuit(), tstop=ns(1), dt=ps(100),
                          record=["out", "bogus1", "bogus2"])
        assert "bogus1" in str(err.value) and "bogus2" in str(err.value)

    def test_ground_alias_records_zero(self):
        # Aliases fold to the canonical ground node instead of erroring.
        res = run_transient(rc_circuit(), tstop=ns(1), dt=ps(100),
                            record=["out", "gnd"])
        assert np.all(np.asarray(res.voltages["gnd"]) == 0.0)
        assert len(res.wave("out").v) == len(res.time)


class TestTrapRingingCommit:
    @staticmethod
    def ringing_circuit():
        # tau = 100 us vs dt = 50 ns is harmless; what matters is
        # dt >> 2*tau at the trap scale: R*C = 100 ns, dt = 50 ns with a
        # 1 ps edge makes the companion currents alternate undamped.
        ckt = Circuit()
        ckt.v("vin", "in", Pulse(0.0, 1.0, ns(1), ps(1), ps(1), ns(200)))
        ckt.resistor("r1", "in", "out", 1e5)
        ckt.capacitor("c1", "out", "0", 1e-12)
        return ckt

    def test_ringing_fallback_triggers_on_falling_edge(self):
        # The rising edge starts from zero companion current (no
        # alternation possible); the falling edge flips a live current
        # and trips the detector exactly once.
        plain = run_transient(self.ringing_circuit(), tstop=ns(400),
                              dt=ns(50), method="trap")
        res = run_transient(self.ringing_circuit(), tstop=ns(400), dt=ns(50),
                            method="trap", detect_ringing=True)
        assert plain.stats.ringing_fallback_steps == 0
        assert res.stats.ringing_fallback_steps == 1
        # The BE redo actually replaced the trap step after the edge.
        assert abs(res.wave("out").value_at(ns(250))
                   - plain.wave("out").value_at(ns(250))) > 0.05

    def test_exactly_one_commit_per_accepted_step(self, monkeypatch):
        """The ringing path used to commit twice (trap then BE) against
        an already-updated history; pin one commit per accepted step."""
        from repro.spice import transient as tr

        commits = []
        original = tr._CompanionCaps.commit_currents

        def counting(self, i_new):
            commits.append(1)
            return original(self, i_new)

        monkeypatch.setattr(tr._CompanionCaps, "commit_currents", counting)
        res = run_transient(self.ringing_circuit(), tstop=ns(400), dt=ns(50),
                            method="trap", detect_ringing=True)
        assert res.stats.ringing_fallback_steps >= 1
        assert len(commits) == res.stats.steps_taken

    def test_exactly_one_commit_without_ringing(self, monkeypatch):
        from repro.spice import transient as tr

        commits = []
        original = tr._CompanionCaps.commit_currents

        def counting(self, i_new):
            commits.append(1)
            return original(self, i_new)

        monkeypatch.setattr(tr._CompanionCaps, "commit_currents", counting)
        res = run_transient(rc_circuit(), tstop=ns(4), dt=ps(20),
                            method="trap")
        assert len(commits) == res.stats.steps_taken
