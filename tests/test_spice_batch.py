"""The lockstep batched transient engine vs the serial oracle (PR 7).

The contract: :func:`repro.spice.run_transient_batch` simulates B
same-topology circuits in one stack of block-diagonal Newton solves and
must agree with B independent :func:`repro.spice.run_transient` runs —
waveforms to ≤1e-12 (in practice ~1e-16; the only difference is batched
BLAS rounding), the time grid bit-for-bit, and every control-flow
statistic exactly at B=1.  When the batch axis cannot apply the engine
must *fall back* to the serial path, never fail, and a lane that
diverges mid-flight falls out of the batch alone.

Also pins this PR's two bugfixes:

* the time grid is built from integer step indices (``k * dt``), so a
  tstop/dt ratio like 1e-9/1e-11 yields exactly 101 samples with the
  last one exactly ``tstop`` — no cumulative float drift (satellite 1);
* the trapezoidal ringing detector's current floor is *relative* to the
  per-trace current scale, so floor-scale alternating currents are
  still classified as ringing (satellite 2).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cells.cmos import CmosCellGenerator
from repro.cells.functions import function
from repro.cells.mcml import McmlCellGenerator
from repro.cells.pgmcml import PgMcmlCellGenerator
from repro.errors import (
    BudgetExhaustedError,
    CircuitError,
    ConvergenceError,
)
from repro.obs import MemorySink, Telemetry
from repro.spice import (
    Circuit,
    Pulse,
    Resistor,
    SolveBudget,
    run_transient,
    run_transient_batch,
)
from repro.spice.batch import BATCH_ENV, BatchSystem, batch_size_from_env
from repro.spice.dc import _ASSEMBLY_ENV
from repro.spice.transient import (
    RINGING_ABS_FLOOR,
    RINGING_REL_FLOOR,
    _ringing_mask,
    _time_grid,
    _trap_ringing,
)
from repro.tech import TECH90


# -- lane builders ------------------------------------------------------------

def rc_lane(r: float = 1e3, c: float = 1e-12) -> Circuit:
    ckt = Circuit("rc")
    ckt.v("vin", "in", Pulse(0.0, 1.0, 1e-9, 1e-12, 1e-12, 50e-9))
    ckt.resistor("r1", "in", "out", r)
    ckt.capacitor("c1", "out", "0", c)
    return ckt


def rc_lanes(seeds) -> list:
    """Same topology, per-lane R/C values (exercises per-lane params)."""
    lanes = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        lanes.append(rc_lane(r=1e3 * rng.uniform(0.5, 2.0),
                             c=1e-12 * rng.uniform(0.5, 2.0)))
    return lanes


def cell_lane(style: str, sleep_on: bool, seed: int,
              window: float) -> Circuit:
    """One generated BUF cell wired for a transient, with per-lane
    bias wiggle, load, and pulse polarity drawn from ``seed``.

    Every lane shares the template's topology and stimulus breakpoints
    (the lockstep requirements); only values differ.
    """
    rng = np.random.default_rng(seed)
    polarity = bool(rng.integers(2))
    edge = window / 16.0
    tech = TECH90
    if style == "cmos":
        gen = CmosCellGenerator(tech)
        cell = gen.build("BUF", load_cap=2e-15)
        ckt = cell.circuit
        ckt.v("vdd", cell.vdd_net, tech.vdd)
        lo, hi = (0.0, tech.vdd) if polarity else (tech.vdd, 0.0)
        ckt.v("vin", cell.input_nets["A"],
              Pulse(lo, hi, window / 2, edge, edge, window, 0.0))
        out = next(iter(cell.output_nets.values()))
        ckt.resistor("rload", out, "0", 1e5 * rng.uniform(0.5, 2.0))
        ckt.capacitor("cload", out, "0", 1e-15 * rng.uniform(0.5, 2.0))
        return ckt
    gen_cls = PgMcmlCellGenerator if style == "pgmcml" else McmlCellGenerator
    gen = gen_cls(tech)
    cell = gen.build(function("BUF"), load_cap=2e-15)
    ckt = cell.circuit
    ckt.v("vdd", cell.vdd_net, tech.vdd)
    ckt.v("vvn", cell.vn_net,
          gen.sizing.vn * (1.0 + 0.01 * rng.uniform(-1.0, 1.0)))
    ckt.v("vvp", cell.vp_net,
          gen.sizing.vp * (1.0 + 0.01 * rng.uniform(-1.0, 1.0)))
    if cell.has_sleep:
        ckt.v("vslp", cell.sleep_net, tech.vdd if sleep_on else 0.0)
    swing = gen.sizing.swing
    in_p, in_n = cell.input_nets["A"]
    hi, lo = tech.vdd, tech.vdd - swing
    p_levels, n_levels = ((lo, hi), (hi, lo)) if polarity \
        else ((hi, lo), (lo, hi))
    ckt.v("vin_p", in_p, Pulse(p_levels[0], p_levels[1], window / 2,
                               edge, edge, window, 0.0))
    ckt.v("vin_n", in_n, Pulse(n_levels[0], n_levels[1], window / 2,
                               edge, edge, window, 0.0))
    out_p, out_n = next(iter(cell.output_nets.values()))
    ckt.resistor("rload", out_p, out_n, 2e5 * rng.uniform(0.5, 2.0))
    ckt.capacitor("cload", out_p, "0", 1e-15 * rng.uniform(0.5, 2.0))
    return ckt


def assert_batch_matches_serial(circuits, tstop, dt, tol=1e-12, **kw):
    """Run both engines and compare waveforms, grids, and (at B=1) the
    full control-flow statistics."""
    serial = [run_transient(ckt, tstop, dt, **kw) for ckt in circuits]
    batch = run_transient_batch(circuits, tstop, dt, **kw)
    assert len(batch) == len(serial)
    for s, b in zip(serial, batch):
        assert np.array_equal(s.time, b.time)
        assert set(s.voltages) == set(b.voltages)
        for node in s.voltages:
            delta = float(np.max(np.abs(s.voltages[node]
                                        - b.voltages[node])))
            assert delta <= tol, (node, delta)
        for name in s.source_currents:
            delta = float(np.max(np.abs(s.source_currents[name]
                                        - b.source_currents[name])))
            assert delta <= tol, (name, delta)
    if len(circuits) == 1:
        s, b = serial[0].stats, batch[0].stats
        assert (s.steps_taken, s.newton_failures, s.halvings,
                s.retried_intervals, s.be_fallback_steps,
                s.ringing_fallback_steps) == \
               (b.steps_taken, b.newton_failures, b.halvings,
                b.retried_intervals, b.be_fallback_steps,
                b.ringing_fallback_steps)
    return serial, batch


# -- satellite 1: drift-free time grid ---------------------------------------

class TestTimeGridExactness:
    def test_integer_ratio_grid_is_exact(self):
        grid = _time_grid(1e-9, 1e-11, ())
        assert len(grid) == 101
        assert grid[-1] == 1e-9
        # Interior samples are single products k*dt (no accumulated
        # summation error); the final sample is tstop itself.
        assert np.array_equal(grid[:-1], np.arange(100) * 1e-11)

    def test_non_divisible_ratio_ends_exactly_at_tstop(self):
        grid = _time_grid(1e-9, 3e-12, ())
        assert grid[-1] == 1e-9
        # Interior points are exact integer multiples of dt, not a
        # cumulative sum that drifts k ULPs by the end of the window.
        interior = grid[:-1]
        ks = np.round(interior / 3e-12).astype(int)
        assert np.array_equal(interior, ks * 3e-12)

    def test_many_steps_no_drift(self):
        # 1e5 cumulative additions of 1e-11 drift by ~1e-21 per step;
        # the index-built grid hits every k*dt bit-for-bit.
        grid = _time_grid(1e-6, 1e-11, ())
        assert len(grid) == 100001
        assert grid[-1] == 1e-6
        assert grid[50000] == 50000 * 1e-11
        assert np.array_equal(grid[:-1], np.arange(100000) * 1e-11)

    @pytest.mark.parametrize("engine", ["serial", "batch"])
    def test_transient_grid_exact_sample_count(self, engine):
        tstop, dt = 1e-9, 1e-11
        if engine == "serial":
            times = [run_transient(rc_lane(), tstop, dt).time]
        else:
            times = [r.time for r in
                     run_transient_batch(rc_lanes([1, 2, 3]), tstop, dt)]
        for time in times:
            assert len(time) == 101
            assert time[-1] == tstop
            assert np.array_equal(time[:-1], np.arange(100) * dt)

    def test_breakpoints_still_honoured(self):
        grid = _time_grid(1e-9, 1e-11, (3.33e-10,))
        assert np.any(grid == 3.33e-10)
        assert grid[-1] == 1e-9


# -- satellite 2: relative-floor ringing detector ----------------------------

class TestRingingDetector:
    def test_floor_scale_alternation_is_ringing(self):
        # Magnitudes below the old absolute floor (1e-12 A) but genuinely
        # alternating: the relative floor must classify this as ringing.
        i_new = np.array([1e-13, -1e-13, 5e-14])
        i_old = np.array([-1e-13, 1e-13, -5e-14])
        assert _trap_ringing(i_new, i_old)

    def test_tiny_component_on_large_trace_is_not_ringing(self):
        # An alternating current 8 orders below the trace's dominant
        # current is numerical noise, not oscillation.
        i_new = np.array([1e-3, 1e-11])
        i_old = np.array([1e-3, -1e-11])
        assert not _trap_ringing(i_new, i_old)

    def test_decaying_alternation_is_not_ringing(self):
        i_new = np.array([1e-13])
        i_old = np.array([-1e-12])
        assert not _trap_ringing(i_new, i_old)

    def test_true_zero_currents_are_not_ringing(self):
        zeros = np.zeros(4)
        assert not _trap_ringing(zeros, zeros)
        assert not _trap_ringing(np.zeros(0), np.zeros(0))
        assert not _trap_ringing(None, None)

    def test_floor_is_relative_to_each_trace(self):
        # Same alternating component: masked on the lane with a large
        # dominant current, flagged on the lane without one.
        i_new = np.array([[1e-3, 1e-11], [0.0, 1e-11]])
        i_old = np.array([[1e-3, -1e-11], [0.0, -1e-11]])
        mask = _ringing_mask(i_new, i_old)
        assert not mask[0].any()
        assert mask[1].any()

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None, derandomize=True)
    def test_batched_mask_matches_serial_rows_bitwise(self, seed):
        """Per-trace detection on a (B, E) stack is bit-for-bit the
        serial detector applied row by row (same inputs in, same
        booleans out)."""
        rng = np.random.default_rng(seed)
        shape = (int(rng.integers(1, 9)), int(rng.integers(1, 13)))
        scale = 10.0 ** rng.integers(-14, 0, size=(shape[0], 1))
        i_new = rng.uniform(-1.0, 1.0, shape) * scale
        i_old = rng.uniform(-1.0, 1.0, shape) * scale
        batched = _ringing_mask(i_new, i_old)
        for b in range(shape[0]):
            assert np.array_equal(batched[b], _ringing_mask(i_new[b],
                                                            i_old[b]))
            assert bool(batched[b].any()) == _trap_ringing(i_new[b],
                                                           i_old[b])


# -- satellite 4: batched == serial property suite ---------------------------

class TestBatchedEquivalenceRC:
    @given(st.integers(0, 2**32 - 1),
           st.sampled_from([1, 3, 16]),
           st.sampled_from(["be", "trap"]))
    @settings(max_examples=12, deadline=None, derandomize=True)
    def test_rc_lanes_match(self, seed, nb, method):
        rng = np.random.default_rng(seed)
        lanes = rc_lanes(rng.integers(0, 2**31, size=nb))
        assert_batch_matches_serial(lanes, tstop=4e-9, dt=1e-10,
                                    method=method, detect_ringing=True)

    def test_ragged_lane_count(self):
        # A lane count that is not a tidy power of two (the "ragged
        # final chunk" shape a caller slicing 7 traces by 3 produces).
        for nb in (5, 7):
            assert_batch_matches_serial(rc_lanes(range(nb)),
                                        tstop=2e-9, dt=1e-10)

    def test_single_lane_full_stat_parity_with_ringing(self):
        assert_batch_matches_serial(rc_lanes([11]), tstop=4e-9, dt=2e-10,
                                    method="trap", detect_ringing=True)


class TestBatchedEquivalenceCells:
    WINDOW = 64e-12
    DT = WINDOW / 16

    @given(st.integers(0, 2**32 - 1),
           st.sampled_from([("cmos", True), ("mcml", True),
                            ("pgmcml", True), ("pgmcml", False)]))
    @settings(max_examples=8, deadline=None, derandomize=True)
    def test_cell_lanes_match(self, seed, style_sleep):
        style, sleep_on = style_sleep
        rng = np.random.default_rng(seed)
        nb = int(rng.choice([1, 3]))
        lanes = [cell_lane(style, sleep_on, s, self.WINDOW)
                 for s in rng.integers(0, 2**31, size=nb)]
        assert_batch_matches_serial(lanes, tstop=self.WINDOW, dt=self.DT,
                                    method="trap", detect_ringing=True)

    @pytest.mark.parametrize("style,sleep_on", [("cmos", True),
                                                ("mcml", True),
                                                ("pgmcml", True),
                                                ("pgmcml", False)])
    def test_batch16_matches_serial(self, style, sleep_on):
        lanes = [cell_lane(style, sleep_on, seed, self.WINDOW)
                 for seed in range(16)]
        assert_batch_matches_serial(lanes, tstop=self.WINDOW, dt=self.DT)

    def test_be_stats_match_at_batch3(self):
        lanes = [cell_lane("pgmcml", True, seed, self.WINDOW)
                 for seed in range(3)]
        serial, batch = assert_batch_matches_serial(
            lanes, tstop=self.WINDOW, dt=self.DT, method="be")
        for s, b in zip(serial, batch):
            assert s.stats.steps_taken == b.stats.steps_taken
            assert s.stats.newton_failures == b.stats.newton_failures
            assert s.stats.halvings == b.stats.halvings


# -- serial fallbacks and lane isolation -------------------------------------

def _batch_telemetry():
    sink = MemorySink()
    return Telemetry(sinks=[sink]), sink


def _events(sink, name):
    return [r for r in sink.records if r.get("name") == name]


class TestSerialFallback:
    def test_on_step_hook_falls_back(self):
        tele, sink = _batch_telemetry()
        seen = []
        results = run_transient_batch(
            rc_lanes([1, 2]), 2e-9, 1e-10,
            on_step=seen.append, telemetry=tele)
        assert len(results) == 2 and seen
        events = _events(sink, "spice.batch.fallback")
        assert events and events[0]["attrs"]["reason"] == "on_step-hook"

    def test_loop_assembly_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(_ASSEMBLY_ENV, "loop")
        tele, sink = _batch_telemetry()
        results = run_transient_batch(rc_lanes([1]), 2e-9, 1e-10,
                                      telemetry=tele)
        assert len(results) == 1
        assert _events(sink, "spice.batch.fallback")

    def test_mismatched_topology_falls_back(self):
        a = rc_lane()
        b = rc_lane()
        b.resistor("r2", "out", "0", 1e6)
        tele, sink = _batch_telemetry()
        serial = [run_transient(c, 2e-9, 1e-10) for c in (a, b)]
        a2, b2 = rc_lane(), rc_lane()
        b2.resistor("r2", "out", "0", 1e6)
        results = run_transient_batch([a2, b2], 2e-9, 1e-10, telemetry=tele)
        events = _events(sink, "spice.batch.fallback")
        assert events and "unbatchable" in events[0]["attrs"]["reason"]
        for s, r in zip(serial, results):
            assert np.array_equal(s.voltages["out"], r.voltages["out"])

    def test_unbanked_device_class_falls_back(self):
        class NoisyResistor(Resistor):
            pass

        lanes = rc_lanes([1, 2])
        for ckt in lanes:
            ckt.add(NoisyResistor("rx", "out", "0", 1e7))
        tele, sink = _batch_telemetry()
        results = run_transient_batch(lanes, 2e-9, 1e-10, telemetry=tele)
        assert len(results) == 2
        assert _events(sink, "spice.batch.fallback")

    def test_no_unknowns_falls_back(self):
        lanes = []
        for _ in range(2):
            ckt = Circuit("fixed_only")
            ckt.v("vin", "in", 1.0)
            ckt.resistor("r1", "in", "0", 1e3)
            lanes.append(ckt)
        tele, sink = _batch_telemetry()
        results = run_transient_batch(lanes, 1e-9, 1e-10, telemetry=tele)
        assert len(results) == 2
        events = _events(sink, "spice.batch.fallback")
        assert events and events[0]["attrs"]["reason"] == "no-unknowns"

    def test_validation_matches_serial(self):
        with pytest.raises(CircuitError):
            run_transient_batch(rc_lanes([1]), tstop=0.0, dt=1e-10)
        with pytest.raises(CircuitError):
            run_transient_batch(rc_lanes([1]), 1e-9, 1e-10, method="gear")
        with pytest.raises(CircuitError):
            run_transient_batch(rc_lanes([1]), 1e-9, 1e-10,
                                max_step_halvings=-1)
        with pytest.raises(CircuitError):
            run_transient_batch(rc_lanes([1]), 1e-9, 1e-10,
                                record=["nope"])
        assert run_transient_batch([], 1e-9, 1e-10) == []


class TestLaneIsolation:
    def test_failed_lane_retried_serially(self, monkeypatch):
        """A lane that falls out of the batch is re-run serially and its
        serial result is returned verbatim; the other lanes keep their
        batched results."""
        from repro.spice import batch as batch_mod
        lanes = rc_lanes([1, 2, 3])
        serial = [run_transient(c, 2e-9, 1e-10) for c in lanes]

        real_march = batch_mod._march

        def wounded_march(*args, **kwargs):
            results = real_march(*args, **kwargs)
            results[1] = None  # lane 1 "diverged" mid-flight
            return results

        monkeypatch.setattr(batch_mod, "_march", wounded_march)
        tele, sink = _batch_telemetry()
        results = run_transient_batch(rc_lanes([1, 2, 3]), 2e-9, 1e-10,
                                      telemetry=tele)
        events = _events(sink, "spice.batch.lane_isolated")
        assert len(events) == 1 and events[0]["attrs"]["lane"] == 1
        for s, r in zip(serial, results):
            assert np.array_equal(s.voltages["out"], r.voltages["out"])

    def test_serial_retry_error_is_normative(self, monkeypatch):
        from repro.spice import batch as batch_mod

        real_march = batch_mod._march

        def wounded_march(*args, **kwargs):
            results = real_march(*args, **kwargs)
            results[0] = None
            return results

        def failing_serial(*args, **kwargs):
            raise ConvergenceError("lane cannot converge serially either")

        monkeypatch.setattr(batch_mod, "_march", wounded_march)
        monkeypatch.setattr(batch_mod, "run_transient", failing_serial)
        with pytest.raises(ConvergenceError):
            run_transient_batch(rc_lanes([1, 2]), 2e-9, 1e-10)


class TestBudgetParity:
    def test_step_budget_exhaustion_matches_serial(self):
        budget = SolveBudget(max_transient_steps=5)
        with pytest.raises(BudgetExhaustedError):
            run_transient(rc_lane(), 4e-9, 1e-10, budget=budget)
        with pytest.raises(BudgetExhaustedError):
            run_transient_batch(rc_lanes([1, 2, 3]), 4e-9, 1e-10,
                                budget=budget)

    def test_ladder_budget_exhaustion_matches_serial(self):
        budget = SolveBudget(max_ladder_attempts=0)
        serial_err = batch_err = None
        try:
            run_transient(rc_lane(), 1e-9, 1e-10, budget=budget)
        except ConvergenceError as err:
            serial_err = err
        try:
            run_transient_batch(rc_lanes([1]), 1e-9, 1e-10, budget=budget)
        except ConvergenceError as err:
            batch_err = err
        assert serial_err is not None and batch_err is not None
        assert type(batch_err) is type(serial_err)

    def test_generous_budget_unchanged(self):
        budget = SolveBudget(max_newton_iterations=10_000,
                             max_transient_steps=10_000,
                             max_transient_rejections=64)
        assert_batch_matches_serial(rc_lanes([4, 5]), 2e-9, 1e-10,
                                    budget=budget)


class TestBatchKnob:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV, raising=False)
        assert batch_size_from_env() is None
        assert batch_size_from_env(default=1) == 1
        monkeypatch.setenv(BATCH_ENV, "32")
        assert batch_size_from_env() == 32
        monkeypatch.setenv(BATCH_ENV, "zero")
        with pytest.raises(CircuitError):
            batch_size_from_env()
        monkeypatch.setenv(BATCH_ENV, "0")
        with pytest.raises(CircuitError):
            batch_size_from_env()

    def test_cli_flag_sets_env(self, monkeypatch, capsys):
        import os

        import repro.__main__ as main_mod
        monkeypatch.delenv(BATCH_ENV, raising=False)
        assert main_mod.main(["list", "--spice-batch", "8"]) == 0
        assert os.environ.get(BATCH_ENV) == "8"
        monkeypatch.delenv(BATCH_ENV, raising=False)

    def test_telemetry_counts_lockstep_work(self):
        tele, _ = _batch_telemetry()
        run_transient_batch(rc_lanes([1, 2, 3]), 2e-9, 1e-10,
                            telemetry=tele)
        assert tele.counter("spice.batch.runs").value >= 1
        assert tele.counter("spice.batch.lanes").value == 3
        assert tele.counter("spice.batch.lockstep_solves").value > 0
        assert tele.counter("spice.batch.lockstep_iterations").value > 0
