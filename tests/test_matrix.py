"""Tie-aware ranking, higher-order attacks, and the campaign matrix.

The regression suite for this PR's headline bugfix — key rank must not
depend on the key byte value when the score vector is flat — plus unit
coverage for the grid machinery (spec expansion, acquisition dedupe,
cell-failure isolation) and the new second-order CPA / MLPA attacks.
"""

import json

import numpy as np
import pytest

from repro.aes import SBOX
from repro.errors import AttackError, DeviceError, ReproError
from repro.obs import MemorySink, Telemetry
from repro.sca import (
    MatrixSpec,
    centered_product,
    cpa_attack,
    guessing_entropy,
    key_rank,
    mlpa_attack,
    mtd,
    rank_and_ties,
    run_matrix,
    second_order_cpa,
    tie_aware_rank,
    tie_width,
)
from repro.sca.matrix import MatrixCell, is_transient_error_code


def hw(values):
    return np.unpackbits(
        np.asarray(values, dtype=np.uint8)[:, None], axis=1).sum(axis=1)


def leaky_traces(pts, key, n_samples=8, leak_sample=3, sigma=0.05, seed=0):
    """Synthetic first-order HW leakage at one sample."""
    rng = np.random.default_rng(seed)
    traces = rng.normal(0.0, sigma, (len(pts), n_samples))
    traces[:, leak_sample] += hw(np.asarray(SBOX)[np.asarray(pts) ^ key])
    return traces


class TestTieAwareRank:
    def test_unique_best_is_rank_zero(self):
        scores = np.zeros(256)
        scores[42] = 1.0
        assert tie_aware_rank(scores, 42) == 0.0
        assert tie_aware_rank(scores, 0) == 128.0  # mid of the 255-tie

    def test_flat_vector_ranks_midpoint_for_every_index(self):
        scores = np.ones(256)
        ranks = {tie_aware_rank(scores, k) for k in range(256)}
        assert ranks == {127.5}

    def test_partial_tie_class(self):
        scores = np.array([3.0, 2.0, 2.0, 2.0, 1.0])
        assert tie_aware_rank(scores, 0) == 0.0
        # 1 strictly greater + midpoint of the 3-way tie class.
        assert tie_aware_rank(scores, 1) == 2.0
        assert tie_aware_rank(scores, 4) == 4.0

    def test_tie_width(self):
        scores = np.array([5.0, 5.0, 1.0])
        assert tie_width(scores) == 2
        assert tie_width(scores, 2) == 1

    def test_rank_and_ties_triple(self):
        rank, width, at_index = rank_and_ties(np.ones(4), 2)
        assert rank == 1.5 and width == 4 and at_index == 4

    def test_validation(self):
        with pytest.raises(AttackError):
            tie_aware_rank([], 0)
        with pytest.raises(AttackError):
            tie_aware_rank([1.0, 2.0], 5)


class TestFlatTraceRankRegression:
    """The headline bug: on flat protected traces a stable argsort
    reported the key byte *itself* as the rank, biasing guessing entropy
    by the key value.  Rank must now be key-independent."""

    @pytest.mark.parametrize("key", [0x00, 0x01, 0x3C, 0x80, 0xFF])
    def test_rank_does_not_depend_on_key_byte(self, key):
        pts = list(range(64))
        traces = np.ones((64, 6))  # zero-variance: no information at all
        result = cpa_attack(traces, pts, true_key=key)
        assert result.rank_of_true_key() == 127.5
        assert result.best_guess_tie_width() == 256

    def test_key_rank_metric_flat(self):
        peaks = np.zeros(256)
        assert {key_rank(peaks, k) for k in (0, 7, 200, 255)} == {127.5}

    def test_guessing_entropy_of_flat_campaigns_is_half_keyspace(self):
        assert guessing_entropy([127.5, 127.5]) == 127.5


class TestMtdSubStep:
    def test_fewer_traces_than_step_still_evaluates(self):
        key = 0x5A
        pts = list(range(10))
        traces = leaky_traces(pts, key, sigma=1e-3)
        # Before the fix: range(16, 11, 16) was empty and mtd reported
        # "never disclosed" without running CPA once.
        assert mtd(traces, pts, key, step=16, stable_windows=1) == 10

    def test_sub_step_non_disclosing_returns_none(self):
        pts = list(range(10))
        traces = np.ones((10, 6))
        assert mtd(traces, pts, 0x11, step=16, stable_windows=1) is None


class TestHighOrder:
    def test_second_order_defeats_masking(self):
        rng = np.random.default_rng(7)
        key, n = 0x3C, 500
        pts = rng.integers(0, 256, n)
        masks = rng.integers(0, 256, n)
        sbox = np.asarray(SBOX)
        traces = rng.normal(0.0, 0.5, (n, 16))
        traces[:, 4] += hw(sbox[pts ^ key] ^ masks)
        traces[:, 11] += hw(masks)
        first = cpa_attack(traces, pts, true_key=key)
        second = second_order_cpa(traces, pts, true_key=key,
                                  max_samples=16)
        assert first.rank_of_true_key() > 10
        assert second.succeeded
        assert second.rank_of_true_key() == 0.0

    def test_centered_product_shape_and_pairs(self):
        traces = np.arange(40, dtype=float).reshape(8, 5)
        combined, pairs = centered_product(traces, max_samples=3)
        assert combined.shape == (8, 6)  # 3*(3+1)/2
        assert pairs.shape == (6, 2)
        assert (pairs[:, 0] <= pairs[:, 1]).all()

    def test_centered_product_validation(self):
        with pytest.raises(AttackError):
            centered_product(np.ones((1, 4)))
        with pytest.raises(AttackError):
            centered_product(np.ones(4))

    def test_mlpa_recovers_arbitrary_signed_weights(self):
        rng = np.random.default_rng(3)
        key, n = 0xA7, 400
        pts = rng.integers(0, 256, n)
        weights = rng.normal(0.0, 1.0, 8)  # mixed-sign per-bit leakage
        bits = (np.asarray(SBOX)[pts ^ key][:, None] >> np.arange(8)) & 1
        traces = rng.normal(0.0, 0.5, (n, 12))
        traces[:, 6] += bits @ weights
        result = mlpa_attack(traces, pts, true_key=key)
        assert result.succeeded
        assert result.rank_of_true_key() == 0.0
        assert result.degree == 2

    def test_mlpa_degrades_to_degree_one(self):
        rng = np.random.default_rng(4)
        pts = rng.integers(0, 256, 40)
        traces = rng.normal(0.0, 1.0, (40, 4))
        result = mlpa_attack(traces, pts, true_key=0x00, degree=2)
        assert result.degree == 1  # 40 traces cannot support 36 regressors

    def test_mlpa_too_few_traces_raises(self):
        with pytest.raises(AttackError):
            mlpa_attack(np.ones((10, 4)), list(range(10)), degree=1)

    def test_mlpa_flat_traces_rank_key_independent(self):
        pts = list(range(64))
        traces = np.ones((64, 4))
        ranks = {mlpa_attack(traces, pts, true_key=k).rank_of_true_key()
                 for k in (0x00, 0x55, 0xFF)}
        assert ranks == {127.5}


class TestMatrixSpec:
    def test_expand_is_full_cartesian_product(self):
        spec = MatrixSpec(styles=("cmos", "wddl"), attacks=("cpa", "tvla"),
                          noises=(0.0, 5e-7), corners=("tt", "ss"),
                          budgets=(16, 32))
        cells = spec.expand()
        assert len(cells) == 2 * 2 * 2 * 2 * 2
        assert len(set(cells)) == len(cells)
        assert cells[0] == MatrixCell("cmos", "cpa", 0.0, "tt", 16)

    def test_schedule_per_attack(self):
        assert MatrixCell("cmos", "tvla", 0.0, "tt", 16).schedule == "tvla"
        assert MatrixCell("cmos", "cpa", 0.0, "tt", 16).schedule == "random"

    def test_attacks_sharing_traces_share_the_key(self):
        a = MatrixCell("cmos", "cpa", 0.0, "tt", 16)
        b = MatrixCell("cmos", "mlpa", 0.0, "tt", 16)
        c = MatrixCell("cmos", "tvla", 0.0, "tt", 16)
        assert a.trace_key(0) == b.trace_key(0)
        assert a.trace_key(0) != c.trace_key(0)
        assert a.trace_key(0) != a.trace_key(1)

    def test_validation(self):
        with pytest.raises(AttackError):
            MatrixSpec(styles=("nmos",), attacks=("cpa",))
        with pytest.raises(AttackError):
            MatrixSpec(styles=("cmos",), attacks=("rowhammer",))
        with pytest.raises(DeviceError):
            MatrixSpec(styles=("cmos",), attacks=("cpa",), corners=("xx",))
        with pytest.raises(AttackError):
            MatrixSpec(styles=("cmos",), attacks=("cpa",), budgets=(2,))
        with pytest.raises(AttackError):
            MatrixSpec(styles=("cmos",), attacks=("cpa",), repeats=0)
        with pytest.raises(AttackError):
            MatrixSpec(styles=("cmos",), attacks=("cpa",), key=256)

    def test_from_dict_rejects_unknown_and_missing_keys(self):
        with pytest.raises(AttackError):
            MatrixSpec.from_dict({"styles": ["cmos"]})
        with pytest.raises(AttackError):
            MatrixSpec.from_dict({"styles": ["cmos"], "attacks": ["cpa"],
                                  "turbo": True})

    def test_json_roundtrip(self, tmp_path):
        spec = MatrixSpec(styles=("cmos",), attacks=("cpa",),
                          budgets=(16,), key=7)
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(spec.to_dict()))
        loaded = MatrixSpec.from_json(str(path))
        assert loaded == spec

    def test_from_json_missing_file(self):
        with pytest.raises(AttackError):
            MatrixSpec.from_json("/nonexistent/grid.json")


class TestRunMatrix:
    def test_acquisition_dedupe_across_attacks(self):
        spec = MatrixSpec(styles=("cmos",), attacks=("cpa", "dpa", "mlpa"),
                          budgets=(32,), repeats=1)
        report = run_matrix(spec, erc=False)
        assert all(c.ok for c in report.cells)
        # Three rank attacks share one random-schedule trace set.
        assert report.acquisitions == 1
        assert report.acquisitions_reused == 2

    def test_cell_failure_isolation(self):
        # Odd budget: TVLA must reject (the interleaved-pairs bugfix)
        # and MLPA's basis is infeasible at 17 traces — but the CPA cell
        # on the same trace set still completes.
        spec = MatrixSpec(styles=("cmos",), attacks=("cpa", "mlpa", "tvla"),
                          budgets=(17,), repeats=1)
        report = run_matrix(spec, erc=False)
        by_attack = {c.cell.attack: c for c in report.cells}
        assert by_attack["cpa"].ok
        assert not by_attack["mlpa"].ok
        assert by_attack["mlpa"].error_code == "E_ATTACK"
        assert not by_attack["tvla"].ok
        assert by_attack["tvla"].error_code == "E_ATTACK"
        assert "even" in by_attack["tvla"].error

    def test_report_structure_and_serialisation(self, tmp_path):
        spec = MatrixSpec(styles=("cmos",), attacks=("cpa",),
                          budgets=(24,), repeats=2)
        report = run_matrix(spec, erc=False)
        assert len(report.cells) == 1
        cell = report.cells[0]
        assert len(cell.ranks) == 2  # one rank per die
        assert cell.guessing_entropy == pytest.approx(
            float(np.mean(cell.ranks)))
        assert cell.mtd_evaluated
        assert len(report.frontier) == 1
        row = report.frontier[0]
        assert row.style == "cmos" and row.area_um2 > 0.0
        assert row.area_overhead == pytest.approx(1.0)
        path = tmp_path / "report.json"
        report.to_json(str(path))
        data = json.loads(path.read_text())
        assert data["spec"]["styles"] == ["cmos"]
        assert len(data["cells"]) == 1
        table = report.format_table()
        assert "frontier" in table and "cmos" in table

    def test_determinism(self):
        spec = MatrixSpec(styles=("cmos",), attacks=("cpa",),
                          budgets=(24,), repeats=1)
        a = run_matrix(spec, erc=False)
        b = run_matrix(spec, erc=False)
        assert a.cells[0].ranks == b.cells[0].ranks

    def test_tvla_schedule_interleaves_fixed_and_random(self):
        spec = MatrixSpec(styles=("cmos",), attacks=("tvla",),
                          budgets=(32,), repeats=1)
        report = run_matrix(spec, erc=False)
        cell = report.cells[0]
        assert cell.ok
        assert cell.max_abs_t is not None
        assert cell.leak_detected is not None


class TestRetryFailed:
    """The ``retry_failed`` knob: transient acquisition failures are
    re-attempted instead of replayed into every consumer cell."""

    SPEC = MatrixSpec(styles=("cmos",), attacks=("cpa", "dpa"),
                      budgets=(16,), repeats=1)

    def test_transient_error_code_predicate(self):
        assert is_transient_error_code("E_BACKEND_DIED")
        assert is_transient_error_code("E_BACKEND_PROTOCOL")
        assert is_transient_error_code("E_ACQUISITION")
        assert not is_transient_error_code("E_ATTACK")
        assert not is_transient_error_code("E_CONVERGENCE")
        assert not is_transient_error_code(None)

    def _flaky(self, monkeypatch, error_code, failures=1):
        """Make the first ``failures`` acquisitions die with
        ``error_code``; later ones run for real.  Returns the call
        counter."""
        from repro.sca import matrix as matrix_mod

        real = matrix_mod._GridRunner._acquire
        calls = {"n": 0}

        def acquire(runner, cell, repeat):
            calls["n"] += 1
            if calls["n"] <= failures:
                raise ReproError("injected acquisition death",
                                 error_code=error_code)
            return real(runner, cell, repeat)

        monkeypatch.setattr(matrix_mod._GridRunner, "_acquire", acquire)
        return calls

    def test_default_replays_the_cached_failure(self, monkeypatch):
        calls = self._flaky(monkeypatch, "E_BACKEND_DIED")
        report = run_matrix(self.SPEC, erc=False)
        assert [c.ok for c in report.cells] == [False, False]
        assert {c.error_code for c in report.cells} == {"E_BACKEND_DIED"}
        assert calls["n"] == 1  # second cell consumed the cached failure
        assert report.acquisitions_reused == 1

    def test_retry_failed_reattempts_transient_failures(self, monkeypatch):
        calls = self._flaky(monkeypatch, "E_BACKEND_DIED")
        sink = MemorySink()
        tele = Telemetry(sinks=[sink])
        report = run_matrix(self.SPEC, telemetry=tele, erc=False,
                            retry_failed=True)
        by_attack = {c.cell.attack: c for c in report.cells}
        assert not by_attack["cpa"].ok  # the attempt that hit the fault
        assert by_attack["cpa"].error_code == "E_BACKEND_DIED"
        assert by_attack["dpa"].ok  # the retry recovered
        assert calls["n"] == 2
        retries = [r for r in sink.records
                   if r.get("kind") == "event"
                   and r.get("name") == "sca.matrix.retry_failed"]
        assert len(retries) == 1
        assert retries[0]["attrs"]["error_code"] == "E_BACKEND_DIED"

    def test_retry_failed_ignores_nontransient_codes(self, monkeypatch):
        calls = self._flaky(monkeypatch, "E_CONVERGENCE")
        report = run_matrix(self.SPEC, erc=False, retry_failed=True)
        assert [c.ok for c in report.cells] == [False, False]
        assert calls["n"] == 1  # a deterministic failure is not retried
