"""Tracing-invariance: telemetry must never change a single output byte.

The ISSUE contract: every simulation and trace artefact is byte-identical
with telemetry disabled, enabled in memory, or redirected to a JSONL
file — including kill-and-resume campaigns — for all three cell styles.
These tests prove it, and additionally pin the structural determinism of
the span trees (serial, threaded, and forked acquisition reassemble to
the same tree).

Set ``REPRO_OBS_TRACE_ARTIFACT=/path/out.jsonl`` to have the pgmcml
equivalence run leave its validated JSONL trace behind (CI uploads it as
an artifact).
"""

import os
import shutil

import numpy as np
import pytest

from repro.cells import (
    build_cmos_library,
    build_mcml_library,
    build_pg_mcml_library,
)
from repro.experiments.runner import CheckpointedRun
from repro.obs import (
    JsonlSink,
    MemorySink,
    Telemetry,
    read_jsonl,
    span_tree,
    validate_stream,
)
from repro.sca import AttackCampaign, acquire_traces
from repro.sca.acquisition import _fork_available
from repro.sca.attack import build_reduced_aes
from repro.spice import Circuit, Pulse, run_transient
from repro.units import ns, ps

KEY = 0x2B
PTS = list(range(24))

_BUILDERS = {
    "cmos": build_cmos_library,
    "mcml": build_mcml_library,
    "pgmcml": build_pg_mcml_library,
}


@pytest.fixture(scope="module", params=sorted(_BUILDERS))
def style_setup(request):
    """(style, library, netlist, reference matrix with NO telemetry)."""
    library = _BUILDERS[request.param]()
    netlist, _ = build_reduced_aes(library)
    reference = acquire_traces(netlist, KEY, PTS, workers=1)
    return request.param, library, netlist, reference


def _strip_root_env(forest):
    """Drop attrs that legitimately vary with execution strategy."""
    for root in forest:
        for key in ("backend", "workers"):
            root["attrs"].pop(key, None)
    return forest


class TestByteIdenticalWithTelemetry:
    def test_memory_telemetry_changes_nothing(self, style_setup):
        style, _, netlist, reference = style_setup
        tele = Telemetry(sinks=[MemorySink()])
        observed = acquire_traces(netlist, KEY, PTS, workers=1,
                                  telemetry=tele)
        assert np.array_equal(observed, reference)
        assert tele.registry.counter("sca.acquisition.traces").value == \
            len(PTS)
        validate_stream(tele.sinks[0].records)

    def test_jsonl_redirected_telemetry_changes_nothing(self, style_setup,
                                                        tmp_path):
        style, _, netlist, reference = style_setup
        path = tmp_path / f"{style}.jsonl"
        tele = Telemetry(sinks=[JsonlSink(path)])
        observed = acquire_traces(netlist, KEY, PTS, workers=2,
                                  backend="thread", chunk_size=8,
                                  telemetry=tele)
        tele.emit_metrics()
        tele.close()
        assert np.array_equal(observed, reference)
        records = read_jsonl(path, strict=True)
        validate_stream(records)
        assert any(r["kind"] == "metrics" for r in records)
        artifact = os.environ.get("REPRO_OBS_TRACE_ARTIFACT")
        if artifact and style == "pgmcml":
            os.makedirs(os.path.dirname(artifact) or ".", exist_ok=True)
            shutil.copyfile(path, artifact)

    def test_kill_and_resume_with_telemetry_matches(self, style_setup,
                                                    tmp_path):
        """Telemetry through checkpoint save/kill/load/resume: the
        resumed matrix is still byte-identical, and checkpoint spans
        cover both the saves before the kill and the resume load."""
        _, library, _, reference = style_setup
        path = tmp_path / "campaign.npz"
        first = Telemetry(sinks=[MemorySink()])

        class _KillAfter(CheckpointedRun):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self._saves = 0

            def _save(self, blocks, n_done, fingerprint, state):
                super()._save(blocks, n_done, fingerprint, state)
                self._saves += 1
                if self._saves >= 2:
                    raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            AttackCampaign(library, KEY, telemetry=first).run_checkpointed(
                _KillAfter(path, chunk_size=8, telemetry=first), PTS)
        assert any(s["name"] == "checkpoint.save"
                   for s in first.sinks[0].spans())

        second = Telemetry(sinks=[MemorySink()])
        runner = CheckpointedRun(path, chunk_size=8, telemetry=second)
        resumed = AttackCampaign(library, KEY,
                                 telemetry=second).run_checkpointed(
            runner, PTS)
        assert runner.stats.chunks_resumed == 2
        assert np.array_equal(resumed.traces, reference)
        assert any(s["name"] == "checkpoint.load"
                   for s in second.sinks[0].spans())
        assert second.registry.counter("checkpoint.chunks_resumed").value \
            == 2
        validate_stream(second.sinks[0].records)

    def test_resume_without_telemetry_after_telemetry_run(self, style_setup,
                                                          tmp_path):
        """A campaign started with telemetry resumes identically with it
        disabled — and vice versa the checkpoint fingerprint is blind to
        observability entirely."""
        _, library, _, reference = style_setup
        path = tmp_path / "mixed.npz"

        class _KillAfter(CheckpointedRun):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self._saves = 0

            def _save(self, blocks, n_done, fingerprint, state):
                super()._save(blocks, n_done, fingerprint, state)
                self._saves += 1
                if self._saves >= 1:
                    raise KeyboardInterrupt

        tele = Telemetry(sinks=[MemorySink()])
        with pytest.raises(KeyboardInterrupt):
            AttackCampaign(library, KEY, telemetry=tele).run_checkpointed(
                _KillAfter(path, chunk_size=8, telemetry=tele), PTS)
        resumed = AttackCampaign(library, KEY).run_checkpointed(
            CheckpointedRun(path, chunk_size=8), PTS)
        assert np.array_equal(resumed.traces, reference)


class TestSpanTreeDeterminism:
    """Serial, threaded, and forked acquisition produce the SAME span
    tree (names, nesting, order, attrs) once timestamps and ids are
    stripped — workers reassemble by chunk index."""

    def _tree(self, netlist, workers, backend):
        tele = Telemetry(sinks=[MemorySink()])
        acquire_traces(netlist, KEY, PTS, workers=workers, backend=backend,
                       chunk_size=8, telemetry=tele)
        return _strip_root_env(span_tree(tele.sinks[0].records))

    def test_serial_vs_thread_trees_identical(self, style_setup):
        _, _, netlist, _ = style_setup
        serial = self._tree(netlist, workers=1, backend="serial")
        threaded = self._tree(netlist, workers=4, backend="thread")
        assert serial == threaded
        chunks = serial[0]["children"]
        assert [c["name"] for c in chunks] == \
            ["sca.acquisition.chunk"] * 3
        assert [c["attrs"]["chunk"] for c in chunks] == [0, 1, 2]

    @pytest.mark.skipif(not _fork_available(),
                        reason="fork start method unavailable")
    def test_fork_tree_identical_too(self, style_setup):
        _, _, netlist, _ = style_setup
        serial = self._tree(netlist, workers=1, backend="serial")
        forked = self._tree(netlist, workers=4, backend="process")
        assert serial == forked


class TestTransientInvariance:
    def _rc(self):
        ckt = Circuit("rc")
        ckt.v("vin", "in", Pulse(0.0, 1.0, ns(1), ps(1), ps(1), ns(50)))
        ckt.resistor("r1", "in", "out", 1e3)
        ckt.capacitor("c1", "out", "0", 1e-12)
        return ckt

    def test_transient_arrays_identical_on_off(self):
        bare = run_transient(self._rc(), tstop=ns(6), dt=ps(20))
        tele = Telemetry(sinks=[MemorySink()])
        observed = run_transient(self._rc(), tstop=ns(6), dt=ps(20),
                                 telemetry=tele)
        assert np.array_equal(bare.time, observed.time)
        for node in bare.voltages:
            assert np.array_equal(bare.voltages[node],
                                  observed.voltages[node])
        (root,) = span_tree(tele.sinks[0].records)
        assert root["name"] == "spice.transient.run"
        assert root["attrs"]["steps_taken"] == bare.stats.steps_taken
        assert tele.registry.counter("spice.transient.runs").value == 1
        assert tele.registry.counter(
            "spice.transient.steps_accepted").value == bare.stats.steps_taken
        # Physics sanity so the equality above is not vacuous.
        assert observed.wave("out").v[-1] == pytest.approx(1.0, abs=0.02)

    def test_dc_spans_nest_under_transient(self):
        tele = Telemetry(sinks=[MemorySink()])
        run_transient(self._rc(), tstop=ns(2), dt=ps(50), telemetry=tele)
        (root,) = span_tree(tele.sinks[0].records)
        names = {c["name"] for c in root["children"]}
        assert "spice.dc.solve" in names
        assert tele.registry.counter("spice.newton.solves").value >= 1
