"""Tests for the event-driven logic simulator."""

import pytest

from repro.cells import build_cmos_library
from repro.errors import SimulationError
from repro.netlist import GateNetlist, LogicSimulator
from repro.units import ns


@pytest.fixture(scope="module")
def lib():
    return build_cmos_library()


def chain(lib, n=3):
    nl = GateNetlist("chain", lib)
    nl.add_primary_input("a")
    prev = "a"
    for i in range(n):
        nl.add_instance("INV", {"A": prev, "Y": f"n{i}"}, name=f"u{i}")
        prev = f"n{i}"
    nl.add_primary_output(prev)
    return nl


class TestSettling:
    def test_initialize_settles_chain(self, lib):
        sim = LogicSimulator(chain(lib))
        sim.initialize({"a": True})
        assert sim.values["n0"] is False
        assert sim.values["n1"] is True
        assert sim.values["n2"] is False

    def test_initialize_unknown_input(self, lib):
        sim = LogicSimulator(chain(lib))
        with pytest.raises(SimulationError):
            sim.initialize({"zz": True})

    def test_reset_clears_everything(self, lib):
        sim = LogicSimulator(chain(lib))
        sim.initialize({"a": True})
        sim.reset()
        assert not any(sim.values.values())


class TestCombinationalEvents:
    def test_edge_propagates_with_delay(self, lib):
        nl = chain(lib, n=2)
        sim = LogicSimulator(nl)
        sim.initialize({"a": False})
        trace = sim.run([(1e-9, "a", True)], duration=5e-9)
        t_n0 = [t for t in trace.transitions if t.net == "n0"]
        t_n1 = [t for t in trace.transitions if t.net == "n1"]
        assert len(t_n0) == 1 and len(t_n1) == 1
        assert t_n0[0].time > 1e-9
        assert t_n1[0].time > t_n0[0].time

    def test_no_event_when_output_unchanged(self, lib):
        nl = GateNetlist("and", lib)
        nl.add_primary_input("a")
        nl.add_primary_input("b")
        nl.add_instance("AND2", {"A": "a", "B": "b", "Y": "y"}, name="u")
        sim = LogicSimulator(nl)
        sim.initialize({"a": False, "b": False})
        trace = sim.run([(1e-9, "a", True)], duration=5e-9)  # b still 0
        assert trace.toggles("y") == 0

    def test_glitch_swallowed_by_inertial_delay(self, lib):
        """Two opposing input edges closer than the gate delay produce
        no output event at all."""
        nl = GateNetlist("and", lib)
        nl.add_primary_input("a")
        nl.add_primary_input("b")
        nl.add_instance("AND2", {"A": "a", "B": "b", "Y": "y"}, name="u")
        sim = LogicSimulator(nl)
        sim.initialize({"a": False, "b": True})
        delay = nl.instance_delay(nl.instances["u"])
        trace = sim.run([(1e-9, "a", True),
                         (1e-9 + delay / 4, "a", False)], duration=5e-9)
        assert trace.toggles("y") == 0

    def test_wide_pulse_passes(self, lib):
        nl = GateNetlist("and", lib)
        nl.add_primary_input("a")
        nl.add_primary_input("b")
        nl.add_instance("AND2", {"A": "a", "B": "b", "Y": "y"}, name="u")
        sim = LogicSimulator(nl)
        sim.initialize({"a": False, "b": True})
        trace = sim.run([(1e-9, "a", True), (3e-9, "a", False)],
                        duration=8e-9)
        assert trace.toggles("y") == 2

    def test_unknown_stimulus_net(self, lib):
        sim = LogicSimulator(chain(lib))
        with pytest.raises(SimulationError):
            sim.run([(0.0, "zz", True)])

    def test_xor_tree_parity(self, lib):
        nl = GateNetlist("parity", lib)
        for name in ("a", "b", "c"):
            nl.add_primary_input(name)
        nl.add_instance("XOR2", {"A": "a", "B": "b", "Y": "ab"})
        nl.add_instance("XOR2", {"A": "ab", "B": "c", "Y": "p"})
        sim = LogicSimulator(nl)
        for bits in [(0, 0, 1), (1, 1, 1), (1, 0, 0)]:
            sim.initialize(dict(zip("abc", map(bool, bits))))
            assert sim.values["p"] == bool(sum(bits) % 2)


class TestTraceQueries:
    def test_toggle_counts(self, lib):
        sim = LogicSimulator(chain(lib, 2))
        sim.initialize({"a": False})
        trace = sim.run([(1e-9, "a", True), (3e-9, "a", False)],
                        duration=8e-9)
        counts = trace.toggle_counts()
        assert counts["a"] == 2
        assert counts["n0"] == 2

    def test_instance_toggles(self, lib):
        sim = LogicSimulator(chain(lib, 2))
        sim.initialize({"a": False})
        trace = sim.run([(1e-9, "a", True)], duration=5e-9)
        assert trace.instance_toggles() == {"u0": 1, "u1": 1}

    def test_value_of(self, lib):
        sim = LogicSimulator(chain(lib, 1))
        sim.initialize({"a": False})
        trace = sim.run([(1e-9, "a", True)], duration=5e-9)
        assert trace.value_of("a", 0.5e-9) is False
        assert trace.value_of("a", 2e-9) is True

    def test_in_window(self, lib):
        sim = LogicSimulator(chain(lib, 1))
        sim.initialize({"a": False})
        trace = sim.run([(1e-9, "a", True), (3e-9, "a", False)],
                        duration=8e-9)
        early = trace.in_window(0.0, 2e-9)
        assert all(t.time < 2e-9 for t in early)


class TestSequential:
    def clocked(self, lib, cell="DFF", extra=None):
        nl = GateNetlist("ff", lib)
        nl.add_primary_input("d")
        nl.add_primary_input("ck")
        pins = {"D": "d", "CK": "ck", "Q": "q"}
        if extra:
            for pin, net in extra.items():
                nl.add_primary_input(net)
                pins[pin] = net
        nl.add_instance(cell, pins, name="ff")
        nl.add_primary_output("q")
        return nl

    def test_dff_captures_on_rising_edge(self, lib):
        sim = LogicSimulator(self.clocked(lib))
        sim.initialize({"d": True, "ck": False})
        assert sim.values["q"] is False
        trace = sim.run([(1e-9, "ck", True)], duration=5e-9)
        assert trace.final_values["q"] is True

    def test_dff_ignores_falling_edge(self, lib):
        sim = LogicSimulator(self.clocked(lib))
        sim.initialize({"d": True, "ck": True})
        trace = sim.run([(1e-9, "ck", False), (2e-9, "d", False)],
                        duration=5e-9)
        assert trace.final_values["q"] is False

    def test_dff_two_edges(self, lib):
        sim = LogicSimulator(self.clocked(lib))
        sim.initialize({"d": True, "ck": False})
        trace = sim.run([
            (1e-9, "ck", True), (2e-9, "ck", False),
            (2.5e-9, "d", False), (3e-9, "ck", True),
        ], duration=8e-9)
        assert trace.final_values["q"] is False
        assert trace.toggles("q") == 2  # up then down

    def test_dffr_async_reset(self, lib):
        sim = LogicSimulator(self.clocked(lib, "DFFR", {"RN": "rn"}))
        sim.initialize({"d": True, "ck": False, "rn": True})
        trace = sim.run([(1e-9, "ck", True), (3e-9, "rn", False)],
                        duration=6e-9)
        assert trace.final_values["q"] is False

    def test_dlatch_transparent_high(self, lib):
        nl = GateNetlist("lat", lib)
        nl.add_primary_input("d")
        nl.add_primary_input("en")
        nl.add_instance("DLATCH", {"D": "d", "EN": "en", "Q": "q"},
                        name="lat")
        sim = LogicSimulator(nl)
        sim.initialize({"d": False, "en": True})
        trace = sim.run([(1e-9, "d", True),           # transparent: follows
                         (2e-9, "en", False),         # close the latch
                         (3e-9, "d", False)],         # must be ignored
                        duration=6e-9)
        assert trace.final_values["q"] is True
