"""Tests for the Verilog interchange and the ASCII/CSV figure rendering."""

import io

import pytest

from repro.aes import SBOX
from repro.cells import build_cmos_library, build_pg_mcml_library
from repro.errors import NetlistError, ReproError
from repro.netlist import (
    GateNetlist,
    LogicSimulator,
    read_verilog,
    write_verilog,
)
from repro.experiments.plotting import ascii_plot, write_csv
from repro.synth import build_sbox_ise, map_lut, sbox_truth_tables


@pytest.fixture(scope="module")
def cmos():
    return build_cmos_library()


def small_netlist(lib):
    nl = GateNetlist("pair", lib)
    nl.add_primary_input("a")
    nl.add_primary_input("b")
    nl.add_instance("AND2", {"A": "a", "B": "b", "Y": "n1"}, name="u1")
    nl.add_instance("INV", {"A": "n1", "Y": "y"}, name="u2")
    nl.add_primary_output("y")
    return nl


def roundtrip(nl, lib):
    buf = io.StringIO()
    write_verilog(buf, nl)
    buf.seek(0)
    return read_verilog(buf, lib)


class TestVerilogRoundtrip:
    def test_structure_preserved(self, cmos):
        original = small_netlist(cmos)
        parsed = roundtrip(original, cmos)
        assert set(parsed.instances) == set(original.instances)
        assert parsed.primary_inputs == original.primary_inputs
        assert parsed.primary_outputs == original.primary_outputs
        assert parsed.cell_histogram() == original.cell_histogram()

    def test_pin_connections_preserved(self, cmos):
        parsed = roundtrip(small_netlist(cmos), cmos)
        assert parsed.instances["u1"].pins == {"A": "a", "B": "b",
                                               "Y": "n1"}

    def test_logic_equivalence(self, cmos):
        original = small_netlist(cmos)
        parsed = roundtrip(original, cmos)
        sim_a, sim_b = LogicSimulator(original), LogicSimulator(parsed)
        for a in (False, True):
            for b in (False, True):
                sim_a.initialize({"a": a, "b": b})
                sim_b.initialize({"a": a, "b": b})
                assert sim_a.values["y"] == sim_b.values["y"]

    def test_escaped_identifiers(self, cmos):
        nl = GateNetlist("esc", cmos)
        nl.add_primary_input("a")
        nl.add_instance("INV", {"A": "a", "Y": "weird.net[3]"},
                        name="u$1")
        nl.add_primary_output("weird.net[3]")
        parsed = roundtrip(nl, cmos)
        assert "weird.net[3]" in parsed.nets

    def test_sbox_netlist_roundtrip(self, cmos):
        block = map_lut(cmos, sbox_truth_tables(),
                        [f"x{i}" for i in range(8)], name="sbox",
                        share_outputs=False)
        parsed = roundtrip(block.netlist, cmos)
        assert parsed.total_cells() == block.netlist.total_cells()
        sim = LogicSimulator(parsed)
        for val in (0x00, 0x5A, 0xFF):
            sim.initialize({f"x{i}": bool((val >> (7 - i)) & 1)
                            for i in range(8)})
            got = sum(int(sim.values[block.outputs[f"y{b}"]]) << (7 - b)
                      for b in range(8))
            assert got == SBOX[val]

    def test_differential_netlist_roundtrip(self):
        pg = build_pg_mcml_library()
        ise = build_sbox_ise(pg, n_sboxes=1, with_sleep_tree=False)
        parsed = roundtrip(ise.netlist, pg)
        assert parsed.total_cells() == ise.netlist.total_cells()

    def test_unknown_cell_rejected(self, cmos):
        text = ("module m (a);\n  input a;\n  wire y;\n"
                "  FROB3 u1 (.A(a), .Y(y));\nendmodule\n")
        with pytest.raises(NetlistError):
            read_verilog(io.StringIO(text), cmos)

    def test_truncated_input_rejected(self, cmos):
        with pytest.raises(NetlistError):
            read_verilog(io.StringIO("module m (a)"), cmos)

    def test_comments_ignored(self, cmos):
        text = ("// header\nmodule m (a);\n  input a; // the input\n"
                "  wire y;\n  INV u1 (.A(a), .Y(y));\nendmodule\n")
        parsed = read_verilog(io.StringIO(text), cmos)
        assert parsed.total_cells() == 1


class TestAsciiPlot:
    def test_basic_render(self):
        text = ascii_plot({"line": ([0, 1, 2], [0, 1, 2])})
        assert "|" in text and "line" in text

    def test_two_series_markers(self):
        text = ascii_plot({
            "a": ([0, 1], [0, 1]),
            "b": ([0, 1], [1, 0]),
        })
        assert "* a" in text and "o b" in text

    def test_axis_labels(self):
        text = ascii_plot({"s": ([0, 1], [2, 3])}, x_label="t",
                          y_label="v")
        assert "y: v" in text and "x: t" in text

    def test_constant_series_ok(self):
        text = ascii_plot({"flat": ([0, 1, 2], [5, 5, 5])})
        assert "flat" in text

    def test_validation(self):
        with pytest.raises(ReproError):
            ascii_plot({})
        with pytest.raises(ReproError):
            ascii_plot({"bad": ([0, 1], [0])})
        with pytest.raises(ReproError):
            ascii_plot({"s": ([0, 1], [0, 1])}, width=4)


class TestCsv:
    def test_write(self):
        buf = io.StringIO()
        write_csv(buf, {"x": [0, 1], "y": [2.5, 3.5]})
        lines = buf.getvalue().strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "0,2.5"

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            write_csv(io.StringIO(), {"x": [0], "y": [1, 2]})

    def test_empty(self):
        with pytest.raises(ReproError):
            write_csv(io.StringIO(), {})

    def test_fig_exporters(self):
        from repro.experiments import fig5
        from repro.experiments.plotting import fig5_csv, render_fig5
        result = fig5.run()
        buf = io.StringIO()
        fig5_csv(result, buf)
        header = buf.getvalue().splitlines()[0]
        assert header.startswith("time_s,")
        assert "PG-MCML" in render_fig5(result)
