"""End-to-end attack-campaign tests (the Fig. 6 pipeline, reduced size).

The full 256-plaintext campaigns run in the fig6 benchmark; here a
subset keeps the suite fast while still checking the qualitative
outcome: the CMOS implementation leaks enough to rank the true key near
the top, the differential implementations do not.
"""

import numpy as np
import pytest

from repro.cells import build_cmos_library, build_mcml_library, \
    build_pg_mcml_library
from repro.errors import AttackError
from repro.power import MeasurementChain, TraceGrid
from repro.sca import AttackCampaign, collect_traces
from repro.sca.attack import build_reduced_aes
from repro.aes import SBOX
from repro.netlist import LogicSimulator
from repro.units import ns

KEY = 0x2B


@pytest.fixture(scope="module")
def cmos_campaign():
    return AttackCampaign(build_cmos_library(), KEY)


@pytest.fixture(scope="module")
def pg_campaign():
    return AttackCampaign(build_pg_mcml_library(), KEY)


class TestReducedAesNetlist:
    @pytest.mark.parametrize("build", [build_cmos_library,
                                       build_pg_mcml_library])
    def test_logic_correct(self, build):
        nl, outs = build_reduced_aes(build())
        sim = LogicSimulator(nl)
        for p in (0x00, 0x55, 0xFF):
            env = {f"p{b}": bool((p >> (7 - b)) & 1) for b in range(8)}
            env.update({f"k{b}": bool((KEY >> (7 - b)) & 1)
                        for b in range(8)})
            sim.initialize(env)
            got = sum(int(sim.values[outs[b]]) << (7 - b) for b in range(8))
            assert got == SBOX[p ^ KEY]

    def test_has_key_addition_layer(self):
        nl, _ = build_reduced_aes(build_cmos_library())
        assert nl.cell_histogram().get("XOR2", 0) >= 8


class TestCollectTraces:
    def test_shape_and_determinism(self, cmos_campaign):
        grid = TraceGrid(0.0, ns(2), 50e-12)
        pts = [0, 1, 2, 3]
        a = collect_traces(cmos_campaign.netlist, KEY, pts, grid=grid,
                           chain=MeasurementChain(seed=9))
        b = collect_traces(cmos_campaign.netlist, KEY, pts, grid=grid,
                           chain=MeasurementChain(seed=9))
        assert a.shape == (4, grid.n)
        assert np.array_equal(a, b)

    def test_key_validated(self, cmos_campaign):
        with pytest.raises(AttackError):
            collect_traces(cmos_campaign.netlist, 300, [0])

    def test_plaintext_validated(self, cmos_campaign):
        with pytest.raises(AttackError):
            collect_traces(cmos_campaign.netlist, KEY, [999])

    def test_cmos_traces_vary_with_data(self, cmos_campaign):
        grid = TraceGrid(0.0, ns(2), 50e-12)
        traces = collect_traces(cmos_campaign.netlist, KEY, [0x00, 0xFF],
                                grid=grid,
                                chain=MeasurementChain(noise_sigma=0.0,
                                                       resolution=0.0))
        assert np.abs(traces[0] - traces[1]).max() > 1e-6

    def test_pg_traces_nearly_constant(self, pg_campaign):
        grid = TraceGrid(0.0, ns(2), 50e-12)
        traces = collect_traces(pg_campaign.netlist, KEY, [0x00, 0xFF],
                                grid=grid,
                                chain=MeasurementChain(noise_sigma=0.0,
                                                       resolution=0.0))
        static = traces.mean()
        # Data changes the trace by far less than a percent of Iss total.
        assert np.abs(traces[0] - traces[1]).max() < 0.01 * static


class TestCampaignOutcomes:
    def test_cmos_leaks(self, cmos_campaign):
        result = cmos_campaign.run(plaintexts=list(range(0, 256, 2)))
        assert result.rank <= 2  # key at (or next to) the top

    def test_pgmcml_resists(self, pg_campaign):
        result = pg_campaign.run(plaintexts=list(range(0, 256, 2)))
        assert result.rank > 5
        assert not result.succeeded

    def test_mcml_resists(self):
        campaign = AttackCampaign(build_mcml_library(), KEY)
        result = campaign.run(plaintexts=list(range(0, 256, 2)))
        assert not result.succeeded

    def test_summary_text(self, cmos_campaign):
        result = cmos_campaign.run(plaintexts=list(range(0, 256, 4)))
        assert "CMOS" in result.summary()

    def test_key_validated(self):
        with pytest.raises(AttackError):
            AttackCampaign(build_cmos_library(), key=999)
