"""Tests for the Liberty (.lib) export."""

import io
import itertools
import re

import pytest

from repro.cells import (
    build_cmos_library,
    build_mcml_library,
    build_pg_mcml_library,
    function,
    write_liberty,
)
from repro.cells.liberty import _pin_function
from repro.errors import CellError
from repro.cells.library import Library


def export(library) -> str:
    buf = io.StringIO()
    write_liberty(buf, library)
    return buf.getvalue()


@pytest.fixture(scope="module")
def pg_lib_text():
    return export(build_pg_mcml_library())


class TestDocumentStructure:
    def test_header(self, pg_lib_text):
        assert pg_lib_text.startswith("library (pg_mcml_90nm) {")
        assert 'time_unit : "1ns";' in pg_lib_text
        assert "nom_voltage : 1.2;" in pg_lib_text

    def test_braces_balanced(self, pg_lib_text):
        assert pg_lib_text.count("{") == pg_lib_text.count("}")

    def test_every_cell_present(self, pg_lib_text):
        lib = build_pg_mcml_library()
        for name in lib.names():
            assert f"cell ({name})" in pg_lib_text

    def test_areas_recorded(self, pg_lib_text):
        assert "area : 7.448;" in pg_lib_text       # BUF
        assert "area : 35.7504;" in pg_lib_text     # FA

    def test_sleep_cells_marked(self, pg_lib_text):
        assert "switch_cell_type : fine_grain;" in pg_lib_text

    def test_pseudo_cells_dont_use(self, pg_lib_text):
        block = pg_lib_text.split("cell (RAILSWAP)")[1].split("cell (")[0]
        assert "dont_use : true;" in block

    def test_sequential_cells_have_ff_group(self, pg_lib_text):
        dff_block = pg_lib_text.split("cell (DFF)")[1].split("cell (")[0]
        assert "ff (" in dff_block
        assert 'clocked_on : "CK";' in dff_block
        assert "clock : true;" in dff_block

    def test_cmos_and_mcml_export_too(self):
        assert "cell (INV)" in export(build_cmos_library())
        assert "cell (XOR4)" in export(build_mcml_library())

    def test_empty_library_rejected(self):
        empty = Library(name="empty", style="cmos", cells={})
        with pytest.raises(CellError):
            write_liberty(io.StringIO(), empty)


class TestPinFunctions:
    @pytest.mark.parametrize("name", ["AND2", "OR2", "XOR2", "NAND3",
                                      "MUX2", "MAJ32", "XNOR2", "INV"])
    def test_idiom_matches_truth_table(self, name):
        fn = function(name)
        expr = _pin_function(fn, fn.outputs[0])
        for bits in itertools.product([False, True],
                                      repeat=len(fn.inputs)):
            env = dict(zip(fn.inputs, bits))
            expected = fn.evaluate(env)[fn.outputs[0]]
            got = _eval_liberty(expr, env)
            assert got == expected, (name, env, expr)

    def test_sop_fallback(self):
        fn = function("FA")
        expr = _pin_function(fn, "S")   # no idiom for multi-output S
        for bits in itertools.product([False, True], repeat=3):
            env = dict(zip(fn.inputs, bits))
            assert _eval_liberty(expr, env) == fn.evaluate(env)["S"]

    def test_constants(self):
        assert _pin_function(function("TIEH"), "Y") == "1"
        assert _pin_function(function("TIEL"), "Y") == "0"


def _eval_liberty(expr: str, env):
    """Evaluate a Liberty boolean expression with Python semantics."""
    python_expr = expr.replace("!", " not ").replace("&", " and ") \
        .replace("|", " or ")
    # XOR: Liberty '^' == Python '!=' over booleans.
    python_expr = python_expr.replace("^", "!=")
    scope = {k: bool(v) for k, v in env.items()}
    scope.update({"__builtins__": {}})
    return bool(eval(python_expr, scope))  # noqa: S307 - test-only
