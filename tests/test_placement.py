"""Tests for the row placer and wirelength model."""

import pytest

from repro.cells import build_cmos_library, build_mcml_library, \
    build_pg_mcml_library
from repro.errors import SynthesisError
from repro.netlist import GateNetlist
from repro.synth import build_sbox_ise, place, wirelength_hpwl
from repro.synth.report import UTILIZATION


@pytest.fixture(scope="module")
def cmos():
    return build_cmos_library()


def chain_netlist(lib, n=30):
    nl = GateNetlist("chain", lib)
    nl.add_primary_input("a")
    prev = "a"
    cell = "INV" if "INV" in lib else "BUF"
    for i in range(n):
        nl.add_instance(cell, {"A": prev, "Y": f"n{i}"}, name=f"u{i}")
        prev = f"n{i}"
    return nl


class TestPlace:
    def test_every_cell_placed_once(self, cmos):
        nl = chain_netlist(cmos)
        placement = place(nl)
        assert set(placement.cells) == set(nl.instances)

    def test_no_overlaps_within_rows(self, cmos):
        placement = place(chain_netlist(cmos, 50))
        by_row = {}
        for cell in placement.cells.values():
            by_row.setdefault(cell.y, []).append(cell)
        for cells in by_row.values():
            cells.sort(key=lambda c: c.x)
            for left, right in zip(cells, cells[1:]):
                assert left.x + left.width <= right.x + 1e-12

    def test_cells_inside_die(self, cmos):
        placement = place(chain_netlist(cmos, 50))
        for cell in placement.cells.values():
            assert cell.x + cell.width <= placement.die_width + 1e-9
            assert cell.y + cell.height <= placement.die_height + 1e-9

    def test_rows_at_cell_height(self, cmos):
        placement = place(chain_netlist(cmos))
        height = cmos.tech.cell_height
        for cell in placement.cells.values():
            assert cell.y % height == pytest.approx(0.0, abs=1e-12)

    def test_utilization_near_target(self, cmos):
        placement = place(chain_netlist(cmos, 200))
        assert placement.utilization_achieved == pytest.approx(
            UTILIZATION["cmos"], rel=0.2)

    def test_differential_die_larger(self):
        mcml = build_mcml_library()
        cmos_lib = build_cmos_library()
        p_mcml = place(chain_netlist(mcml, 100))
        p_cmos = place(chain_netlist(cmos_lib, 100))
        assert p_mcml.die_area_um2 > 2.0 * p_cmos.die_area_um2

    def test_pseudo_cells_not_placed(self):
        pg = build_pg_mcml_library()
        nl = GateNetlist("swap", pg)
        nl.add_primary_input("a")
        nl.add_instance("RAILSWAP", {"A": "a", "Y": "b"}, name="sw")
        nl.add_instance("BUF", {"A": "b", "Y": "c"}, name="buf")
        placement = place(nl)
        assert "sw" not in placement.cells
        assert "buf" in placement.cells

    def test_empty_netlist_rejected(self, cmos):
        nl = GateNetlist("empty", cmos)
        with pytest.raises(SynthesisError):
            place(nl)

    def test_bad_parameters(self, cmos):
        nl = chain_netlist(cmos, 5)
        with pytest.raises(SynthesisError):
            place(nl, aspect_ratio=0.0)
        with pytest.raises(SynthesisError):
            place(nl, utilization=1.5)

    def test_location_lookup(self, cmos):
        placement = place(chain_netlist(cmos, 5))
        assert placement.location("u0").width > 0
        with pytest.raises(SynthesisError):
            placement.location("ghost")

    def test_sbox_ise_die_matches_report_scale(self):
        """The placed die area must agree with report_block's
        utilisation-derived core area."""
        from repro.synth import report_block
        ise = build_sbox_ise(build_mcml_library())
        placement = place(ise.netlist)
        report = report_block(ise.netlist)
        assert placement.die_area_um2 == pytest.approx(
            report.core_area_um2, rel=0.15)


class TestWirelength:
    def test_chain_wirelength_positive(self, cmos):
        nl = chain_netlist(cmos, 30)
        placement = place(nl)
        assert wirelength_hpwl(nl, placement) > 0.0

    def test_differential_counts_double(self):
        cmos_lib = build_cmos_library()
        mcml = build_mcml_library()
        nl_c = chain_netlist(cmos_lib, 40)
        nl_m = chain_netlist(mcml, 40)
        wl_c = wirelength_hpwl(nl_c, place(nl_c))
        wl_m = wirelength_hpwl(nl_m, place(nl_m))
        # Fat wires double the count AND the die is larger.
        assert wl_m > 2.0 * wl_c

    def test_wirelength_grows_with_size(self, cmos):
        small = chain_netlist(cmos, 20)
        large = chain_netlist(cmos, 200)
        wl_small = wirelength_hpwl(small, place(small))
        wl_large = wirelength_hpwl(large, place(large))
        assert wl_large > 5.0 * wl_small
