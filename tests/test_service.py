"""Chaos suite for the campaign job service.

The fault-tolerance contract under test:

* a campaign sharded through the durable queue produces trace bytes —
  and therefore CPA key ranks — identical to a serial run, including
  when a worker process is SIGKILLed mid-chunk, when leases expire and
  requeue, and when the supervisor restarts from the ledger;
* duplicate submission of an identical spec dedupes to the existing
  job, and crash-replayed chunks dedupe to content-addressed cache hits
  instead of recomputes;
* a poison chunk quarantines with ``E_JOB_*`` codes after a bounded
  number of backoff attempts instead of burning workers forever;
* ledger corruption is survived: torn tails and damaged chunk records
  replay conservatively (recompute → cache hit), a destroyed job record
  fails loudly with ``E_JOB_LEDGER``.

Set ``REPRO_SERVICE_ARTIFACT=/path/out.jsonl`` to keep the killed-worker
run's validated events stream (CI uploads it).
"""

import asyncio
import json
import multiprocessing
import os
import shutil
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.errors import (
    AttackError,
    JobError,
    JobLeaseError,
    JobLedgerError,
    JobPoisonedError,
    JobSpecError,
)
from repro.faultinject import corrupt_jsonl_record
from repro.obs import JsonlSink, MemorySink, Telemetry, read_jsonl, \
    validate_stream
from repro.sca.cpa import cpa_attack
from repro.sca.matrix import (
    MatrixSpec,
    derive_chain_seed,
    derive_mismatch_seed,
    derive_plaintexts,
)
from repro.service import (
    CampaignJobSpec,
    JobLedger,
    JobQueue,
    JobService,
    ResultStore,
    ServiceWorker,
    expand_matrix,
)
from repro.service.ledger import decode_line, encode_record
from repro.service.store import chunk_key
from repro.sca.acquisition import _fork_available

KEY = 0x2B
SPEC = CampaignJobSpec(style="cmos", budget=32, key=KEY, chunk_size=8)

fork_only = pytest.mark.skipif(not _fork_available(),
                               reason="fork start method unavailable")


@pytest.fixture(scope="module")
def oracle():
    """Serial reference traces for SPEC (the byte-identity ground truth)."""
    return SPEC.build_acquirer().acquire(SPEC.plaintexts())


class FakeClock:
    """Injectable time source for lease-expiry tests."""

    def __init__(self, start=1000.0):
        self.now = float(start)

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def _make_queue(tmp_path, name="svc", **kwargs):
    directory = tmp_path / name
    directory.mkdir(exist_ok=True)
    ledger = JobLedger(str(directory / "ledger.jsonl"))
    store = ResultStore(str(directory / "store"))
    return JobQueue(ledger, store, **kwargs)


def _complete_manually(queue, lease, rows=None):
    rows = rows if rows is not None else np.zeros((1, 2))
    queue.store.put(lease.key, rows)
    queue.complete(lease, lease.key)


# -- spec ------------------------------------------------------------------


class TestCampaignJobSpec:
    def test_round_trip_and_identity(self):
        clone = CampaignJobSpec.from_dict(SPEC.to_dict())
        assert clone == SPEC
        assert clone.job_id == SPEC.job_id
        assert clone.fingerprint() == SPEC.fingerprint()

    def test_chunking(self):
        assert SPEC.n_chunks == 4
        assert SPEC.chunk_bounds(0) == (0, 8)
        assert SPEC.chunk_bounds(3) == (24, 32)
        ragged = CampaignJobSpec(style="cmos", budget=20, chunk_size=8)
        assert ragged.n_chunks == 3
        assert ragged.chunk_bounds(2) == (16, 20)
        with pytest.raises(JobSpecError):
            SPEC.chunk_bounds(4)

    def test_chunk_plaintexts_cover_the_schedule(self):
        joined = []
        for index in range(SPEC.n_chunks):
            joined.extend(SPEC.chunk_plaintexts(index))
        assert joined == SPEC.plaintexts()

    def test_derivations_match_the_matrix(self):
        assert SPEC.plaintexts() == derive_plaintexts(
            SPEC.base_seed, "cmos", "tt", 32, "random", 0)
        assert SPEC.chain().seed == derive_chain_seed(
            SPEC.base_seed, SPEC.trace_key())
        assert SPEC.mismatch_seed() == derive_mismatch_seed(
            SPEC.base_seed, "cmos", "tt", 0)

    @pytest.mark.parametrize("bad", [
        {"style": "nope", "budget": 32},
        {"style": "cmos", "budget": 4},
        {"style": "cmos", "budget": 33, "schedule": "tvla"},
        {"style": "cmos", "budget": 32, "schedule": "weird"},
        {"style": "cmos", "budget": 32, "corner": "xx"},
        {"style": "cmos", "budget": 32, "key": 300},
        {"style": "cmos", "budget": 32, "noise": -1.0},
        {"style": "cmos", "budget": 32, "chunk_size": 0},
        {"style": "cmos", "budget": 32, "bogus": 1},
        {"budget": 32},
    ])
    def test_validation(self, bad):
        with pytest.raises(JobSpecError):
            CampaignJobSpec.from_dict(bad)

    def test_fingerprint_separates_different_work(self):
        other = CampaignJobSpec(style="cmos", budget=32, key=KEY,
                                chunk_size=8, repeat=1)
        assert other.job_id != SPEC.job_id


# -- ledger ----------------------------------------------------------------


class TestJobLedger:
    def test_crc_envelope_round_trip(self):
        record = {"kind": "job", "job": "job-x", "spec": {}, "t": 1.0,
                  "fingerprint": {"a": 1}, "n_chunks": 2}
        assert decode_line(encode_record(record)) == record
        assert decode_line("not json") is None
        assert decode_line('{"rec": {"kind": "job"}, "crc": 0}') is None

    def test_append_refresh_and_reopen(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with JobLedger(path) as ledger:
            ledger.append({"kind": "job", "job": "j1", "spec": {},
                           "fingerprint": {}, "n_chunks": 2, "t": 0.0})
            ledger.append({"kind": "lease", "job": "j1", "chunk": 0,
                           "worker": "w", "attempt": 1, "expires": 9.0})
            assert ledger.refresh().jobs["j1"].chunks[0].state == "leased"
        with JobLedger(path) as reopened:
            state = reopened.refresh()
            assert state.jobs["j1"].chunks[0].state == "leased"
            assert state.jobs["j1"].chunks[1].state == "pending"
            assert state.corrupt_records == 0

    def test_torn_tail_is_invisible(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with JobLedger(path) as ledger:
            ledger.append({"kind": "job", "job": "j1", "spec": {},
                           "fingerprint": {}, "n_chunks": 1, "t": 0.0})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"crc": 123, "rec": {"kind": "le')  # kill mid-append
        with JobLedger(path) as ledger:
            state = ledger.refresh()
            assert "j1" in state.jobs
            # The torn tail has no newline: not consumed, not counted.
            assert state.corrupt_records == 0

    def test_corrupt_chunk_record_replays_conservatively(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with JobLedger(path) as ledger:
            ledger.append({"kind": "job", "job": "j1", "spec": {},
                           "fingerprint": {}, "n_chunks": 1, "t": 0.0})
            ledger.append({"kind": "lease", "job": "j1", "chunk": 0,
                           "worker": "w", "attempt": 1, "expires": 9.0})
            ledger.append({"kind": "done", "job": "j1", "chunk": 0,
                           "worker": "w", "digest": "d"})
        corrupt_jsonl_record(path, 2, mode="flip")  # destroy the done
        with JobLedger(path) as ledger:
            state = ledger.refresh()
            assert state.corrupt_records == 1
            # Conservative: the chunk demotes to its pre-done state and
            # will be requeued; the store dedupe makes that a cache hit.
            assert state.jobs["j1"].chunks[0].state == "leased"

    def test_corrupt_job_record_is_fatal(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with JobLedger(path) as ledger:
            ledger.append({"kind": "job", "job": "j1", "spec": {},
                           "fingerprint": {}, "n_chunks": 1, "t": 0.0})
            ledger.append({"kind": "lease", "job": "j1", "chunk": 0,
                           "worker": "w", "attempt": 1, "expires": 9.0})
        corrupt_jsonl_record(path, 0, mode="garbage")
        with JobLedger(path) as ledger:
            with pytest.raises(JobLedgerError) as excinfo:
                ledger.refresh()
            assert excinfo.value.error_code == "E_JOB_LEDGER"

    def test_stale_records_do_not_regress_done(self, tmp_path):
        with JobLedger(str(tmp_path / "l.jsonl")) as ledger:
            ledger.append({"kind": "job", "job": "j1", "spec": {},
                           "fingerprint": {}, "n_chunks": 1, "t": 0.0})
            ledger.append({"kind": "lease", "job": "j1", "chunk": 0,
                           "worker": "w", "attempt": 1, "expires": 9.0})
            ledger.append({"kind": "done", "job": "j1", "chunk": 0,
                           "worker": "w", "digest": "d"})
            # A zombie worker's late failure must not undo the commit.
            ledger.append({"kind": "failed", "job": "j1", "chunk": 0,
                           "attempt": 1, "not_before": 0.0,
                           "error": {"error_code": "E_LATE"}})
            state = ledger.refresh()
            assert state.jobs["j1"].chunks[0].state == "done"
            assert state.stale_records == 1


# -- result store ----------------------------------------------------------


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        rows = np.arange(12.0).reshape(3, 4)
        key = chunk_key({"k": 1}, 0)
        assert store.get(key) is None
        store.put(key, rows)
        assert store.has(key)
        assert np.array_equal(store.get(key), rows)
        store.put(key, rows)  # idempotent
        assert store.keys() == [key]

    def test_keys_are_logical_coordinates(self):
        assert chunk_key({"a": 1}, 0) != chunk_key({"a": 1}, 1)
        assert chunk_key({"a": 1}, 0) != chunk_key({"a": 2}, 0)
        assert chunk_key({"a": 1}, 0) == chunk_key({"a": 1}, 0)

    def test_torn_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        key = chunk_key({"k": 1}, 0)
        path = store.put(key, np.ones((2, 2)))
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) // 2)
        assert store.get(key) is None

    def test_mislabeled_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        key_a = chunk_key({"k": 1}, 0)
        key_b = chunk_key({"k": 2}, 0)
        source = store.put(key_a, np.ones((2, 2)))
        target = store._path(key_b)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        shutil.copy(source, target)  # entry claims to be key_a
        assert store.get(key_b) is None
        assert np.array_equal(store.get(key_a), np.ones((2, 2)))


# -- queue lifecycle (fake clock, no acquisition) --------------------------


class TestJobQueue:
    def test_submit_dedupes_by_fingerprint(self, tmp_path):
        queue = _make_queue(tmp_path)
        job_id, deduped = queue.submit(SPEC)
        assert job_id == SPEC.job_id and not deduped
        again, deduped = queue.submit(SPEC)
        assert again == job_id and deduped
        assert len(queue.jobs()) == 1

    def test_claim_lease_complete_cycle(self, tmp_path):
        clock = FakeClock()
        queue = _make_queue(tmp_path, clock=clock, lease_ttl=10.0)
        job_id, _ = queue.submit(SPEC)
        lease = queue.claim("w1")
        assert (lease.job_id, lease.chunk, lease.attempt) == (job_id, 0, 1)
        assert lease.expires == clock.now + 10.0
        clock.advance(5.0)
        assert queue.heartbeat(lease) == clock.now + 10.0
        _complete_manually(queue, lease)
        status = queue.status(job_id)
        assert status["chunks"]["0"]["state"] == "done"
        assert status["counts"] == {"pending": 3, "leased": 0,
                                    "done": 1, "quarantined": 0}
        # The next claim moves on to chunk 1.
        assert queue.claim("w1").chunk == 1

    def test_expired_lease_is_reaped_and_requeued(self, tmp_path):
        clock = FakeClock()
        queue = _make_queue(tmp_path, clock=clock, lease_ttl=10.0)
        queue.submit(SPEC)
        lease = queue.claim("w1")
        assert queue.reap() == []  # still live
        clock.advance(10.1)
        reaped = queue.reap()
        assert reaped == [(lease.job_id, 0, "requeued")]
        # Backoff window: not claimable immediately...
        chunk = queue.status(lease.job_id)["chunks"]["0"]
        assert chunk["state"] == "pending"
        assert chunk["not_before"] > clock.now
        clock.advance(queue.backoff_cap)
        release = queue.claim("w2")
        assert (release.chunk, release.attempt) == (0, 2)

    def test_stale_lease_operations_raise(self, tmp_path):
        clock = FakeClock()
        queue = _make_queue(tmp_path, clock=clock, lease_ttl=10.0)
        queue.submit(SPEC)
        lease = queue.claim("w1")
        clock.advance(11.0)
        queue.reap()
        for op in (lambda: queue.heartbeat(lease),
                   lambda: queue.complete(lease, "d"),
                   lambda: queue.fail(lease, {"error_code": "E_X"})):
            with pytest.raises(JobLeaseError) as excinfo:
                op()
            assert excinfo.value.error_code == "E_JOB_LEASE"

    def test_fail_requeues_with_backoff_then_quarantines(self, tmp_path):
        clock = FakeClock()
        queue = _make_queue(tmp_path, clock=clock, max_attempts=3)
        job_id, _ = queue.submit(SPEC)
        last_error = {"error_code": "E_CONVERGENCE", "message": "boom"}
        for attempt in range(1, 4):
            clock.advance(queue.backoff_cap + 1.0)
            lease = queue.claim("w1")
            assert lease.attempt == attempt
            outcome = queue.fail(lease, last_error)
        assert outcome == "quarantined"
        chunk = queue.status(job_id)["chunks"]["0"]
        assert chunk["state"] == "quarantined"
        assert chunk["attempt"] == 3
        assert chunk["error"]["error_code"] == "E_CONVERGENCE"
        # The quarantined chunk is never claimable again...
        clock.advance(1e6)
        assert queue.claim("w1").chunk == 1
        # ...until an operator requeue resets it.
        queue.requeue(job_id, 0)
        lease = queue.claim("w2")
        assert (lease.chunk, lease.attempt) == (0, 1)

    def test_backoff_is_deterministic_and_capped(self, tmp_path):
        queue = _make_queue(tmp_path, backoff_base=0.5, backoff_cap=8.0)
        a = queue.backoff("job-a", 0, 3)
        assert a == queue.backoff("job-a", 0, 3)  # replayable
        assert queue.backoff("job-a", 1, 3) != a  # de-synchronised
        for attempt in range(1, 12):
            delay = queue.backoff("job-a", 0, attempt)
            assert 0.0 < delay <= 8.0 * 1.5
        # Exponential up to the cap.
        assert queue.backoff("job-a", 0, 1) < queue.backoff("job-a", 0, 4)

    def test_gather_incomplete_and_unknown_jobs_raise(self, tmp_path):
        queue = _make_queue(tmp_path)
        with pytest.raises(JobError):
            queue.status("job-missing")
        job_id, _ = queue.submit(SPEC)
        with pytest.raises(JobError) as excinfo:
            queue.gather(job_id)
        assert "outstanding" in str(excinfo.value)

    def test_requeue_done_needs_force(self, tmp_path):
        queue = _make_queue(tmp_path)
        job_id, _ = queue.submit(SPEC)
        lease = queue.claim("w1")
        _complete_manually(queue, lease)
        with pytest.raises(JobError):
            queue.requeue(job_id, 0)
        queue.requeue(job_id, 0, force=True)
        assert queue.status(job_id)["chunks"]["0"]["state"] == "pending"


# -- end-to-end with real acquisition --------------------------------------


def _drain(queue, telemetry=None, on_chunk=None, worker_id="w0"):
    worker = ServiceWorker(queue, worker_id=worker_id,
                           telemetry=telemetry, on_chunk=on_chunk)
    worker.run(drain=True, poll=0.01)
    return worker


class TestEndToEnd:
    def test_sharded_run_is_byte_identical_to_serial(self, tmp_path,
                                                     oracle):
        queue = _make_queue(tmp_path)
        job_id, _ = queue.submit(SPEC)
        _drain(queue)
        rows = queue.gather(job_id)
        assert np.array_equal(rows, oracle)
        serial_rank = cpa_attack(oracle, SPEC.plaintexts(),
                                 true_key=KEY).rank_of_true_key()
        service_rank = cpa_attack(rows, SPEC.plaintexts(),
                                  true_key=KEY).rank_of_true_key()
        assert service_rank == serial_rank

    def test_duplicate_submission_dedupes_without_recompute(self, tmp_path,
                                                            oracle):
        queue = _make_queue(tmp_path)
        job_id, _ = queue.submit(SPEC)
        _drain(queue)
        # Resubmitting the identical spec addresses the finished job.
        again, deduped = queue.submit(SPEC)
        assert deduped and again == job_id
        assert np.array_equal(queue.gather(job_id), oracle)

    def test_crash_replay_hits_the_result_cache(self, tmp_path, oracle):
        first = _make_queue(tmp_path, "svc1")
        first.submit(SPEC)
        acquired = []
        _drain(first, on_chunk=lambda lease: acquired.append(lease.chunk))
        assert sorted(acquired) == [0, 1, 2, 3]
        # Same campaign against a fresh ledger (total queue loss), same
        # store: every chunk dedupes to a content-addressed cache hit.
        second = JobQueue(
            JobLedger(str(tmp_path / "svc2.jsonl")), first.store)
        job_id, _ = second.submit(SPEC)
        worker = ServiceWorker(second, worker_id="w2",
                               on_chunk=lambda lease: pytest.fail(
                                   "cache hit must not acquire"))
        outcomes = [worker.run_once() for _ in range(SPEC.n_chunks)]
        assert outcomes == ["cache-hit"] * SPEC.n_chunks
        assert np.array_equal(second.gather(job_id), oracle)

    def test_poison_chunk_quarantines_with_bounded_attempts(self,
                                                            tmp_path,
                                                            oracle):
        sink = MemorySink()
        telemetry = Telemetry(sinks=[sink], progress=None)
        queue = _make_queue(tmp_path, max_attempts=2, backoff_base=0.02,
                            backoff_cap=0.05, telemetry=telemetry)
        job_id, _ = queue.submit(SPEC)

        attempts = []

        def poison(lease):
            if lease.chunk == 1:
                attempts.append(lease.attempt)
                raise AttackError("synthetic poison chunk",
                                  context={"chunk": lease.chunk})

        _drain(queue, telemetry=telemetry, on_chunk=poison)
        assert attempts == [1, 2]  # bounded: max_attempts, no more
        status = queue.status(job_id)
        assert status["state"] == "quarantined"
        assert status["chunks"]["1"]["state"] == "quarantined"
        assert status["chunks"]["1"]["error"]["error_code"] == "E_ATTACK"
        with pytest.raises(JobPoisonedError) as excinfo:
            queue.gather(job_id)
        assert excinfo.value.error_code == "E_JOB_POISONED"
        assert excinfo.value.context["error"]["error_code"] == "E_ATTACK"
        names = [r["name"] for r in sink.records
                 if r.get("kind") == "event"]
        assert "service.requeued" in names
        assert "service.quarantined" in names
        # The healthy chunks still carry oracle bytes in the store.
        good = queue.store.get(chunk_key(SPEC.fingerprint(), 0))
        assert np.array_equal(good, oracle[0:8])
        # Operator requeue + drain completes the job after the "fix".
        queue.requeue(job_id, 1)
        _drain(queue)
        assert np.array_equal(queue.gather(job_id), oracle)

    def test_supervisor_restart_resumes_from_ledger(self, tmp_path,
                                                    oracle):
        queue = _make_queue(tmp_path)
        job_id, _ = queue.submit(SPEC)
        worker = ServiceWorker(queue, worker_id="w0")
        assert worker.run_once() == "done"
        assert worker.run_once() == "done"
        queue.ledger.close()  # the whole service process goes away
        revived = JobQueue(
            JobLedger(str(tmp_path / "svc" / "ledger.jsonl")),
            ResultStore(str(tmp_path / "svc" / "store")))
        status = revived.status(job_id)
        assert status["counts"]["done"] == 2
        _drain(revived)
        assert np.array_equal(revived.gather(job_id), oracle)

    def test_corrupted_done_record_recovers_via_cache(self, tmp_path,
                                                      oracle):
        queue = _make_queue(tmp_path)
        job_id, _ = queue.submit(SPEC)
        _drain(queue)
        queue.ledger.close()
        path = str(tmp_path / "svc" / "ledger.jsonl")
        with open(path, "r", encoding="utf-8") as fh:
            lines = [decode_line(line) for line in fh]
        target = next(i for i, rec in enumerate(lines)
                      if rec and rec["kind"] == "done"
                      and rec["chunk"] == 2)
        corrupt_jsonl_record(path, target, mode="flip")
        # Replay demotes chunk 2 to leased; a far-future clock expires
        # the stale lease and the reaper requeues it.
        future = FakeClock(time.time() + 1e6)
        revived = JobQueue(JobLedger(path), queue.store, clock=future)
        assert revived.ledger.refresh().corrupt_records == 1
        assert revived.status(job_id)["chunks"]["2"]["state"] == "leased"
        assert (job_id, 2, "requeued") in revived.reap()
        future.advance(revived.backoff_cap + 1.0)
        worker = ServiceWorker(revived, worker_id="w9",
                               on_chunk=lambda lease: pytest.fail(
                                   "recovery must be a cache hit"))
        assert worker.run_once() == "cache-hit"
        assert np.array_equal(revived.gather(job_id), oracle)


# -- killed worker process (the headline chaos scenario) -------------------


def _suicidal_worker(ledger_path, store_root, events_path, token,
                     lease_ttl):
    """Worker process that SIGKILLs itself claiming its second chunk."""

    def maybe_die(lease):
        if lease.chunk == 0:
            # Outlive one heartbeat interval so the events stream
            # provably carries liveness beacons (CI asserts on them).
            time.sleep(lease_ttl / 3.0 + 0.2)
        if os.path.exists(token) and lease.chunk >= 1:
            os.unlink(token)
            os.kill(os.getpid(), signal.SIGKILL)

    telemetry = Telemetry(
        sinks=[JsonlSink(events_path, flush_every=1)],
        progress=None, source="victim")
    with JobLedger(ledger_path) as ledger:
        queue = JobQueue(ledger, ResultStore(store_root),
                         lease_ttl=lease_ttl, telemetry=telemetry)
        worker = ServiceWorker(queue, worker_id="victim",
                               telemetry=telemetry, on_chunk=maybe_die)
        worker.run(drain=True, poll=0.01)


class TestKilledWorker:
    @fork_only
    def test_sigkilled_worker_mid_chunk_byte_identical(self, tmp_path,
                                                       oracle):
        ledger_path = str(tmp_path / "ledger.jsonl")
        store_root = str(tmp_path / "store")
        events_path = str(tmp_path / "events.jsonl")
        token = str(tmp_path / "kill-token")
        ttl = 0.8
        with open(token, "w") as fh:
            fh.write("1")
        queue = JobQueue(JobLedger(ledger_path), ResultStore(store_root),
                         lease_ttl=ttl)
        job_id, _ = queue.submit(SPEC)

        context = multiprocessing.get_context("fork")
        victim = context.Process(
            target=_suicidal_worker,
            args=(ledger_path, store_root, events_path, token, ttl))
        victim.start()
        victim.join(timeout=120)
        assert victim.exitcode == -signal.SIGKILL  # actually murdered
        assert not os.path.exists(token)

        # The victim committed work before dying, and died holding a
        # lease on a later chunk.
        status = queue.status(job_id)
        assert status["counts"]["done"] >= 1
        assert status["counts"]["leased"] >= 1

        # Supervisor: wait out the dead worker's TTL, reap, re-run.
        deadline = time.time() + 30.0
        reaped = []
        while not reaped and time.time() < deadline:
            time.sleep(0.1)
            reaped = queue.reap()
        assert any(outcome == "requeued" for _, _, outcome in reaped)
        # The drain loop polls through the requeued chunk's backoff
        # window by itself.
        _drain(queue, worker_id="replacement")

        rows = queue.gather(job_id)
        assert np.array_equal(rows, oracle)
        serial_rank = cpa_attack(oracle, SPEC.plaintexts(),
                                 true_key=KEY).rank_of_true_key()
        assert cpa_attack(rows, SPEC.plaintexts(),
                          true_key=KEY).rank_of_true_key() == serial_rank

        # The victim's telemetry stream validates (heartbeats included)
        # under its own src label.
        records = read_jsonl(events_path)
        assert all(r.get("src") == "victim" for r in records)
        validate_stream(records)
        artifact = os.environ.get("REPRO_SERVICE_ARTIFACT")
        if artifact:
            shutil.copy(events_path, artifact)


# -- HTTP API --------------------------------------------------------------


async def _http(port, method, path, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n".encode("ascii")
        + payload)
    await writer.drain()
    data = await reader.read()
    writer.close()
    head, _, body_bytes = data.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(body_bytes)


class TestJobServiceHTTP:
    def test_submit_status_events_and_errors(self, tmp_path):
        clock = FakeClock()
        queue = _make_queue(tmp_path, clock=clock, lease_ttl=5.0)
        events_path = str(tmp_path / "events.jsonl")
        service = JobService(queue, events_path=events_path,
                             reap_interval=0.05)

        async def scenario():
            await service.start()
            try:
                port = service.port
                status, reply = await _http(port, "POST", "/jobs",
                                            SPEC.to_dict())
                assert status == 200
                job_id = reply["job"]
                assert reply == {"job": SPEC.job_id, "deduped": False,
                                 "n_chunks": 4}
                status, reply = await _http(port, "POST", "/jobs",
                                            SPEC.to_dict())
                assert status == 200 and reply["deduped"]

                status, reply = await _http(port, "GET", "/jobs")
                assert status == 200
                assert [j["job"] for j in reply["jobs"]] == [job_id]

                status, reply = await _http(port, "GET", f"/jobs/{job_id}")
                assert status == 200
                assert reply["counts"]["pending"] == 4

                # Bad requests surface structured errors.
                status, reply = await _http(port, "POST", "/jobs",
                                            {"style": "nope", "budget": 32})
                assert status == 400
                assert reply["error"]["error_code"] == "E_JOB_SPEC"
                status, reply = await _http(port, "GET", "/jobs/job-none")
                assert status == 404
                status, _reply = await _http(port, "GET", "/nope")
                assert status == 404

                # Events tail with a resume cursor.
                tele = Telemetry(
                    sinks=[JsonlSink(events_path, flush_every=1)],
                    progress=None, source="w1")
                tele.event("service.claim", job=job_id, chunk=0)
                tele.heartbeat("w1", job=job_id, chunk=0)
                tele.event("service.claim", job="job-other", chunk=0)
                tele.close()
                status, reply = await _http(port, "GET",
                                            f"/jobs/{job_id}/events")
                assert status == 200
                assert reply["cursor"] == 2
                kinds = [r["kind"] for r in reply["events"]]
                assert kinds == ["event", "heartbeat"]
                status, reply = await _http(
                    port, "GET", f"/jobs/{job_id}/events?after=2")
                assert status == 200
                assert reply["events"] == [] and reply["cursor"] == 2

                # The supervisor task reaps expired leases by itself.
                lease = queue.claim("w1")
                clock.advance(6.0)
                deadline = time.time() + 10.0
                while time.time() < deadline:
                    await asyncio.sleep(0.05)
                    chunk = queue.status(job_id)["chunks"]["0"]
                    if chunk["state"] == "pending":
                        break
                assert chunk["state"] == "pending"
                assert chunk["attempt"] == lease.attempt
            finally:
                await service.stop()

        asyncio.run(scenario())


# -- grid sharding ---------------------------------------------------------


class TestExpandMatrix:
    def test_one_job_per_unique_traceset(self):
        grid = MatrixSpec(styles=("cmos", "mcml"),
                          attacks=("cpa", "dpa"), budgets=(16,),
                          repeats=2, key=KEY)
        jobs = expand_matrix(grid, chunk_size=8)
        # cpa and dpa share the random schedule: 2 styles x 2 dies.
        assert len(jobs) == 4
        assert len({job.job_id for job in jobs}) == 4
        for job in jobs:
            assert job.key == KEY
            assert job.plaintexts() == derive_plaintexts(
                grid.base_seed, job.style, job.corner, job.budget,
                job.schedule, job.repeat)
            assert job.chain().seed == derive_chain_seed(
                grid.base_seed, job.trace_key())
            assert job.mismatch_seed() == derive_mismatch_seed(
                grid.base_seed, job.style, job.corner, job.repeat)

    def test_tvla_jobs_get_the_interleaved_schedule(self):
        grid = MatrixSpec(styles=("cmos",), attacks=("cpa", "tvla"),
                          budgets=(16,))
        jobs = expand_matrix(grid)
        schedules = sorted(job.schedule for job in jobs)
        assert schedules == ["random", "tvla"]
        tvla = next(job for job in jobs if job.schedule == "tvla")
        assert tvla.plaintexts()[0::2] == [0x00] * 8


# -- CLI + ledgerctl -------------------------------------------------------


def _run_cli(args, cwd):
    env = dict(os.environ, PYTHONPATH=os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src"))
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, cwd=str(cwd),
                          env=env, timeout=300)


class TestServiceCli:
    def test_submit_worker_gather_round_trip(self, tmp_path):
        spec = CampaignJobSpec(style="cmos", budget=16, key=KEY,
                               chunk_size=8)
        submitted = _run_cli(
            ["submit", "--dir", "svc", "--style", "cmos", "--budget",
             "16", "--key", hex(KEY), "--chunk-size", "8"], tmp_path)
        assert submitted.returncode == 0, submitted.stderr
        reply = json.loads(submitted.stdout)
        assert reply["job"] == spec.job_id and reply["n_chunks"] == 2

        worked = _run_cli(["worker", "--dir", "svc", "--once",
                           "--id", "cli-w"], tmp_path)
        assert worked.returncode == 0, worked.stderr

        listed = _run_cli(["jobs", "--dir", "svc"], tmp_path)
        assert listed.returncode == 0, listed.stderr
        jobs = json.loads(listed.stdout)["jobs"]
        assert jobs[0]["state"] == "done"

        gathered = _run_cli(["jobs", "--dir", "svc", spec.job_id,
                             "--gather", "out.npz"], tmp_path)
        assert gathered.returncode == 0, gathered.stderr
        with np.load(str(tmp_path / "out.npz")) as archive:
            rows = np.array(archive["rows"])
        oracle = spec.build_acquirer().acquire(spec.plaintexts())
        assert np.array_equal(rows, oracle)
        # The worker labelled its telemetry in the shared events file.
        records = read_jsonl(str(tmp_path / "svc" / "events.jsonl"))
        assert any(r.get("src") == "cli-w" for r in records)
        validate_stream(records)

    def test_submit_validates_specs(self, tmp_path):
        rejected = _run_cli(
            ["submit", "--dir", "svc", "--style", "nope",
             "--budget", "16"], tmp_path)
        assert rejected.returncode == 1
        assert "unknown style" in rejected.stderr


def _run_ledgerctl(args, cwd):
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return subprocess.run(
        [sys.executable, os.path.join(root, "tools", "ledgerctl.py"),
         *args], capture_output=True, text=True, cwd=str(cwd),
        timeout=120)


class TestLedgerctl:
    def test_list_chunks_inspect_requeue(self, tmp_path):
        clock = FakeClock()
        queue = _make_queue(tmp_path, clock=clock, max_attempts=1)
        job_id, _ = queue.submit(SPEC)
        lease = queue.claim("w1")
        _complete_manually(queue, lease)
        lease = queue.claim("w1")
        queue.fail(lease, {"error_code": "E_CONVERGENCE",
                           "message": "poison"})
        queue.ledger.close()
        directory = str(tmp_path / "svc")

        listed = _run_ledgerctl(["list", "--dir", directory], tmp_path)
        assert listed.returncode == 0, listed.stderr
        assert json.loads(listed.stdout)["jobs"][0]["job"] == job_id

        chunks = _run_ledgerctl(["chunks", "--dir", directory, job_id],
                                tmp_path)
        assert chunks.returncode == 0, chunks.stderr
        detail = json.loads(chunks.stdout)
        assert detail["chunks"]["0"]["state"] == "done"
        assert detail["chunks"]["1"]["state"] == "quarantined"

        inspected = _run_ledgerctl(["inspect", "--dir", directory],
                                   tmp_path)
        assert inspected.returncode == 1  # quarantine present -> nonzero
        report = json.loads(inspected.stdout)
        assert report["corrupt_lines"] == 0
        assert report["quarantined"][0]["chunk"] == 1
        assert report["quarantined"][0]["error"]["error_code"] \
            == "E_CONVERGENCE"

        requeued = _run_ledgerctl(
            ["requeue", "--dir", directory, job_id, "--chunk", "1"],
            tmp_path)
        assert requeued.returncode == 0, requeued.stderr
        inspected = _run_ledgerctl(["inspect", "--dir", directory],
                                   tmp_path)
        assert inspected.returncode == 0
        assert json.loads(inspected.stdout)["quarantined"] == []

    def test_missing_ledger_fails_cleanly(self, tmp_path):
        result = _run_ledgerctl(["list", "--dir", str(tmp_path / "nope")],
                                tmp_path)
        assert result.returncode == 2
        assert "no ledger" in result.stderr
