"""Differential truth tables: logic simulator vs settled transient SPICE.

For every transistor-level cell template in the three styles, drive the
generated netlist with each input combination (seeded random sample for
the widest cells), run a transient until it settles, and check the
electrical verdict against the event-driven logic simulator evaluating
the same cell from the corresponding library — two entirely independent
code paths that must agree on every row of every truth table.

PG-MCML cells are checked twice: sleep deasserted (vsleep = VDD, the
cell is awake and must match the logic oracle) and sleep asserted
(vsleep = 0, the differential output collapses and the supply current
dies — there is no logic value to compare, which is exactly the point).
"""

import itertools

import numpy as np
import pytest

from repro.cells import (
    CmosCellGenerator,
    McmlCellGenerator,
    PgMcmlCellGenerator,
    WddlCellGenerator,
    build_cmos_library,
    build_mcml_library,
    build_pg_mcml_library,
    build_wddl_library,
    function,
    solve_bias,
)
from repro.cells.library import PG_MCML_CELL_NAMES
from repro.cells.wddl import WDDL_CELL_NAMES
from repro.netlist import GateNetlist, LogicSimulator
from repro.spice import DC, run_transient
from repro.tech import TECH90
from repro.units import ns, ps, uA

VDD = TECH90.vdd
TSTOP = ns(1.0)
DT = ps(50.0)
#: Enumerate every combination up to this many inputs, sample beyond.
FULL_ENUM_INPUTS = 4
SAMPLED_COMBOS = 12

#: Combinational members of the paper's 16-cell library.
MCML_COMB_CELLS = tuple(n for n in PG_MCML_CELL_NAMES
                        if not function(n).sequential)
#: Cells with a transistor-level static CMOS template.
CMOS_CELLS = ("INV", "BUF", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3",
              "MUX2")


@pytest.fixture(scope="module")
def sizing():
    return solve_bias(uA(50)).sizing


@pytest.fixture(scope="module")
def pg_sizing():
    return solve_bias(uA(50), gated=True).sizing


@pytest.fixture(scope="module")
def libraries():
    return {"cmos": build_cmos_library(),
            "mcml": build_mcml_library(),
            "pgmcml": build_pg_mcml_library(),
            "wddl": build_wddl_library()}


def input_combos(fn):
    """Every combination for narrow cells, a seeded sample for wide."""
    n = len(fn.inputs)
    if n <= FULL_ENUM_INPUTS:
        return [dict(zip(fn.inputs, bits))
                for bits in itertools.product([False, True], repeat=n)]
    rng = np.random.default_rng(0x7AB1E)
    picks = rng.choice(2 ** n, size=SAMPLED_COMBOS, replace=False)
    return [dict(zip(fn.inputs, ((code >> i) & 1 == 1 for i in range(n))))
            for code in sorted(int(p) for p in picks)]


def logicsim_eval(library, cell_name, env):
    """The event-driven simulator's verdict on one truth-table row."""
    fn = library.cells[cell_name].function
    netlist = GateNetlist("tt", library)
    pins = {}
    for pin in fn.inputs:
        net = f"in_{pin.lower()}"
        netlist.add_primary_input(net)
        pins[pin] = net
    for out in fn.outputs:
        pins[out] = f"out_{out.lower()}"
    netlist.add_instance(cell_name, pins, name="u0")
    for out in fn.outputs:
        netlist.add_primary_output(pins[out])
    sim = LogicSimulator(netlist)
    sim.initialize({pins[pin]: env[pin] for pin in fn.inputs})
    return {out: sim.values[pins[out]] for out in fn.outputs}


def settle_mcml(fn_name, env, sizing, gated=False, sleep_on=True):
    """Transient-settled differential output volts (and vdd current)."""
    fn = function(fn_name)
    gen = (PgMcmlCellGenerator(TECH90, sizing) if gated
           else McmlCellGenerator(TECH90, sizing))
    cell = gen.build(fn)
    ckt = cell.circuit
    ckt.v("vdd", cell.vdd_net, VDD)
    ckt.v("vvn", cell.vn_net, sizing.vn)
    ckt.v("vvp", cell.vp_net, sizing.vp)
    if gated:
        ckt.v("vsleep", cell.sleep_net, VDD if sleep_on else 0.0)
    hi, lo = sizing.input_high(TECH90), sizing.input_low(TECH90)
    for pin, value in env.items():
        p, n = cell.input_nets[pin]
        ckt.v(f"v{pin.lower()}p", p, DC(hi if value else lo))
        ckt.v(f"v{pin.lower()}n", n, DC(lo if value else hi))
    res = run_transient(ckt, tstop=TSTOP, dt=DT)
    diffs = {out: res.voltages[p][-1] - res.voltages[n][-1]
             for out, (p, n) in cell.output_nets.items()}
    return diffs, res.current("vdd").v[-1]


def settle_cmos(fn_name, env):
    cell = CmosCellGenerator().build(fn_name)
    ckt = cell.circuit
    ckt.v("vdd", cell.vdd_net, VDD)
    for pin, value in env.items():
        ckt.v(f"v{pin.lower()}", cell.input_nets[pin],
              DC(VDD if value else 0.0))
    res = run_transient(ckt, tstop=TSTOP, dt=DT)
    return {out: res.voltages[net][-1]
            for out, net in cell.output_nets.items()}


class TestMcmlDifferential:
    @pytest.mark.parametrize("cell_name", MCML_COMB_CELLS)
    def test_spice_agrees_with_logicsim(self, cell_name, sizing, libraries):
        fn = function(cell_name)
        for env in input_combos(fn):
            expected = logicsim_eval(libraries["mcml"], cell_name, env)
            diffs, _ = settle_mcml(cell_name, env, sizing)
            for out in fn.outputs:
                diff = diffs[out]
                assert abs(diff) > 0.15, (cell_name, env, out, diff)
                assert (diff > 0) == expected[out], \
                    (cell_name, env, out, diff, expected[out])


class TestPgMcmlDifferential:
    @pytest.mark.parametrize("cell_name", MCML_COMB_CELLS)
    def test_awake_matches_logicsim(self, cell_name, pg_sizing, libraries):
        fn = function(cell_name)
        for env in input_combos(fn):
            expected = logicsim_eval(libraries["pgmcml"], cell_name, env)
            diffs, _ = settle_mcml(cell_name, env, pg_sizing, gated=True,
                                   sleep_on=True)
            for out in fn.outputs:
                diff = diffs[out]
                assert abs(diff) > 0.15, (cell_name, env, out, diff)
                assert (diff > 0) == expected[out], \
                    (cell_name, env, out, diff, expected[out])

    @pytest.mark.parametrize("cell_name", MCML_COMB_CELLS)
    def test_asleep_output_collapses(self, cell_name, pg_sizing):
        """Sleep asserted: no tail current, both rails float to VDD, the
        differential output carries no logic value."""
        fn = function(cell_name)
        env = dict(zip(fn.inputs, itertools.cycle([True, False])))
        awake_diffs, awake_i = settle_mcml(cell_name, env, pg_sizing,
                                           gated=True, sleep_on=True)
        asleep_diffs, asleep_i = settle_mcml(cell_name, env, pg_sizing,
                                             gated=True, sleep_on=False)
        for out in fn.outputs:
            assert abs(asleep_diffs[out]) < 0.05, (cell_name, out)
            assert abs(asleep_diffs[out]) < abs(awake_diffs[out]) / 4
        assert abs(asleep_i) < abs(awake_i) / 100, \
            (cell_name, awake_i, asleep_i)


def settle_wddl(fn_name, env, precharge=False):
    """Transient-settled (true, false) rail volts per output."""
    cell = WddlCellGenerator().build(fn_name)
    ckt = cell.circuit
    ckt.v("vdd", cell.vdd_net, VDD)
    for pin, (t_net, f_net) in cell.input_rails.items():
        if precharge:
            vt, vf = 0.0, 0.0
        else:
            vt, vf = (VDD, 0.0) if env[pin] else (0.0, VDD)
        ckt.v(f"v{pin.lower()}t", t_net, DC(vt))
        ckt.v(f"v{pin.lower()}f", f_net, DC(vf))
    res = run_transient(ckt, tstop=TSTOP, dt=DT)
    return {out: (res.voltages[t][-1], res.voltages[f][-1])
            for out, (t, f) in cell.output_rails.items()}


class TestWddlDifferential:
    """Dual-rail precharge cells: evaluate phase must charge exactly one
    rail per pair (the one the logic oracle predicts); precharge — both
    rails of every input low — must propagate the all-low spacer."""

    @pytest.mark.parametrize("cell_name", WDDL_CELL_NAMES)
    def test_evaluate_agrees_with_logicsim(self, cell_name, libraries):
        fn = function(cell_name)
        for env in input_combos(fn):
            expected = logicsim_eval(libraries["wddl"], cell_name, env)
            rails = settle_wddl(cell_name, env)
            for out in fn.outputs:
                vt, vf = rails[out]
                for v in (vt, vf):
                    assert v < 0.2 * VDD or v > 0.8 * VDD, \
                        (cell_name, env, out, vt, vf)
                # Exactly one rail high, and it is the predicted one.
                assert (vt > VDD / 2) != (vf > VDD / 2), \
                    (cell_name, env, out, vt, vf)
                assert (vt > VDD / 2) == expected[out], \
                    (cell_name, env, out, vt, vf, expected[out])

    @pytest.mark.parametrize("cell_name", WDDL_CELL_NAMES)
    def test_precharge_propagates_all_low(self, cell_name):
        fn = function(cell_name)
        env = dict(zip(fn.inputs, itertools.cycle([True])))
        rails = settle_wddl(cell_name, env, precharge=True)
        for out in fn.outputs:
            vt, vf = rails[out]
            assert vt < 0.2 * VDD and vf < 0.2 * VDD, \
                (cell_name, out, vt, vf)


class TestCmosDifferential:
    @pytest.mark.parametrize("cell_name", CMOS_CELLS)
    def test_spice_agrees_with_logicsim(self, cell_name, libraries):
        fn = function(cell_name)
        for env in input_combos(fn):
            expected = logicsim_eval(libraries["cmos"], cell_name, env)
            volts = settle_cmos(cell_name, env)
            for out in fn.outputs:
                v = volts[out]
                # Settled rail-to-rail logic: insist on a clean margin.
                assert v < 0.2 * VDD or v > 0.8 * VDD, \
                    (cell_name, env, out, v)
                assert (v > VDD / 2) == expected[out], \
                    (cell_name, env, out, v, expected[out])


class TestLatchTransparency:
    """The one sequential template exercised electrically: a transparent
    DLATCH (EN high) must pass D through in both styles."""

    @pytest.mark.parametrize("gated", [False, True])
    @pytest.mark.parametrize("d", [False, True])
    def test_transparent_latch_follows_d(self, d, gated, sizing, pg_sizing):
        s = pg_sizing if gated else sizing
        diffs, _ = settle_mcml("DLATCH", {"D": d, "EN": True}, s,
                               gated=gated)
        diff = diffs["Q"]
        assert abs(diff) > 0.15
        assert (diff > 0) == d


class TestDffCapture:
    """The sequential cells with transistor templates, differentially:
    a rising clock edge must capture D in SPICE exactly as the logic
    simulator's edge-triggered model says (both styles, both D values).
    EDFF and DFFR have no transistor-level template (they characterise
    from their latch composition) — pinned so silent template gaps fail."""

    def _spice_capture(self, d, gated, sizing):
        from repro.spice import Pulse

        fn = function("DFF")
        gen = (PgMcmlCellGenerator(TECH90, sizing) if gated
               else McmlCellGenerator(TECH90, sizing))
        cell = gen.build(fn)
        ckt = cell.circuit
        ckt.v("vdd", cell.vdd_net, VDD)
        ckt.v("vvn", cell.vn_net, sizing.vn)
        ckt.v("vvp", cell.vp_net, sizing.vp)
        if gated:
            ckt.v("vsleep", cell.sleep_net, VDD)
        hi, lo = sizing.input_high(TECH90), sizing.input_low(TECH90)
        p, n = cell.input_nets["D"]
        ckt.v("vdp", p, DC(hi if d else lo))
        ckt.v("vdn", n, DC(lo if d else hi))
        p, n = cell.input_nets["CK"]
        ckt.v("vckp", p, Pulse(lo, hi, ns(1), ps(50), ps(50), ns(10)))
        ckt.v("vckn", n, Pulse(hi, lo, ns(1), ps(50), ps(50), ns(10)))
        res = run_transient(ckt, tstop=ns(3), dt=ps(25))
        p, n = cell.output_nets["Q"]
        return res.voltages[p][-1] - res.voltages[n][-1]

    def _logicsim_capture(self, library, d):
        netlist = GateNetlist("dff", library)
        netlist.add_primary_input("d")
        netlist.add_primary_input("ck")
        netlist.add_instance("DFF", {"D": "d", "CK": "ck", "Q": "q"},
                             name="u0")
        netlist.add_primary_output("q")
        sim = LogicSimulator(netlist)
        sim.initialize({"d": d, "ck": False})
        sim.run([(1e-9, "ck", True)], duration=3e-9)
        return sim.values["q"]

    @pytest.mark.parametrize("gated", [False, True])
    @pytest.mark.parametrize("d", [False, True])
    def test_rising_edge_captures_d(self, d, gated, sizing, pg_sizing,
                                    libraries):
        s = pg_sizing if gated else sizing
        library = libraries["pgmcml" if gated else "mcml"]
        expected = self._logicsim_capture(library, d)
        diff = self._spice_capture(d, gated, s)
        assert abs(diff) > 0.15
        assert (diff > 0) == expected == d

    @pytest.mark.parametrize("cell_name", ["EDFF", "DFFR"])
    def test_untemplated_sequential_cells_raise(self, cell_name, sizing):
        from repro.errors import CellError

        with pytest.raises(CellError):
            McmlCellGenerator(TECH90, sizing).build(function(cell_name))
