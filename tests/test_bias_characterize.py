"""Tests for the bias solver and the characterisation harness."""

import pytest

from repro.cells import (
    McmlCellGenerator,
    PgMcmlCellGenerator,
    characterize_mcml_cell,
    function,
    measure_leakage,
    solve_bias,
)
from repro.cells.characterize import sensitising_assignment
from repro.errors import CharacterizationError
from repro.units import uA


@pytest.fixture(scope="module")
def bias50():
    return solve_bias(uA(50))


class TestBiasSolver:
    def test_hits_current_target(self, bias50):
        assert bias50.iss_measured == pytest.approx(uA(50), rel=0.02)

    def test_hits_swing_target(self, bias50):
        assert bias50.swing_measured == pytest.approx(0.40, rel=0.02)

    def test_load_resistance(self, bias50):
        assert bias50.load_resistance == pytest.approx(0.4 / uA(50), rel=0.05)

    def test_cache_returns_same_object(self):
        a = solve_bias(uA(50))
        b = solve_bias(uA(50))
        assert a is b

    def test_gated_variant_differs(self):
        gated = solve_bias(uA(50), gated=True)
        assert gated.gated
        assert gated.iss_measured == pytest.approx(uA(50), rel=0.02)

    def test_low_current_uses_vp_knob(self):
        low = solve_bias(uA(10))
        assert low.swing_measured == pytest.approx(0.40, rel=0.05)
        assert low.sizing.vp > 0.05  # load weakened through Vp

    def test_high_current(self):
        high = solve_bias(uA(250))
        assert high.iss_measured == pytest.approx(uA(250), rel=0.05)

    def test_invalid_targets(self):
        with pytest.raises(CharacterizationError):
            solve_bias(-1e-6)
        with pytest.raises(CharacterizationError):
            solve_bias(uA(50), swing=2.0)


class TestSensitising:
    def test_buffer(self):
        pin, side, out = sensitising_assignment(function("BUF"))
        assert pin == "A" and out == "Y" and side == {}

    def test_and2_requires_high_side(self):
        pin, side, out = sensitising_assignment(function("AND2"))
        other = [p for p in ("A", "B") if p != pin][0]
        assert side[other] is True

    def test_mux2(self):
        pin, side, out = sensitising_assignment(function("MUX2"))
        fn = function("MUX2")
        low = fn.evaluate({**side, pin: False})[out]
        high = fn.evaluate({**side, pin: True})[out]
        assert low != high

    def test_constant_function_rejected(self):
        with pytest.raises(CharacterizationError):
            sensitising_assignment(function("TIEH"))

    def test_sequential_rejected(self):
        with pytest.raises(CharacterizationError):
            sensitising_assignment(function("DFF"))


class TestCharacterization:
    def test_buffer_measurement(self, bias50):
        gen = McmlCellGenerator(sizing=bias50.sizing)
        meas = characterize_mcml_cell(function("BUF"), gen, fanout=1)
        assert 5e-12 < meas.delay < 60e-12
        assert meas.swing == pytest.approx(0.40, rel=0.1)
        assert meas.iss == pytest.approx(uA(50), rel=0.1)

    def test_fanout_slows_cell(self, bias50):
        gen = McmlCellGenerator(sizing=bias50.sizing)
        fo1 = characterize_mcml_cell(function("BUF"), gen, fanout=1)
        fo4 = characterize_mcml_cell(function("BUF"), gen, fanout=4)
        assert fo4.delay > 1.5 * fo1.delay

    def test_pg_overhead_small(self, bias50):
        plain = characterize_mcml_cell(
            function("BUF"), McmlCellGenerator(sizing=bias50.sizing))
        gated = characterize_mcml_cell(
            function("BUF"),
            PgMcmlCellGenerator(sizing=solve_bias(uA(50), gated=True).sizing))
        # "The insertion of the sleep transistor does not reduce the
        # performances" — within a few percent.
        assert gated.delay == pytest.approx(plain.delay, rel=0.10)

    def test_and2_slower_than_buffer(self, bias50):
        gen = McmlCellGenerator(sizing=bias50.sizing)
        buf = characterize_mcml_cell(function("BUF"), gen)
        and2 = characterize_mcml_cell(function("AND2"), gen)
        assert and2.delay > buf.delay

    def test_repr(self, bias50):
        gen = McmlCellGenerator(sizing=bias50.sizing)
        meas = characterize_mcml_cell(function("BUF"), gen)
        assert "BUF" in repr(meas)


class TestLeakage:
    def test_sleep_leakage_tiny(self):
        gen = PgMcmlCellGenerator(sizing=solve_bias(uA(50), gated=True).sizing)
        leak = measure_leakage(function("BUF"), gen, asleep=True)
        assert 0.0 < leak < 5e-9

    def test_active_equals_tail_current(self):
        bias = solve_bias(uA(50), gated=True)
        gen = PgMcmlCellGenerator(sizing=bias.sizing)
        active = measure_leakage(function("BUF"), gen, asleep=False)
        assert active == pytest.approx(uA(50), rel=0.1)

    def test_on_off_ratio_exceeds_1e4(self):
        bias = solve_bias(uA(50), gated=True)
        gen = PgMcmlCellGenerator(sizing=bias.sizing)
        on = measure_leakage(function("BUF"), gen, asleep=False)
        off = measure_leakage(function("BUF"), gen, asleep=True)
        assert on / off > 1e4

    def test_plain_mcml_has_no_sleep_mode(self):
        bias = solve_bias(uA(50))
        gen = McmlCellGenerator(sizing=bias.sizing)
        with pytest.raises(CharacterizationError):
            measure_leakage(function("BUF"), gen, asleep=True)
