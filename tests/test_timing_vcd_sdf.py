"""Tests for static timing, VCD round-trips, and SDF annotation."""

import io

import pytest

from repro.cells import build_cmos_library, build_pg_mcml_library
from repro.errors import NetlistError
from repro.netlist import (
    GateNetlist,
    LogicSimulator,
    annotate_delays,
    read_sdf,
    read_vcd,
    static_timing,
    write_sdf,
    write_vcd,
)
from repro.netlist.sdf import apply_delays


@pytest.fixture(scope="module")
def lib():
    return build_cmos_library()


def inv_chain(lib, n):
    nl = GateNetlist(f"chain{n}", lib)
    nl.add_primary_input("a")
    prev = "a"
    for i in range(n):
        nl.add_instance("INV", {"A": prev, "Y": f"n{i}"}, name=f"u{i}")
        prev = f"n{i}"
    nl.add_primary_output(prev)
    return nl


class TestStaticTiming:
    def test_chain_delay_accumulates(self, lib):
        t2 = static_timing(inv_chain(lib, 2)).critical_delay
        t4 = static_timing(inv_chain(lib, 4)).critical_delay
        assert t4 > t2 * 1.5

    def test_critical_path_reconstruction(self, lib):
        report = static_timing(inv_chain(lib, 3))
        assert report.critical_path == ["u0", "u1", "u2"]

    def test_parallel_paths_pick_longest(self, lib):
        nl = GateNetlist("par", lib)
        nl.add_primary_input("a")
        nl.add_instance("INV", {"A": "a", "Y": "fast"}, name="uf")
        nl.add_instance("INV", {"A": "a", "Y": "s1"}, name="us1")
        nl.add_instance("INV", {"A": "s1", "Y": "s2"}, name="us2")
        nl.add_instance("AND2", {"A": "fast", "B": "s2", "Y": "y"},
                        name="ua")
        nl.add_primary_output("y")
        report = static_timing(nl)
        assert "us1" in report.critical_path
        assert "us2" in report.critical_path

    def test_register_endpoints(self, lib):
        nl = GateNetlist("reg", lib)
        nl.add_primary_input("d")
        nl.add_primary_input("ck")
        nl.add_instance("DFF", {"D": "d", "CK": "ck", "Q": "q"}, name="ff")
        nl.add_instance("INV", {"A": "q", "Y": "qb"}, name="u1")
        nl.add_instance("DFF", {"D": "qb", "CK": "ck", "Q": "q2"},
                        name="ff2")
        report = static_timing(nl)
        # clk->q + INV delay is the register-to-register path.
        assert report.critical_delay > 0
        assert report.slack(2.5e-9) < 2.5e-9

    def test_input_arrival_offset(self, lib):
        base = static_timing(inv_chain(lib, 2), input_arrival=0.0)
        off = static_timing(inv_chain(lib, 2), input_arrival=1e-9)
        assert off.critical_delay == pytest.approx(base.critical_delay,
                                                   rel=1e-9)

    def test_repr(self, lib):
        assert "ns" in repr(static_timing(inv_chain(lib, 2)))


class TestVcd:
    def roundtrip(self, lib):
        nl = inv_chain(lib, 2)
        sim = LogicSimulator(nl)
        sim.initialize({"a": False})
        trace = sim.run([(1e-9, "a", True), (4e-9, "a", False)],
                        duration=10e-9)
        buf = io.StringIO()
        write_vcd(buf, trace)
        buf.seek(0)
        return trace, read_vcd(buf)

    def test_roundtrip_preserves_transitions(self, lib):
        original, parsed = self.roundtrip(lib)
        assert parsed.toggles() == original.toggles()

    def test_roundtrip_preserves_times_to_fs(self, lib):
        original, parsed = self.roundtrip(lib)
        orig = sorted((t.net, round(t.time * 1e15))
                      for t in original.transitions)
        back = sorted((t.net, round(t.time * 1e15))
                      for t in parsed.transitions)
        assert orig == back

    def test_roundtrip_preserves_values(self, lib):
        original, parsed = self.roundtrip(lib)
        for t_orig, t_back in zip(
                sorted(original.transitions, key=lambda t: (t.time, t.net)),
                sorted(parsed.transitions, key=lambda t: (t.time, t.net))):
            assert t_orig.value == t_back.value

    def test_net_subset(self, lib):
        nl = inv_chain(lib, 2)
        sim = LogicSimulator(nl)
        sim.initialize({"a": False})
        trace = sim.run([(1e-9, "a", True)], duration=5e-9)
        buf = io.StringIO()
        write_vcd(buf, trace, nets=["a"])
        buf.seek(0)
        parsed = read_vcd(buf)
        assert {t.net for t in parsed.transitions} <= {"a"}

    def test_bad_vcd_rejected(self):
        with pytest.raises(NetlistError):
            read_vcd(io.StringIO(
                "$enddefinitions $end\n#10\n1?\n"))


class TestSdf:
    def test_annotation_covers_all_instances(self, lib):
        nl = inv_chain(lib, 3)
        delays = annotate_delays(nl)
        assert set(delays) == set(nl.instances)
        assert all(d > 0 for d in delays.values())

    def test_roundtrip(self, lib):
        nl = inv_chain(lib, 3)
        delays = annotate_delays(nl)
        buf = io.StringIO()
        write_sdf(buf, nl, delays)
        buf.seek(0)
        parsed = read_sdf(buf)
        assert set(parsed) == set(delays)
        for name in delays:
            assert parsed[name] == pytest.approx(delays[name], abs=1e-15)

    def test_apply_delays_overrides_simulator(self, lib):
        nl = inv_chain(lib, 1)
        sim = LogicSimulator(nl)
        sim.initialize({"a": False})
        apply_delays(sim, {"u0": 5e-10})
        trace = sim.run([(1e-9, "a", True)], duration=5e-9)
        event = [t for t in trace.transitions if t.net == "n0"][0]
        assert event.time == pytest.approx(1.5e-9, rel=1e-6)

    def test_apply_unknown_instance(self, lib):
        sim = LogicSimulator(inv_chain(lib, 1))
        with pytest.raises(NetlistError):
            apply_delays(sim, {"nosuch": 1e-12})

    def test_write_unknown_instance(self, lib):
        nl = inv_chain(lib, 1)
        with pytest.raises(NetlistError):
            write_sdf(io.StringIO(), nl, {"ghost": 1e-12})


class TestDifferentialTiming:
    def test_pg_mcml_chain(self):
        pg = build_pg_mcml_library()
        nl = GateNetlist("diff", pg)
        nl.add_primary_input("a")
        nl.add_instance("BUF", {"A": "a", "Y": "b"}, name="u1")
        nl.add_instance("XOR2", {"A": "b", "B": "a", "Y": "y"}, name="u2")
        nl.add_primary_output("y")
        report = static_timing(nl)
        assert report.critical_delay > 40e-12  # BUF + XOR2 datasheet-ish
