"""Deck export contract: golden snapshots, round-trips, strictness.

The exported deck is the only thing an external simulator ever sees, so
this suite pins down three properties:

* **golden snapshot** — a fixed circuit with all three stimulus types
  exports byte-for-byte identically (any change here is a deliberate
  format change, reviewed via this test);
* **round-trip** — one representative cell per library style (CMOS INV,
  MCML BUF, PG-MCML BUF) re-parses via :func:`parse_spice_deck` into
  the same device/node/model population the circuit holds;
* **strictness** — unexportable devices (subclass proxies included)
  raise an aggregate :class:`CircuitError` instead of silently
  exporting as their pristine base class.
"""

import io

import pytest

from repro.cells import (
    CmosCellGenerator,
    McmlCellGenerator,
    PgMcmlCellGenerator,
    function,
    solve_bias,
)
from repro.errors import CircuitError
from repro.spice import (
    Circuit,
    DC,
    GROUND,
    Mosfet,
    Pulse,
    PWL,
    Resistor,
    parse_spice_deck,
    write_spice_deck,
    write_subckt,
)
from repro.units import uA


def _golden_circuit() -> Circuit:
    ckt = Circuit("golden")
    ckt.resistor("rload", "mid", "out", 1e3)
    ckt.capacitor("cl", "out", GROUND, 1e-12)
    ckt.isource("ib", "mid", GROUND, 1e-6)
    ckt.v("vin", "in", Pulse(0.0, 1.2, 1e-9, 1e-11, 1e-11, 2e-9, 4e-9))
    ckt.v("vdd", "mid", DC(1.2))
    ckt.v("vramp", "out", PWL([(0.0, 0.0), (1e-9, 1.2)]))
    return ckt


GOLDEN_DECK = """\
* golden
* exported by repro (PG-MCML reproduction)

R1_rload mid out 1000
C1_cl out 0 1e-12
I1_ib mid 0 DC 1e-06

V1_vin in 0 PULSE(0 1.2 1e-09 1e-11 1e-11 2e-09 4e-09)
V2_vdd mid 0 DC 1.2
V3_vramp out 0 PWL(0 0 1e-09 1.2)


.OPTIONS filetype=ascii

.SAVE v(out) v(mid)

.PRINT TRAN v(out)

.TRAN 1e-12 4e-09

.END
"""


class TestGoldenDeck:
    def test_snapshot(self):
        buf = io.StringIO()
        info = write_spice_deck(
            buf, _golden_circuit(), tran={"tstep": 1e-12, "tstop": 4e-9},
            save=["out", "v(mid)"], print_vectors=["out"],
            options={"filetype": "ascii"})
        assert buf.getvalue() == GOLDEN_DECK
        assert info.device_cards == {"rload": "R1_rload", "cl": "C1_cl",
                                     "ib": "I1_ib"}
        assert info.source_cards == {"vin": "V1_vin", "vdd": "V2_vdd",
                                     "vramp": "V3_vramp"}
        assert info.nodes == ["0", "in", "mid", "out"]
        assert info.saves == ["v(out)", "v(mid)"]
        assert info.analyses == [".TRAN 1e-12 4e-09"]

    def test_golden_round_trips(self):
        deck = parse_spice_deck(GOLDEN_DECK)
        assert deck.ended
        assert [c.name for c in deck.devices] == \
            ["R1_rload", "C1_cl", "I1_ib"]
        kinds = {s.name: s.kind for s in deck.sources}
        assert kinds == {"V1_vin": "PULSE", "V2_vdd": "DC",
                         "V3_vramp": "PWL"}
        pulse = next(s for s in deck.sources if s.kind == "PULSE")
        assert pulse.values == [0.0, 1.2, 1e-9, 1e-11, 1e-11, 2e-9, 4e-9]
        pwl = next(s for s in deck.sources if s.kind == "PWL")
        assert pwl.values == [0.0, 0.0, 1e-9, 1.2]
        assert deck.tran == (1e-12, 4e-9)
        assert deck.saves == ["v(out)", "v(mid)"]
        assert deck.prints == [("TRAN", ["v(out)"])]
        assert deck.options == {"filetype": "ascii"}
        assert deck.nodes() == ["0", "in", "mid", "out"]

    def test_dc_snapshot_freezes_sources(self):
        buf = io.StringIO()
        write_spice_deck(buf, _golden_circuit(), op=True, dc_snapshot=0.5e-9)
        deck = parse_spice_deck(buf.getvalue())
        assert deck.op
        assert all(s.kind == "DC" for s in deck.sources)
        ramp = next(s for s in deck.sources if s.name == "V3_vramp")
        assert ramp.values[0] == pytest.approx(0.6)

    def test_source_for_vector_forms(self):
        buf = io.StringIO()
        info = write_spice_deck(buf, _golden_circuit())
        assert info.source_for_vector("i(v1_vin)") == "vin"
        assert info.source_for_vector("I(V2_VDD)") == "vdd"
        assert info.source_for_vector("v3_vramp#branch") == "vramp"
        assert info.source_for_vector("v(out)") is None


def _check_cell_round_trip(circuit, expect_models):
    buf = io.StringIO()
    info = write_spice_deck(buf, circuit, save=["all"],
                            options={"filetype": "ascii"})
    deck = parse_spice_deck(buf.getvalue())
    assert deck.ended
    # Every circuit device landed as exactly one card with the right
    # node count, and every card maps back through the manifest.
    assert len(deck.devices) == len(circuit.devices)
    emitted = {c.name for c in deck.devices}
    assert set(info.device_cards.values()) == emitted
    assert {s.name for s in deck.sources} == set(info.source_cards.values())
    # Node population survives (ground folded to "0").
    assert deck.nodes() == info.nodes
    # Model cards for every flavour, with a LEVEL=1 core.
    assert set(deck.models) == set(expect_models)
    for name, (kind, params) in deck.models.items():
        assert kind in ("NMOS", "PMOS")
        assert params.get("LEVEL") == 1.0
        assert "VTO" in params and "KP" in params
    # Each MOS card references a declared model and carries W/L.
    for card in deck.devices:
        if card.letter == "M":
            assert card.fields[0] in deck.models
            assert card.params["W"] > 0 and card.params["L"] > 0
    return deck


class TestCellRoundTrips:
    def test_cmos_inv(self):
        cell = CmosCellGenerator().build("INV", load_cap=1e-15)
        ckt = cell.circuit
        ckt.v("vdd", cell.vdd_net, DC(1.2))
        ckt.v("vin", cell.input_nets["A"], Pulse(0, 1.2, 1e-10, 1e-11,
                                                 1e-11, 1e-9, 2e-9))
        deck = _check_cell_round_trip(ckt, ["nmos_lvt", "pmos_lvt"])
        letters = sorted(c.letter for c in deck.devices)
        assert letters.count("M") == 2  # one NMOS, one PMOS

    def test_mcml_buf(self):
        bias = solve_bias(uA(50))
        cell = McmlCellGenerator(sizing=bias.sizing).build(function("BUF"))
        ckt = cell.circuit
        ckt.v("vdd", cell.vdd_net, DC(1.2))
        ckt.v("vvn", cell.vn_net, DC(bias.sizing.vn))
        ckt.v("vvp", cell.vp_net, DC(bias.sizing.vp))
        ckt.v("vin_p", cell.input_nets["A"][0], DC(1.2))
        ckt.v("vin_n", cell.input_nets["A"][1], DC(0.8))
        deck = _check_cell_round_trip(ckt, ["nmos_hvt", "pmos_lvt"])
        assert sum(1 for c in deck.devices if c.letter == "M") == 5

    def test_pgmcml_buf(self):
        bias = solve_bias(uA(50))
        gen = PgMcmlCellGenerator(sizing=bias.sizing)
        cell = gen.build(function("BUF"))
        assert cell.has_sleep
        ckt = cell.circuit
        ckt.v("vdd", cell.vdd_net, DC(1.2))
        ckt.v("vvn", cell.vn_net, DC(bias.sizing.vn))
        ckt.v("vvp", cell.vp_net, DC(bias.sizing.vp))
        ckt.v("vsleep", cell.sleep_net, DC(1.2))
        ckt.v("vin_p", cell.input_nets["A"][0], DC(1.2))
        ckt.v("vin_n", cell.input_nets["A"][1], DC(0.8))
        deck = _check_cell_round_trip(ckt, ["nmos_hvt", "pmos_lvt"])
        # PG-MCML = MCML buffer + the NMOS sleep device in the tail.
        assert sum(1 for c in deck.devices if c.letter == "M") >= 6


class _FaultyResistor(Resistor):
    """Stand-in for a fault-injection proxy: same card letter, different
    behaviour — must never export as a pristine Resistor."""

    def currents(self, volts):
        return [0.0, 0.0]


class TestExportStrictness:
    def test_subclass_proxy_rejected(self):
        ckt = Circuit("faulty")
        ckt.add(_FaultyResistor("rbad", "a", GROUND, 1e3))
        ckt.v("vin", "a", DC(1.0))
        with pytest.raises(CircuitError) as err:
            write_spice_deck(io.StringIO(), ckt)
        assert "rbad" in str(err.value)
        assert "_FaultyResistor" in str(err.value)
        assert "proxies" in str(err.value)  # the disarm hint
        assert err.value.context["devices"] == ["rbad"]

    def test_aggregate_error_lists_every_offender(self):
        class Alien:
            name = "weird"
            terminals = ("x", "y")

        ckt = Circuit("faulty")
        ckt.resistor("rok", "a", GROUND, 1e3)
        ckt.add(_FaultyResistor("rbad", "a", GROUND, 1e3))
        ckt.devices.append(Alien())
        with pytest.raises(CircuitError) as err:
            write_spice_deck(io.StringIO(), ckt)
        assert err.value.context["devices"] == ["rbad", "weird"]
        assert sorted(err.value.context["types"]) == \
            ["Alien", "_FaultyResistor"]
        assert err.value.error_code == "E_CIRCUIT"

    def test_node_case_collision_rejected(self):
        ckt = Circuit("case")
        ckt.resistor("r1", "Out", GROUND, 1e3)
        ckt.resistor("r2", "out", GROUND, 1e3)
        with pytest.raises(CircuitError, match="case-insensitively"):
            write_spice_deck(io.StringIO(), ckt)

    def test_print_requires_tran(self):
        ckt = Circuit("p")
        ckt.resistor("r1", "a", GROUND, 1e3)
        with pytest.raises(CircuitError, match="print_vectors"):
            write_spice_deck(io.StringIO(), ckt, print_vectors=["a"])


class TestSubckt:
    def _core(self):
        ckt = Circuit("divider")
        ckt.resistor("rtop", "vdd", "out", 1e3)
        ckt.resistor("rbot", "out", GROUND, 1e3)
        return ckt

    def test_round_trip(self):
        buf = io.StringIO()
        info = write_subckt(buf, self._core(), ports=["vdd", "out"])
        deck = parse_spice_deck(buf.getvalue())
        assert list(deck.subckts) == ["divider"]
        assert deck.subckt_ports["divider"] == ["vdd", "out"]
        sub = deck.subckts["divider"]
        assert {c.name for c in sub.devices} == \
            set(info.device_cards.values())
        assert not deck.devices  # nothing leaked outside the wrapper

    def test_mos_models_follow_ends(self):
        cell = CmosCellGenerator().build("INV")
        buf = io.StringIO()
        info = write_subckt(buf, cell.circuit,
                            ports=[cell.vdd_net, cell.input_nets["A"],
                                   cell.output_nets["Y"]],
                            name="invx1")
        text = buf.getvalue()
        assert text.index(".ENDS invx1") < text.index(".MODEL")
        assert info.models  # emitted and recorded
        no_models = io.StringIO()
        write_subckt(no_models, cell.circuit,
                     ports=[cell.vdd_net, cell.input_nets["A"],
                            cell.output_nets["Y"]],
                     name="invx1", include_models=False)
        assert ".MODEL" not in no_models.getvalue()

    def test_vsources_rejected(self):
        ckt = self._core()
        ckt.v("vdd", "vdd", DC(1.2))
        with pytest.raises(CircuitError, match="testbench"):
            write_subckt(io.StringIO(), ckt, ports=["out"])

    def test_unknown_port_rejected(self):
        with pytest.raises(CircuitError, match="not nodes"):
            write_subckt(io.StringIO(), self._core(),
                         ports=["vdd", "nosuch"])

    def test_empty_ports_rejected(self):
        with pytest.raises(CircuitError, match="at least one port"):
            write_subckt(io.StringIO(), self._core(), ports=[])


class TestParserStrictness:
    def test_unrecognised_card(self):
        with pytest.raises(CircuitError, match="unrecognised"):
            parse_spice_deck("X1 a b mysub\n.END\n")

    def test_unsupported_control_card(self):
        with pytest.raises(CircuitError, match="unsupported control"):
            parse_spice_deck(".AC DEC 10 1 1e9\n.END\n")

    def test_continuation_lines_fold(self):
        deck = parse_spice_deck(
            "R1_r a\n+ b 1000\nV1_v a 0 DC\n+ 1.0\n.END\n")
        assert deck.devices[0].nodes == ["a", "b"]
        assert deck.sources[0].values == [1.0]

    def test_orphan_continuation(self):
        with pytest.raises(CircuitError, match="nothing to continue"):
            parse_spice_deck("+ b 1000\n.END\n")

    def test_bad_number_is_loud(self):
        with pytest.raises(CircuitError, match="not a number"):
            parse_spice_deck("V1_v a 0 DC oops\n.END\n")
