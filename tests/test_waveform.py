"""Tests for Waveform storage and measurements."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.spice import Waveform


def ramp():
    return Waveform([0.0, 1.0, 2.0], [0.0, 1.0, 2.0])


def step():
    return Waveform([0.0, 1.0, 1.0 + 1e-9, 3.0], [0.0, 0.0, 1.0, 1.0])


class TestConstruction:
    def test_basic(self):
        w = ramp()
        assert len(w) == 3
        assert w.duration == pytest.approx(2.0)

    def test_length_mismatch(self):
        with pytest.raises(TraceError):
            Waveform([0.0, 1.0], [0.0])

    def test_empty(self):
        with pytest.raises(TraceError):
            Waveform([], [])

    def test_non_monotonic_time(self):
        with pytest.raises(TraceError):
            Waveform([0.0, 2.0, 1.0], [0.0, 0.0, 0.0])

    def test_two_dimensional_rejected(self):
        with pytest.raises(TraceError):
            Waveform([[0.0, 1.0]], [[0.0, 1.0]])

    def test_single_point(self):
        w = Waveform([0.0], [5.0])
        assert w.average() == 5.0
        assert w.integral() == 0.0
        assert w.rms() == 5.0


class TestInterpolation:
    def test_value_at_sample(self):
        assert ramp().value_at(1.0) == pytest.approx(1.0)

    def test_value_between_samples(self):
        assert ramp().value_at(0.5) == pytest.approx(0.5)

    def test_value_clamped(self):
        assert ramp().value_at(-1.0) == pytest.approx(0.0)
        assert ramp().value_at(99.0) == pytest.approx(2.0)

    def test_slice(self):
        s = ramp().slice(0.5, 2.0)
        assert len(s) == 2

    def test_slice_empty(self):
        with pytest.raises(TraceError):
            ramp().slice(5.0, 6.0)

    def test_slice_reversed(self):
        with pytest.raises(TraceError):
            ramp().slice(2.0, 1.0)


class TestCrossings:
    def test_rising_crossing(self):
        times = ramp().crossings(0.5, "rise")
        assert times == [pytest.approx(0.5)]

    def test_no_falling_crossing_on_ramp(self):
        assert ramp().crossings(0.5, "fall") == []

    def test_both(self):
        tri = Waveform([0, 1, 2], [0, 1, 0])
        assert len(tri.crossings(0.5, "both")) == 2

    def test_bad_edge(self):
        with pytest.raises(TraceError):
            ramp().crossings(0.5, "up")

    def test_first_crossing_after(self):
        tri = Waveform([0, 1, 2, 3, 4], [0, 1, 0, 1, 0])
        assert tri.first_crossing(0.5, "rise", after=1.5) == pytest.approx(2.5)

    def test_first_crossing_none(self):
        assert ramp().first_crossing(10.0) is None


class TestStatistics:
    def test_average_ramp(self):
        assert ramp().average() == pytest.approx(1.0)

    def test_average_window(self):
        assert ramp().average(1.0, 2.0) == pytest.approx(1.5)

    def test_integral(self):
        assert ramp().integral() == pytest.approx(2.0)

    def test_rms_constant(self):
        w = Waveform([0, 1, 2], [3.0, 3.0, 3.0])
        assert w.rms() == pytest.approx(3.0)

    def test_peak_trough_swing(self):
        tri = Waveform([0, 1, 2], [-1.0, 2.0, 0.5])
        assert tri.peak() == 2.0
        assert tri.trough() == -1.0
        assert tri.swing() == 3.0

    def test_settle_value(self):
        assert step().settle_value(0.25) == pytest.approx(1.0)

    def test_settle_fraction_validated(self):
        with pytest.raises(TraceError):
            step().settle_value(0.0)


class TestTransforms:
    def test_resample(self):
        r = ramp().resample([0.25, 0.75])
        assert list(r.v) == [pytest.approx(0.25), pytest.approx(0.75)]

    def test_quantize(self):
        w = Waveform([0, 1], [1.2e-6, 2.7e-6]).quantize(1e-6)
        assert list(w.v) == [pytest.approx(1e-6), pytest.approx(3e-6)]

    def test_quantize_kills_small_signals(self):
        # The 1 uA probe cannot see 100 nA wiggles on a flat trace.
        t = np.linspace(0, 1, 50)
        w = Waveform(t, 5e-6 + 1e-7 * np.sin(20 * t)).quantize(1e-6)
        assert np.allclose(w.v, 5e-6, rtol=0, atol=1e-12)
        assert w.swing() < 1e-12

    def test_quantize_step_positive(self):
        with pytest.raises(TraceError):
            ramp().quantize(0.0)

    def test_shift(self):
        assert ramp().shifted(1.0).t[0] == pytest.approx(1.0)

    def test_scale(self):
        assert ramp().scaled(2.0).v[-1] == pytest.approx(4.0)


class TestArithmetic:
    def test_add_scalar(self):
        assert (ramp() + 1.0).v[0] == pytest.approx(1.0)

    def test_sub_waveform_same_base(self):
        diff = ramp() - ramp()
        assert np.allclose(diff.v, 0.0)

    def test_mul(self):
        assert (ramp() * 3.0).v[-1] == pytest.approx(6.0)

    def test_add_resamples_other(self):
        other = Waveform([0.0, 2.0], [0.0, 2.0])
        total = ramp() + other
        assert len(total) == 3
        assert total.v[1] == pytest.approx(2.0)

    def test_sum(self):
        total = Waveform.sum([ramp(), ramp(), ramp()])
        assert total.v[-1] == pytest.approx(6.0)

    def test_sum_empty(self):
        with pytest.raises(TraceError):
            Waveform.sum([])

    def test_repr(self):
        assert "Waveform" in repr(ramp())
