"""Tests for the deterministic fault-injection harness.

Covers the fault kinds at DC, injector arming semantics, and the
acceptance-criterion scenario: a transient fault that forces a Newton
failure mid-run, which the step-halving ladder recovers from with the
output arrays still aligned to the base grid.
"""

import numpy as np
import pytest

from repro.errors import CircuitError, ConvergenceError
from repro.faultinject import FAULT_KINDS, Fault, FaultInjector, FaultyDevice
from repro.spice import Circuit, Pulse, run_transient, solve_dc
from repro.units import ns, ps


def divider():
    c = Circuit("div")
    c.v("vdd", "vdd", 1.2)
    c.resistor("r1", "vdd", "mid", 1e3)
    c.resistor("r2", "mid", "0", 1e3)
    return c


def rc_pulse_circuit():
    c = Circuit("rc")
    c.v("vin", "vin", Pulse(0.0, 1.2, ns(1.0), ps(50), ps(50), ns(10)))
    c.resistor("r1", "vin", "out", 1e3)
    c.capacitor("c1", "out", "0", 1e-12)
    return c


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(CircuitError):
            Fault("r1", "short-to-mars")

    def test_empty_window_rejected(self):
        with pytest.raises(CircuitError):
            Fault("r1", "nan", t_start=1.0, t_stop=1.0)

    def test_unknown_device_rejected_at_schedule_time(self):
        with pytest.raises(CircuitError):
            FaultInjector(divider(), [Fault("nope", "nan")])

    def test_window_is_half_open(self):
        fault = Fault("r1", "nan", t_start=1.0, t_stop=2.0)
        assert not fault.in_window(0.5)
        assert fault.in_window(1.0)
        assert fault.in_window(1.999)
        assert not fault.in_window(2.0)

    def test_trip_limit_expiry(self):
        c = divider()
        injector = FaultInjector(c, [Fault("r1", "nan", trip_limit=1)])
        fault = injector.faults[0]
        assert not fault.expired
        injector.set_time(0.0)          # trips -> 1, still active
        assert injector.faults_for("r1") == [fault]
        injector.set_time(0.0)          # trips -> 2, past the limit
        assert fault.expired
        assert injector.faults_for("r1") == []
        injector.reset()
        assert fault.trips == 0
        assert injector.faults_for("r1") == [fault]


class TestArming:
    def test_arm_swaps_and_disarm_restores(self):
        c = divider()
        original = c.device("r1")
        injector = FaultInjector(c, [Fault("r1", "open")])
        injector.arm()
        assert isinstance(c.device("r1"), FaultyDevice)
        injector.disarm()
        assert c.device("r1") is original
        # Clean solve after disarm: the divider is intact.
        op = solve_dc(c)
        assert op["mid"] == pytest.approx(0.6, abs=1e-6)

    def test_context_manager(self):
        c = divider()
        original = c.device("r2")
        with FaultInjector(c, [Fault("r2", "open")]) as injector:
            assert injector._armed
            assert isinstance(c.device("r2"), FaultyDevice)
        assert c.device("r2") is original

    def test_arm_is_idempotent(self):
        c = divider()
        injector = FaultInjector(c, [Fault("r1", "open")])
        injector.arm()
        proxy = c.device("r1")
        injector.arm()
        assert c.device("r1") is proxy
        injector.disarm()


class TestFaultKindsAtDC:
    def test_open_fault_floats_the_node_high(self):
        c = divider()
        with FaultInjector(c, [Fault("r2", "open")]):
            op = solve_dc(c)
        # With r2 open, no current flows: mid sits at vdd.
        assert op["mid"] == pytest.approx(1.2, abs=1e-6)

    def test_perturb_fault_shifts_the_solution(self):
        c = divider()
        clean = solve_dc(c)["mid"]
        with FaultInjector(c, [Fault("r2", "perturb", magnitude=1e-4)]):
            faulted = solve_dc(c)["mid"]
        assert faulted != pytest.approx(clean, abs=1e-9)
        assert faulted == pytest.approx(clean, abs=0.3)

    @pytest.mark.parametrize("kind", ["nan", "inf", "oscillate"])
    def test_unsolvable_kinds_raise_with_diagnostics(self, kind):
        c = divider()
        with FaultInjector(c, [Fault("r1", kind)]):
            with pytest.raises(ConvergenceError) as excinfo:
                solve_dc(c)
        diag = excinfo.value.diagnostics
        assert diag is not None
        families = {s.split(":")[0] for s in diag.strategies()}
        # The whole ladder ran before giving up.
        assert {"newton", "gmin", "source-step", "ptran"} <= families

    def test_all_kinds_are_exercised(self):
        assert set(FAULT_KINDS) == {"nan", "inf", "open", "perturb",
                                    "oscillate"}


class TestTransientRecovery:
    """Acceptance criterion: a mid-run fault produces a Newton failure,
    the step-halving retry cures it (trip_limit models a step-size-curable
    pathology), and the result stays aligned with the clean run."""

    def run_pair(self):
        clean = run_transient(rc_pulse_circuit(), tstop=ns(4), dt=ps(20))
        c = rc_pulse_circuit()
        injector = FaultInjector(c, [
            Fault("r1", "oscillate", t_start=ns(2.0), t_stop=ns(2.1),
                  magnitude=1e-3, trip_limit=1),
        ])
        with injector:
            faulted = run_transient(c, tstop=ns(4), dt=ps(20),
                                    on_step=injector.set_time)
        return clean, faulted

    def test_step_halving_recovers(self):
        clean, faulted = self.run_pair()
        stats = faulted.stats
        assert stats.newton_failures >= 1
        assert stats.retried_intervals >= 1
        assert stats.halvings >= 1
        assert stats.max_subdivision_depth >= 2

    def test_output_stays_aligned_to_base_grid(self):
        clean, faulted = self.run_pair()
        np.testing.assert_array_equal(clean.time, faulted.time)
        dev = np.max(np.abs(clean.wave("out").v - faulted.wave("out").v))
        # One faulted attempt, recovered at half step: tiny deviation.
        assert dev < 1e-3

    def test_clean_run_reports_no_failures(self):
        clean, _ = self.run_pair()
        assert clean.stats.newton_failures == 0
        assert clean.stats.halvings == 0
        assert clean.stats.steps_taken >= clean.stats.grid_points - 1

    def test_persistent_fault_exhausts_the_ladder(self):
        c = rc_pulse_circuit()
        injector = FaultInjector(c, [
            Fault("r1", "nan", t_start=ns(2.0), t_stop=ns(4.1)),
        ])
        with injector:
            with pytest.raises(ConvergenceError) as excinfo:
                run_transient(c, tstop=ns(4), dt=ps(20),
                              max_step_halvings=3,
                              on_step=injector.set_time)
        assert "halvings" in str(excinfo.value)

    def test_limited_halving_budget_is_respected(self):
        c = rc_pulse_circuit()
        injector = FaultInjector(c, [
            Fault("r1", "oscillate", t_start=ns(2.0), t_stop=ns(2.1),
                  magnitude=1e-3, trip_limit=1),
        ])
        with injector:
            res = run_transient(c, tstop=ns(4), dt=ps(20),
                                max_step_halvings=8,
                                on_step=injector.set_time)
        # dt/2^8 is far below what the trip-limited fault needs.
        assert res.stats.max_subdivision_depth <= 8 + 1
