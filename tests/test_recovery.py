"""Tests for the DC convergence-recovery ladder and its diagnostics."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.spice import Circuit, RecoveryPolicy, solve_dc
from repro.spice.dc import System, _initial_guess
from repro.spice.devices import Device


class TunnelDiode(Device):
    """An N-shaped (negative-differential-resistance) two-terminal device.

    i(v) = gain * (v^3 - 1.5 v^2 + 0.56 v): the classic tunnel-diode
    characteristic whose NDR region defeats damped Newton started from a
    midpoint guess.
    """

    def __init__(self, name, a, b, gain=1.0):
        super().__init__(name, (a, b))
        self.gain = gain

    def currents(self, volts):
        v = volts[0] - volts[1]
        i = self.gain * (v ** 3 - 1.5 * v ** 2 + 0.56 * v)
        return [i, -i]


def tunnel_circuit(gain, r, vdd):
    c = Circuit("td")
    c.v("vdd", "vdd", vdd)
    c.resistor("rl", "vdd", "n1", r)
    c.add(TunnelDiode("td1", "n1", "0", gain=gain))
    return c


class TestSourceStepping:
    """gain=1, r=50, vdd=0.56: plain Newton + the gmin ladder limit-cycle
    in the NDR region, but the low branch is continuous from 0 V so
    source stepping tracks it to the solution."""

    def build(self):
        return tunnel_circuit(gain=1.0, r=50.0, vdd=0.56)

    def test_plain_newton_and_gmin_fail(self):
        policy = RecoveryPolicy(source_stepping=False,
                                pseudo_transient=False)
        with pytest.raises(ConvergenceError):
            solve_dc(self.build(), policy=policy)

    def test_source_stepping_solves(self):
        op = solve_dc(self.build())
        assert op.diagnostics is not None
        assert op.diagnostics.converged_by.startswith("source-step")
        # KCL sanity: resistor current equals device current at the node.
        v = op["n1"]
        i_r = (0.56 - v) / 50.0
        i_d = v ** 3 - 1.5 * v ** 2 + 0.56 * v
        assert i_r == pytest.approx(i_d, abs=1e-9)

    def test_failed_strategies_are_recorded(self):
        op = solve_dc(self.build())
        strategies = op.diagnostics.strategies()
        assert "newton" in strategies
        assert any(s.startswith("gmin:") for s in strategies)
        newton_attempt = op.diagnostics.attempts[0]
        assert newton_attempt.strategy == "newton"
        assert not newton_attempt.converged
        assert newton_attempt.iterations > 0


class TestPseudoTransient:
    """gain=1, r=10, vdd=1.2: the traced branch folds before full bias,
    so source stepping stalls at the fold and the dynamic gmin ramp
    (pseudo-transient) must carry the solve through."""

    def build(self):
        return tunnel_circuit(gain=1.0, r=10.0, vdd=1.2)

    def test_pseudo_transient_solves(self):
        op = solve_dc(self.build())
        assert op.diagnostics.converged_by == "ptran:final"
        v = op["n1"]
        i_r = (1.2 - v) / 10.0
        i_d = v ** 3 - 1.5 * v ** 2 + 0.56 * v
        assert i_r == pytest.approx(i_d, abs=1e-9)

    def test_disabled_ladder_fails_with_diagnostics(self):
        policy = RecoveryPolicy(source_stepping=False,
                                pseudo_transient=False)
        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc(self.build(), policy=policy)
        diag = excinfo.value.diagnostics
        assert diag is not None
        assert not any(a.converged and a.strategy == "newton"
                       for a in diag.attempts)
        families = {s.split(":")[0] for s in diag.strategies()}
        assert families == {"newton", "gmin"}


class TestDiagnosticsOnEasyCircuits:
    def test_plain_newton_records_single_attempt(self):
        c = Circuit()
        c.v("vdd", "vdd", 1.2)
        c.resistor("r1", "vdd", "mid", 1e3)
        c.resistor("r2", "mid", "0", 1e3)
        op = solve_dc(c)
        assert op.diagnostics.converged_by == "newton"
        assert len(op.diagnostics.attempts) == 1
        assert op.diagnostics.attempts[0].converged
        assert op.diagnostics.singular_jacobian_events == 0

    def test_summary_renders(self):
        c = Circuit()
        c.v("vdd", "vdd", 1.2)
        c.resistor("r1", "vdd", "0", 1e3)
        op = solve_dc(c)
        text = op.diagnostics.summary()
        assert "newton" in text
        assert "solved by" in text


class TestSingularJacobianSurfacing:
    def test_lstsq_fallback_is_counted(self):
        # A node reached only through capacitors has an all-zero KCL row
        # at DC: the Jacobian is singular on every iteration and the old
        # code silently fell back to lstsq.
        c = Circuit()
        c.v("vdd", "vdd", 1.2)
        c.capacitor("c1", "vdd", "x", 1e-12)
        c.capacitor("c2", "x", "0", 1e-12)
        system = System(c)
        op = solve_dc(c, system=system)
        assert op.diagnostics.singular_jacobian_events >= 1
        assert system.singular_jacobian_events >= 1
        attempt = op.diagnostics.attempts[-1]
        assert attempt.singular_jacobian_events >= 1


class TestInitialGuess:
    def test_positive_rails_keep_midpoint(self):
        c = Circuit()
        c.v("vdd", "vdd", 1.2)
        c.resistor("r1", "vdd", "mid", 1e3)
        c.resistor("r2", "mid", "0", 1e3)
        system = System(c)
        guess = _initial_guess(system, c.fixed_nodes())
        assert guess[0] == pytest.approx(0.6)

    def test_negative_rails_straddle_zero(self):
        # Split supplies: the old max(fixed)/2 guess sat at +0.6 V, far
        # from the natural centre of a +/-1.2 V circuit.
        c = Circuit()
        c.v("vp", "vp", 1.2)
        c.v("vn", "vn", -1.2)
        c.resistor("r1", "vp", "mid", 1e3)
        c.resistor("r2", "mid", "vn", 1e3)
        system = System(c)
        guess = _initial_guess(system, c.fixed_nodes())
        assert guess[0] == pytest.approx(0.0)
        op = solve_dc(c)
        assert op["mid"] == pytest.approx(0.0, abs=1e-6)

    def test_negative_only_rail(self):
        c = Circuit()
        c.v("vn", "vn", -2.0)
        c.resistor("r1", "vn", "mid", 1e3)
        c.resistor("r2", "mid", "0", 1e3)
        system = System(c)
        guess = _initial_guess(system, c.fixed_nodes())
        assert guess[0] == pytest.approx(-1.0)
        op = solve_dc(c)
        assert op["mid"] == pytest.approx(-1.0, abs=1e-6)


class TestNonFiniteFailFast:
    def test_nan_residual_raises_quickly(self):
        class NaNDevice(Device):
            def currents(self, volts):
                return [float("nan"), float("nan")]

        c = Circuit()
        c.v("vdd", "vdd", 1.2)
        c.add(NaNDevice("bad", ("vdd", "mid")))
        c.resistor("r1", "mid", "0", 1e3)
        system = System(c)
        with pytest.raises(ConvergenceError) as excinfo:
            system.newton(c.fixed_nodes(), np.zeros(system.n), gmin=0.0)
        # Fail-fast: one iteration, not the full maxiter budget.
        assert excinfo.value.iterations == 1
