"""Tests for BDD-based formal equivalence checking."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import build_cmos_library, build_mcml_library
from repro.errors import NetlistError
from repro.netlist import (
    GateNetlist,
    check_equivalence,
    netlist_to_bdds,
    verify_against_tables,
)
from repro.synth import map_lut, sbox_truth_tables


@pytest.fixture(scope="module")
def cmos():
    return build_cmos_library()


def and_netlist(lib, via_nands=False):
    nl = GateNetlist("and_impl", lib)
    nl.add_primary_input("a")
    nl.add_primary_input("b")
    if via_nands:
        nl.add_instance("NAND2", {"A": "a", "B": "b", "Y": "n1"})
        nl.add_instance("INV", {"A": "n1", "Y": "y"})
    else:
        nl.add_instance("AND2", {"A": "a", "B": "b", "Y": "y"})
    nl.add_primary_output("y")
    return nl


class TestNetlistToBdds:
    def test_simple_gate(self, cmos):
        nl = and_netlist(cmos)
        manager, values = netlist_to_bdds(nl)
        assert values["y"].truth_table(["a", "b"]) == [0, 0, 0, 1]

    def test_multi_output_cells(self, cmos):
        nl = GateNetlist("fa", cmos)
        for pin in ("a", "b", "ci"):
            nl.add_primary_input(pin)
        nl.add_instance("FA", {"A": "a", "B": "b", "CI": "ci",
                               "S": "s", "CO": "co"})
        _, values = netlist_to_bdds(nl)
        assert values["s"].truth_table(["a", "b", "ci"]) == \
            [0, 1, 1, 0, 1, 0, 0, 1]
        assert values["co"].truth_table(["a", "b", "ci"]) == \
            [0, 0, 0, 1, 0, 1, 1, 1]

    def test_sequential_rejected(self, cmos):
        nl = GateNetlist("ff", cmos)
        nl.add_primary_input("d")
        nl.add_primary_input("ck")
        nl.add_instance("DFF", {"D": "d", "CK": "ck", "Q": "q"})
        with pytest.raises(NetlistError):
            netlist_to_bdds(nl)


class TestEquivalence:
    def test_equivalent_implementations(self, cmos):
        direct = and_netlist(cmos, via_nands=False)
        nands = and_netlist(cmos, via_nands=True)
        assert check_equivalence(direct, nands, ["y"], ["y"]) is None

    def test_counterexample_found(self, cmos):
        and_impl = and_netlist(cmos)
        or_impl = GateNetlist("or_impl", cmos)
        or_impl.add_primary_input("a")
        or_impl.add_primary_input("b")
        or_impl.add_instance("OR2", {"A": "a", "B": "b", "Y": "y"})
        or_impl.add_primary_output("y")
        cex = check_equivalence(and_impl, or_impl, ["y"], ["y"])
        assert cex is not None
        # AND != OR exactly when inputs differ.
        assert cex["a"] != cex["b"]

    def test_cross_library_equivalence(self, cmos):
        """CMOS and differential mappings of the same table are formally
        identical — rail swaps and inverters cancel out."""
        mcml = build_mcml_library()
        table = {"y": [0, 1, 1, 1, 1, 0, 0, 1]}
        names = ["a", "b", "c"]
        block_c = map_lut(cmos, table, names, share_outputs=False)
        block_m = map_lut(mcml, table, names)
        cex = check_equivalence(block_c.netlist, block_m.netlist,
                                [block_c.outputs["y"]],
                                [block_m.outputs["y"]],
                                input_order=names)
        assert cex is None

    def test_output_list_mismatch(self, cmos):
        nl = and_netlist(cmos)
        with pytest.raises(NetlistError):
            check_equivalence(nl, nl, ["y"], [])


class TestVerifyAgainstTables:
    def test_mapped_sbox_formally_verified(self, cmos):
        """The headline: the whole mapped S-box proven correct without
        simulating a single pattern."""
        tables = sbox_truth_tables()
        names = [f"x{i}" for i in range(8)]
        block = map_lut(cmos, tables, names, share_outputs=False)
        cex = verify_against_tables(block.netlist, block.outputs, tables,
                                    names)
        assert cex is None

    def test_mcml_sbox_formally_verified(self):
        mcml = build_mcml_library()
        tables = sbox_truth_tables()
        names = [f"x{i}" for i in range(8)]
        block = map_lut(mcml, tables, names)
        assert verify_against_tables(block.netlist, block.outputs,
                                     tables, names) is None

    def test_broken_netlist_yields_counterexample(self, cmos):
        tables = {"y": [0, 0, 0, 1]}
        block = map_lut(cmos, tables, ["a", "b"])
        wrong = {"y": [0, 0, 1, 1]}  # actually just 'a'
        cex = verify_against_tables(block.netlist, block.outputs, wrong,
                                    ["a", "b"])
        assert cex is not None
        assert cex == {"a": True, "b": False}

    @given(st.lists(st.integers(0, 1), min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_every_mapping_formally_correct(self, bits):
        lib = build_cmos_library()
        names = ["a", "b", "c", "d"]
        block = map_lut(lib, {"y": bits}, names)
        assert verify_against_tables(block.netlist, block.outputs,
                                     {"y": bits}, names) is None
