"""Tests for the ROBDD engine, including hypothesis property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDD, Manager, ONE_INDEX, ZERO_INDEX
from repro.errors import BDDError


def mgr3():
    return Manager(["a", "b", "c"])


class TestBasics:
    def test_terminals(self):
        m = Manager()
        assert m.true.is_true and m.false.is_false
        assert m.constant(True).index == ONE_INDEX
        assert m.constant(False).index == ZERO_INDEX

    def test_var_projection(self):
        m = mgr3()
        a = m.var("a")
        assert a.evaluate({"a": True}) is True
        assert a.evaluate({"a": False}) is False

    def test_unknown_variable(self):
        with pytest.raises(BDDError):
            mgr3().var("z")

    def test_duplicate_variable(self):
        m = mgr3()
        with pytest.raises(BDDError):
            m.add_variable("a")

    def test_terminal_has_no_var(self):
        m = mgr3()
        with pytest.raises(BDDError):
            _ = m.true.var

    def test_cofactors(self):
        m = mgr3()
        a, b = m.var("a"), m.var("b")
        f = a & b
        assert f.var == "a"
        assert f.low.is_false
        assert f.high.equiv(b)


class TestCanonicity:
    def test_equivalent_expressions_share_index(self):
        m = mgr3()
        a, b = m.var("a"), m.var("b")
        f = ~(a & b)
        g = ~a | ~b
        assert f.index == g.index

    def test_xor_forms(self):
        m = mgr3()
        a, b = m.var("a"), m.var("b")
        assert (a ^ b).index == ((a & ~b) | (~a & b)).index

    def test_tautology_collapses(self):
        m = mgr3()
        a = m.var("a")
        assert (a | ~a).is_true
        assert (a & ~a).is_false

    def test_double_negation(self):
        m = mgr3()
        a = m.var("a")
        assert (~~a).index == a.index

    def test_constant_absorption(self):
        m = mgr3()
        a = m.var("a")
        assert (a & True).index == a.index
        assert (a | False).index == a.index
        assert (a & False).is_false
        assert (a | True).is_true

    def test_cross_manager_rejected(self):
        a = mgr3().var("a")
        b = mgr3().var("b")
        with pytest.raises(BDDError):
            _ = a & b


class TestIte:
    def test_mux_semantics(self):
        m = mgr3()
        a, b, c = m.var("a"), m.var("b"), m.var("c")
        f = a.ite(b, c)
        for va in (False, True):
            for vb in (False, True):
                for vc in (False, True):
                    env = {"a": va, "b": vb, "c": vc}
                    assert f.evaluate(env) == (vb if va else vc)

    def test_ite_with_constants(self):
        m = mgr3()
        a = m.var("a")
        assert a.ite(True, False).index == a.index
        assert a.ite(False, True).index == (~a).index


class TestQueries:
    def test_sat_count_and(self):
        m = mgr3()
        f = m.var("a") & m.var("b")
        assert f.sat_count() == 2  # c free

    def test_sat_count_xor3(self):
        m = mgr3()
        f = m.var("a") ^ m.var("b") ^ m.var("c")
        assert f.sat_count() == 4

    def test_sat_count_terminals(self):
        m = mgr3()
        assert m.true.sat_count() == 8
        assert m.false.sat_count() == 0

    def test_sat_count_with_level_skip(self):
        m = mgr3()
        assert m.var("b").sat_count() == 4

    def test_support(self):
        m = mgr3()
        f = m.var("a") & m.var("c")
        assert f.support() == {"a", "c"}

    def test_node_count(self):
        m = mgr3()
        assert m.var("a").node_count() == 1
        assert (m.var("a") & m.var("b")).node_count() == 2

    def test_missing_assignment(self):
        m = mgr3()
        with pytest.raises(BDDError):
            (m.var("a") & m.var("b")).evaluate({"a": True})

    def test_truth_table(self):
        m = mgr3()
        f = m.var("a") | m.var("b")
        assert (f.truth_table(["a", "b"])) == [0, 1, 1, 1]


class TestTruthTableConstruction:
    def test_roundtrip(self):
        m = Manager(["x0", "x1", "x2"])
        bits = [0, 1, 1, 0, 1, 0, 0, 1]  # parity
        f = m.from_truth_table(bits, ["x0", "x1", "x2"])
        assert f.truth_table(["x0", "x1", "x2"]) == bits

    def test_size_mismatch(self):
        with pytest.raises(BDDError):
            Manager().from_truth_table([0, 1], ["a", "b"])

    def test_ordering_enforced(self):
        m = Manager(["a", "b"])
        with pytest.raises(BDDError):
            m.from_truth_table([0, 0, 0, 1], ["b", "a"])

    def test_constant_tables(self):
        m = Manager()
        assert m.from_truth_table([1, 1], ["v"]).is_true
        assert m.from_truth_table([0, 0, 0, 0], ["v", "w"]).is_false

    def test_reachable_topological(self):
        m = Manager(["a", "b", "c"])
        f = (m.var("a") & m.var("b")) | m.var("c")
        order = m.reachable([f.index])
        seen = set()
        for idx in order:
            _, low, high = m.node(idx)
            for child in (low, high):
                if not m.is_terminal(child):
                    assert child in seen
            seen.add(idx)


@st.composite
def truth_tables(draw, n_vars=4):
    bits = draw(st.lists(st.integers(0, 1), min_size=1 << n_vars,
                         max_size=1 << n_vars))
    return bits


class TestProperties:
    @given(truth_tables())
    @settings(max_examples=40, deadline=None)
    def test_from_truth_table_is_exact(self, bits):
        names = [f"v{i}" for i in range(4)]
        m = Manager(names)
        f = m.from_truth_table(bits, names)
        assert f.truth_table(names) == bits

    @given(truth_tables())
    @settings(max_examples=40, deadline=None)
    def test_sat_count_matches_table(self, bits):
        names = [f"v{i}" for i in range(4)]
        m = Manager(names)
        f = m.from_truth_table(bits, names)
        assert f.sat_count() == sum(bits)

    @given(truth_tables(), truth_tables())
    @settings(max_examples=30, deadline=None)
    def test_xor_pointwise(self, bits_f, bits_g):
        names = [f"v{i}" for i in range(4)]
        m = Manager(names)
        f = m.from_truth_table(bits_f, names)
        g = m.from_truth_table(bits_g, names)
        h = f ^ g
        expected = [a ^ b for a, b in zip(bits_f, bits_g)]
        assert h.truth_table(names) == expected

    @given(truth_tables())
    @settings(max_examples=30, deadline=None)
    def test_negation_is_complement(self, bits):
        names = [f"v{i}" for i in range(4)]
        m = Manager(names)
        f = m.from_truth_table(bits, names)
        assert (~f).truth_table(names) == [1 - b for b in bits]

    @given(truth_tables())
    @settings(max_examples=30, deadline=None)
    def test_canonical_reconstruction(self, bits):
        """Two constructions of the same function share one node."""
        names = [f"v{i}" for i in range(4)]
        m = Manager(names)
        f = m.from_truth_table(bits, names)
        g = m.false
        for i, bit in enumerate(bits):
            if not bit:
                continue
            term = m.true
            for k, name in enumerate(names):
                v = m.var(name)
                term = term & (v if (i >> (3 - k)) & 1 else ~v)
            g = g | term
        assert f.index == g.index
