"""Tests for LUT mapping, fanout buffering, and sleep insertion."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.aes import SBOX
from repro.cells import build_cmos_library, build_mcml_library, \
    build_pg_mcml_library
from repro.errors import SynthesisError
from repro.netlist import GateNetlist, LogicSimulator
from repro.synth import (
    build_sbox_ise,
    insert_sleep_tree,
    map_lut,
    report_block,
    sbox_truth_tables,
    simulate_sbox_word,
)
from repro.synth.buffering import buffer_high_fanout


@pytest.fixture(scope="module")
def cmos():
    return build_cmos_library()


@pytest.fixture(scope="module")
def mcml():
    return build_mcml_library()


@pytest.fixture(scope="module")
def pg():
    return build_pg_mcml_library()


def check_block(block, tables, input_names):
    """Exhaustively verify a mapped block against its truth tables."""
    sim = LogicSimulator(block.netlist)
    n = len(input_names)
    for code in range(1 << n):
        env = {name: bool((code >> (n - 1 - k)) & 1)
               for k, name in enumerate(input_names)}
        sim.initialize(env)
        for out, bits in tables.items():
            assert sim.values[block.outputs[out]] == bool(bits[code]), \
                (out, code)


class TestMapLutSmall:
    @pytest.mark.parametrize("bits", [
        [0, 0, 0, 1], [0, 1, 1, 0], [1, 0, 0, 1], [0, 1, 1, 1],
        [1, 1, 1, 0], [1, 0, 1, 0], [0, 1, 0, 1],
    ])
    def test_two_var_functions_cmos(self, cmos, bits):
        block = map_lut(cmos, {"y": bits}, ["a", "b"])
        check_block(block, {"y": bits}, ["a", "b"])

    @pytest.mark.parametrize("bits", [
        [0, 0, 0, 1], [1, 0, 0, 1], [1, 0, 1, 0],
    ])
    def test_two_var_functions_mcml(self, mcml, bits):
        block = map_lut(mcml, {"y": bits}, ["a", "b"])
        check_block(block, {"y": bits}, ["a", "b"])

    def test_constant_outputs(self, cmos):
        block = map_lut(cmos, {"one": [1, 1], "zero": [0, 0]}, ["a"])
        check_block(block, {"one": [1, 1], "zero": [0, 0]}, ["a"])

    def test_constant_outputs_mcml_are_free_ties(self, mcml):
        block = map_lut(mcml, {"one": [1, 1]}, ["a"])
        check_block(block, {"one": [1, 1]}, ["a"])
        assert block.netlist.total_cells() == 0  # tie = rail pair

    def test_constant_without_tie_cells_fails(self):
        bare = build_mcml_library(include_support=False)
        with pytest.raises(SynthesisError):
            map_lut(bare, {"one": [1, 1]}, ["a"])

    def test_table_size_mismatch(self, cmos):
        with pytest.raises(SynthesisError):
            map_lut(cmos, {"y": [0, 1]}, ["a", "b"])

    def test_inverter_cost_asymmetry(self, cmos, mcml):
        bits = [1, 0]  # y = NOT a
        cmos_block = map_lut(cmos, {"y": bits}, ["a"])
        mcml_block = map_lut(mcml, {"y": bits}, ["a"])
        assert cmos_block.inverters == 1
        assert mcml_block.inverters == 0
        assert mcml_block.rail_swaps == 1
        # The rail swap weighs nothing.
        assert mcml_block.netlist.total_cells() == 0

    def test_shared_netlist_embedding(self, cmos):
        nl = GateNetlist("host", cmos)
        nl.add_primary_input("x")
        nl.add_primary_input("y")
        block = map_lut(cmos, {"z": [0, 1, 1, 0]}, ["a", "b"], netlist=nl,
                        input_nets={"a": "x", "b": "y"})
        assert block.netlist is nl

    @given(st.lists(st.integers(0, 1), min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_random_4var_cmos(self, bits):
        lib = build_cmos_library()
        names = ["a", "b", "c", "d"]
        block = map_lut(lib, {"y": bits}, names)
        check_block(block, {"y": bits}, names)

    @given(st.lists(st.integers(0, 1), min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_random_4var_pgmcml(self, bits):
        lib = build_pg_mcml_library()
        names = ["a", "b", "c", "d"]
        block = map_lut(lib, {"y": bits}, names)
        check_block(block, {"y": bits}, names)

    @given(st.lists(st.integers(0, 1), min_size=8, max_size=8),
           st.lists(st.integers(0, 1), min_size=8, max_size=8))
    @settings(max_examples=15, deadline=None)
    def test_multi_output_sharing(self, bits_a, bits_b):
        lib = build_cmos_library()
        names = ["a", "b", "c"]
        tables = {"y0": bits_a, "y1": bits_b}
        block = map_lut(lib, tables, names, share_outputs=True)
        check_block(block, tables, names)


class TestSboxMapping:
    def test_sbox_logic_exact_all_styles(self, cmos, mcml, pg):
        tables = sbox_truth_tables()
        names = [f"x{i}" for i in range(8)]
        for lib, share in ((cmos, False), (mcml, True), (pg, True)):
            block = map_lut(lib, tables, names, share_outputs=share)
            sim = LogicSimulator(block.netlist)
            for val in (0x00, 0x01, 0x35, 0x7F, 0x80, 0xAA, 0xC3, 0xFF):
                sim.initialize({f"x{i}": bool((val >> (7 - i)) & 1)
                                for i in range(8)})
                got = sum(int(sim.values[block.outputs[f"y{b}"]]) << (7 - b)
                          for b in range(8))
                assert got == SBOX[val], (lib.style, val)

    def test_sharing_reduces_cells(self, mcml):
        tables = sbox_truth_tables()
        names = [f"x{i}" for i in range(8)]
        shared = map_lut(mcml, tables, names, share_outputs=True)
        split = map_lut(mcml, tables, names, share_outputs=False)
        assert shared.netlist.total_cells() < split.netlist.total_cells()


class TestBuffering:
    def test_caps_fanout(self, cmos):
        nl = GateNetlist("fan", cmos)
        nl.add_primary_input("a")
        for i in range(40):
            nl.add_instance("INV", {"A": "a", "Y": f"y{i}"})
        inserted = buffer_high_fanout(nl, max_fanout=6)
        assert inserted > 0
        for net in nl.nets.values():
            assert net.fanout <= 6

    def test_preserves_logic(self, cmos):
        nl = GateNetlist("fan", cmos)
        nl.add_primary_input("a")
        for i in range(20):
            nl.add_instance("INV", {"A": "a", "Y": f"y{i}"})
        buffer_high_fanout(nl, max_fanout=4)
        sim = LogicSimulator(nl)
        sim.initialize({"a": True})
        assert all(sim.values[f"y{i}"] is False for i in range(20))

    def test_no_op_below_limit(self, cmos):
        nl = GateNetlist("small", cmos)
        nl.add_primary_input("a")
        nl.add_instance("INV", {"A": "a", "Y": "y"})
        assert buffer_high_fanout(nl, max_fanout=8) == 0

    def test_limit_validated(self, cmos):
        nl = GateNetlist("x", cmos)
        with pytest.raises(SynthesisError):
            buffer_high_fanout(nl, max_fanout=1)


class TestSleepTree:
    def build_pg_block(self, pg, n=40):
        nl = GateNetlist("blk", pg)
        nl.add_primary_input("a")
        prev = "a"
        for i in range(n):
            nl.add_instance("BUF", {"A": prev, "Y": f"n{i}"}, name=f"u{i}")
            prev = f"n{i}"
        return nl

    def test_every_gated_cell_assigned(self, pg):
        nl = self.build_pg_block(pg)
        tree = insert_sleep_tree(nl)
        assert tree.n_gated_cells == 40
        assert set(tree.leaf_of) == {f"u{i}" for i in range(40)}

    def test_buffer_count_scales(self, pg):
        small = insert_sleep_tree(self.build_pg_block(pg, 20))
        large = insert_sleep_tree(self.build_pg_block(pg, 200))
        assert large.n_buffers > small.n_buffers

    def test_buffers_are_netlist_instances(self, pg):
        nl = self.build_pg_block(pg)
        before = nl.total_cells()
        tree = insert_sleep_tree(nl)
        assert nl.total_cells() == before + tree.n_buffers

    def test_insertion_delay_order_1ns(self, pg):
        nl = self.build_pg_block(pg, 200)
        tree = insert_sleep_tree(nl)
        assert 0.2e-9 < tree.insertion_delay < 2.0e-9

    def test_requires_pgmcml(self, cmos):
        nl = GateNetlist("blk", cmos)
        nl.add_primary_input("a")
        nl.add_instance("INV", {"A": "a", "Y": "y"})
        with pytest.raises(SynthesisError):
            insert_sleep_tree(nl)

    def test_requires_gated_cells(self, pg):
        nl = GateNetlist("empty", pg)
        nl.add_primary_input("a")
        nl.add_instance("SLEEPBUF", {"A": "a", "Y": "y"})
        with pytest.raises(SynthesisError):
            insert_sleep_tree(nl)


class TestSboxISE:
    def test_word_datapath(self, pg):
        ise = build_sbox_ise(pg)
        sim = LogicSimulator(ise.netlist)
        for word in (0x00000000, 0x0123ABCD, 0xFFFFFFFF):
            expected = int.from_bytes(
                bytes(SBOX[b] for b in word.to_bytes(4, "big")), "big")
            assert simulate_sbox_word(ise, sim, word) == expected

    def test_cell_count_ordering_matches_table3(self, cmos, mcml, pg):
        counts = {lib.style: build_sbox_ise(lib).cells()
                  for lib in (cmos, mcml, pg)}
        assert counts["cmos"] > counts["pgmcml"] > counts["mcml"]

    def test_cmos_mcml_cell_ratio(self, cmos, mcml):
        ratio = build_sbox_ise(cmos).cells() / build_sbox_ise(mcml).cells()
        assert ratio == pytest.approx(3865 / 2911, abs=0.25)

    def test_sleep_tree_only_for_pg(self, cmos, pg):
        assert build_sbox_ise(cmos).sleep_tree is None
        assert build_sbox_ise(pg).sleep_tree is not None

    def test_converters_only_differential(self, cmos, mcml):
        hist_cmos = build_sbox_ise(cmos).netlist.cell_histogram()
        hist_mcml = build_sbox_ise(mcml).netlist.cell_histogram()
        assert "DIFF2SINGLE" not in hist_cmos
        assert hist_mcml["DIFF2SINGLE"] == 32
        assert hist_mcml["SINGLE2DIFF"] == 32

    def test_block_report(self, mcml):
        report = report_block(build_sbox_ise(mcml).netlist)
        assert report.style == "mcml"
        assert 0.3 < report.delay_ns < 2.0
        assert report.core_area_um2 > report.area_um2

    def test_needs_at_least_one_sbox(self, cmos):
        with pytest.raises(SynthesisError):
            build_sbox_ise(cmos, n_sboxes=0)
