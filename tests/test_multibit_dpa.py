"""Tests for the multi-bit (generalised) DPA — the title attack."""

import numpy as np
import pytest

from repro.aes import SBOX
from repro.cells import build_cmos_library, build_pg_mcml_library
from repro.errors import AttackError
from repro.power import standardize
from repro.sca import AttackCampaign, dpa_attack, multibit_dpa_attack


def charge_per_one_traces(key=0x42, n=300, seed=0):
    """Synthetic charge-per-one target: sample 6 carries HW plus noise."""
    rng = np.random.default_rng(seed)
    pts = rng.integers(0, 256, size=n)
    traces = rng.normal(0.0, 0.5, size=(n, 12))
    hw = np.array([bin(SBOX[p ^ key]).count("1") for p in pts])
    traces[:, 6] += 0.5 * hw
    return traces, pts.tolist()


class TestMultibitDpa:
    def test_recovers_key_on_synthetic_target(self):
        traces, pts = charge_per_one_traces()
        result = multibit_dpa_attack(traces, pts, true_key=0x42)
        assert result.succeeded

    def test_stronger_than_single_bit(self):
        traces, pts = charge_per_one_traces(n=180, seed=3)
        multi = multibit_dpa_attack(traces, pts, true_key=0x42)
        single = dpa_attack(traces, pts, target_bit=0, true_key=0x42)
        assert multi.rank_of_true_key() <= single.rank_of_true_key()

    def test_target_bit_marker(self):
        traces, pts = charge_per_one_traces(n=64)
        result = multibit_dpa_attack(traces, pts)
        assert result.target_bit == -1

    def test_count_mismatch(self):
        with pytest.raises(AttackError):
            multibit_dpa_attack(np.ones((4, 3)), [1, 2])


class TestCampaignDpa:
    def test_cmos_breaks_under_dpa(self):
        campaign = AttackCampaign(build_cmos_library(), 0x2B)
        result = campaign.run(with_dpa=True)
        assert result.dpa.succeeded

    def test_pg_resists_dpa(self):
        campaign = AttackCampaign(build_pg_mcml_library(), 0x2B)
        result = campaign.run(with_dpa=True)
        assert not result.dpa.succeeded
        assert result.dpa.rank_of_true_key() > 5

    def test_standardisation_is_what_rescues_dom_on_cmos(self):
        """Raw DoM drowns in the high-variance switching samples; the
        per-sample normalisation recovers it — documenting why the
        campaign standardises before DPA."""
        campaign = AttackCampaign(build_cmos_library(), 0x2B)
        result = campaign.run()
        raw = multibit_dpa_attack(result.traces, result.plaintexts,
                                  true_key=0x2B)
        normed = multibit_dpa_attack(standardize(result.traces),
                                     result.plaintexts, true_key=0x2B)
        assert normed.rank_of_true_key() < raw.rank_of_true_key()
        assert normed.rank_of_true_key() == 0
