"""Tests for the EKV-style MOSFET model: the physics the paper rests on."""

import math

import pytest

from repro.errors import DeviceError
from repro.spice.mosfet import MosfetModel, ekv_interp, softplus
from repro.tech import NMOS_HVT, NMOS_LVT, PMOS_LVT, TECH90
from repro.units import um

VDD = 1.2


def nmos(w=um(1.0), l=um(0.1), params=NMOS_HVT):
    return MosfetModel(params, w, l)


def pmos(w=um(1.0), l=um(0.1), params=PMOS_LVT):
    return MosfetModel(params, w, l)


class TestInterpolation:
    def test_softplus_large(self):
        assert softplus(50.0) == pytest.approx(50.0)

    def test_softplus_small(self):
        assert softplus(-50.0) == pytest.approx(math.exp(-50.0))

    def test_softplus_zero(self):
        assert softplus(0.0) == pytest.approx(math.log(2.0))

    def test_ekv_strong_inversion_limit(self):
        # F(x) -> (x/2)^2 for large x.
        assert ekv_interp(40.0) == pytest.approx(400.0, rel=1e-6)

    def test_ekv_subthreshold_limit(self):
        # F(x) -> exp(x) for very negative x.
        assert ekv_interp(-20.0) == pytest.approx(math.exp(-20.0), rel=1e-3)


class TestGeometryValidation:
    def test_below_min_width(self):
        with pytest.raises(DeviceError):
            MosfetModel(NMOS_HVT, w=um(0.05), l=um(0.1))

    def test_below_min_length(self):
        with pytest.raises(DeviceError):
            MosfetModel(NMOS_HVT, w=um(0.5), l=um(0.05))


class TestNmosRegions:
    def test_off_device_leaks_little(self):
        m = nmos()
        leak = m.ids(0.0, VDD, 0.0)
        assert 0.0 < leak < 1e-9  # sub-nA for high-Vt

    def test_saturation_square_law(self):
        # Ids should quadruple when the overdrive doubles (saturation).
        m = nmos()
        i1 = m.ids(NMOS_HVT.vt0 + 0.2, VDD, 0.0)
        i2 = m.ids(NMOS_HVT.vt0 + 0.4, VDD, 0.0)
        assert i2 / i1 == pytest.approx(4.0, rel=0.25)

    def test_current_scales_with_width(self):
        i1 = nmos(w=um(0.5)).ids(1.0, VDD, 0.0)
        i2 = nmos(w=um(1.0)).ids(1.0, VDD, 0.0)
        assert i2 / i1 == pytest.approx(2.0, rel=0.05)

    def test_current_scales_inverse_length(self):
        i1 = nmos(l=um(0.1)).ids(1.0, VDD, 0.0)
        i2 = nmos(l=um(0.2)).ids(1.0, VDD, 0.0)
        assert i1 / i2 == pytest.approx(2.0, rel=0.15)

    def test_triode_vs_saturation(self):
        m = nmos()
        triode = m.ids(VDD, 0.05, 0.0)
        sat = m.ids(VDD, VDD, 0.0)
        assert 0.0 < triode < sat

    def test_zero_vds_zero_current(self):
        assert nmos().ids(1.0, 0.0, 0.0) == pytest.approx(0.0, abs=1e-15)

    def test_reverse_symmetry(self):
        # Swapping drain and source flips the current sign.  The reverse
        # direction carries less magnitude because the (grounded-bulk)
        # body effect now raises Vt and channel-length modulation flips
        # sign — both real pass-transistor effects.
        m = nmos()
        fwd = m.ids(1.0, 0.3, 0.0)
        rev = m.ids(1.0, 0.0, 0.3)
        assert rev < 0.0 < fwd
        assert abs(rev) == pytest.approx(fwd, rel=0.35)
        assert abs(rev) < fwd

    def test_subthreshold_slope(self):
        # Decade per n*Ut*ln(10) of gate drive below threshold.
        m = nmos()
        vg1, vg2 = 0.10, 0.20
        i1 = m.ids(vg1, VDD, 0.0)
        i2 = m.ids(vg2, VDD, 0.0)
        decades = math.log10(i2 / i1)
        expected = (vg2 - vg1) / (NMOS_HVT.nsub * 0.02585 * math.log(10))
        assert decades == pytest.approx(expected, rel=0.1)

    def test_hvt_leaks_less_than_lvt(self):
        leak_hvt = nmos(params=NMOS_HVT).ids(0.0, VDD, 0.0)
        leak_lvt = nmos(params=NMOS_LVT).ids(0.0, VDD, 0.0)
        assert leak_lvt / leak_hvt > 10.0

    def test_stacking_effect(self):
        """A negative VGS (source above gate) cuts leakage further —
        why the sleep transistor sits on top of the current source."""
        m = nmos()
        leak_vgs0 = m.ids(0.0, VDD, 0.0)
        leak_neg = m.ids(0.0, VDD, 0.15)  # source floated up 150 mV
        assert leak_neg < leak_vgs0 / 10.0


class TestBodyEffect:
    def test_reverse_body_bias_raises_vt(self):
        m = nmos()
        assert m.vt_eff(0.5) > m.vt_eff(0.0)

    def test_forward_bias_clamped(self):
        m = nmos()
        # Deep forward bias must not produce a NaN.
        assert math.isfinite(m.vt_eff(-2.0))

    def test_body_bias_changes_current(self):
        m = nmos()
        i_nominal = m.ids(0.7, VDD, 0.0, vb=0.0)
        i_reverse = m.ids(0.7, VDD, 0.0, vb=-0.5)
        assert i_reverse < i_nominal


class TestPmos:
    def test_on_current_negative(self):
        # Conducting PMOS: current flows source->drain, i.e. ids < 0.
        m = pmos()
        assert m.ids(0.0, 0.0, VDD, VDD) < 0.0

    def test_off_pmos(self):
        m = pmos()
        assert abs(m.ids(VDD, 0.0, VDD, VDD)) < 1e-8

    def test_triode_resistance_tracks_width(self):
        # The active-load design knob: R ~ 1/W.
        r1 = 0.05 / abs(pmos(w=um(0.2)).ids(0.0, VDD - 0.05, VDD, VDD))
        r2 = 0.05 / abs(pmos(w=um(0.4)).ids(0.0, VDD - 0.05, VDD, VDD))
        assert r1 / r2 == pytest.approx(2.0, rel=0.1)


class TestSmallSignal:
    def test_gm_positive_in_saturation(self):
        assert nmos().gm(0.8, VDD, 0.0) > 0.0

    def test_gds_small_in_saturation(self):
        m = nmos()
        gds = m.gds(0.8, VDD, 0.0)
        gm = m.gm(0.8, VDD, 0.0)
        assert 0.0 < gds < gm  # intrinsic gain > 1

    def test_gds_large_in_triode(self):
        m = nmos()
        assert m.gds(VDD, 0.05, 0.0) > m.gds(VDD, VDD, 0.0)


class TestCapacitances:
    def test_all_positive(self):
        m = nmos()
        assert m.cgs > 0 and m.cgd > 0 and m.cdb > 0 and m.csb > 0

    def test_cin_scales_with_width(self):
        assert nmos(w=um(2.0)).cin == pytest.approx(2 * nmos(w=um(1.0)).cin,
                                                    rel=1e-6)

    def test_cgs_exceeds_overlap(self):
        m = nmos()
        assert m.cgs > m.cgd

    def test_repr(self):
        assert "nmos_hvt" in repr(nmos())
