"""Tests for trace preprocessing, including the quantisation-vs-
compression interaction that backs the resolution ablation."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.power import (
    MeasurementChain,
    add_jitter,
    align,
    center,
    compress,
    standardize,
    window,
)
from repro.sca import cpa_attack
from repro.sca.leakage import hamming_weight
from repro.aes import SBOX


def toy(n=40, m=10, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(3.0, 1.0, size=(n, m))


class TestCenterStandardize:
    def test_center_zero_mean(self):
        out = center(toy())
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-12)

    def test_standardize_unit_variance(self):
        out = standardize(toy())
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_stays_zero(self):
        traces = toy()
        traces[:, 3] = 7.0
        out = standardize(traces)
        assert np.all(out[:, 3] == 0.0)

    def test_validation(self):
        with pytest.raises(TraceError):
            center(np.array([1.0, 2.0]))
        with pytest.raises(TraceError):
            center(np.empty((0, 5)))


class TestWindowCompress:
    def test_window(self):
        out = window(toy(), 2, 6)
        assert out.shape == (40, 4)

    def test_window_bounds(self):
        with pytest.raises(TraceError):
            window(toy(), 5, 3)
        with pytest.raises(TraceError):
            window(toy(), 0, 99)

    def test_compress_sums_groups(self):
        traces = np.arange(12, dtype=float).reshape(2, 6)
        out = compress(traces, 3)
        assert out.shape == (2, 2)
        assert out[0, 0] == pytest.approx(0 + 1 + 2)

    def test_compress_drops_tail(self):
        out = compress(toy(m=10), 4)
        assert out.shape[1] == 2

    def test_compress_factor_one_copies(self):
        traces = toy()
        out = compress(traces, 1)
        assert np.array_equal(out, traces)
        out[0, 0] += 1.0
        assert traces[0, 0] != out[0, 0]

    def test_compress_validation(self):
        with pytest.raises(TraceError):
            compress(toy(), 0)
        with pytest.raises(TraceError):
            compress(toy(m=3), 5)

    def test_compression_recovers_quantised_leak(self):
        """The anti-quantisation property: a leak far below one LSB per
        sample becomes visible after integrating many samples."""
        rng = np.random.default_rng(1)
        key = 0x5A
        pts = rng.integers(0, 256, size=300)
        leak = np.array([hamming_weight(SBOX[p ^ key]) for p in pts],
                        dtype=float)
        # Leak spread across 64 samples, 0.05 LSB each, plus dither.
        traces = rng.normal(0.0, 0.4, size=(300, 64)) + \
            0.05 * leak[:, None]
        quantised = np.round(traces)  # 1-unit resolution probe
        raw_attack = cpa_attack(quantised, pts.tolist(), true_key=key)
        combined = compress(quantised, 64)
        sum_attack = cpa_attack(combined, pts.tolist(), true_key=key)
        assert sum_attack.rank_of_true_key() <= raw_attack.rank_of_true_key()
        assert sum_attack.rank_of_true_key() == 0


class TestAlign:
    def test_jitter_roundtrip(self):
        rng = np.random.default_rng(2)
        base = np.zeros((30, 40))
        base[:, 18:22] = 5.0  # a common feature
        base += rng.normal(0, 0.1, size=base.shape)
        jittered, true_shifts = add_jitter(base, max_shift=4, seed=3)
        aligned, found = align(jittered, reference=base.mean(axis=0),
                               max_shift=6)
        # Aligned traces must correlate with the clean ones far better.
        err_before = np.abs(jittered - base).mean()
        err_after = np.abs(aligned - base).mean()
        assert err_after < err_before / 2

    def test_zero_jitter_identity(self):
        traces = toy()
        aligned, shifts = align(traces, max_shift=0)
        assert np.array_equal(aligned, traces)
        assert np.all(shifts == 0)

    def test_reference_length_checked(self):
        with pytest.raises(TraceError):
            align(toy(m=10), reference=np.zeros(5))

    def test_negative_shift_rejected(self):
        with pytest.raises(TraceError):
            align(toy(), max_shift=-1)
        with pytest.raises(TraceError):
            add_jitter(toy(), max_shift=-1)

    @staticmethod
    def _align_loop(arr, ref, max_shift):
        """The original per-trace loop, kept as the behavioural spec for
        the batched implementation."""
        ref_c = ref - ref.mean()
        shifts = np.zeros(arr.shape[0], dtype=int)
        aligned = np.empty_like(arr)
        for i, row in enumerate(arr):
            best_shift, best_score = 0, -np.inf
            row_c = row - row.mean()
            for shift in range(-max_shift, max_shift + 1):
                score = float(np.dot(np.roll(row_c, shift), ref_c))
                if score > best_score:
                    best_score, best_shift = score, shift
            shifts[i] = best_shift
            out = np.roll(row, best_shift)
            if best_shift > 0:
                out[:best_shift] = row[0]
            elif best_shift < 0:
                out[best_shift:] = row[-1]
            aligned[i] = out
        return aligned, shifts

    def test_vectorized_align_pins_loop_semantics(self):
        rng = np.random.default_rng(7)
        base = np.zeros((25, 48))
        base[:, 20:26] = 4.0
        base += rng.normal(0, 0.2, size=base.shape)
        jittered, _ = add_jitter(base, max_shift=5, seed=11)
        ref = base.mean(axis=0)
        aligned, shifts = align(jittered, reference=ref, max_shift=7)
        loop_aligned, loop_shifts = self._align_loop(jittered, ref, 7)
        assert np.array_equal(shifts, loop_shifts)
        assert np.array_equal(aligned, loop_aligned)


class TestPreprocessedAttackPipeline:
    def test_pg_mcml_resists_even_with_preprocessing(self):
        """Give the attacker the full toolbox — centering,
        standardisation, 4x compression — and PG-MCML still holds at
        the paper's probe resolution."""
        from repro.cells import build_pg_mcml_library
        from repro.sca import AttackCampaign

        campaign = AttackCampaign(build_pg_mcml_library(), key=0x2B)
        result = campaign.run(plaintexts=list(range(0, 256, 2)))
        processed = compress(standardize(result.traces), 4)
        attack = cpa_attack(processed, result.plaintexts, true_key=0x2B)
        assert attack.rank_of_true_key() > 3
