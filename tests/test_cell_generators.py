"""Transistor-level tests of the MCML / PG-MCML / CMOS cell generators.

These exercise generated netlists in the SPICE engine and check the
*electrical* truth table: for every input combination, the differential
output must steer to the correct side with the designed swing.
"""

import itertools

import pytest

from repro.cells import (
    CmosCellGenerator,
    McmlCellGenerator,
    McmlSizing,
    PgMcmlCellGenerator,
    PowerGateTopology,
    function,
    solve_bias,
)
from repro.errors import CellError
from repro.spice import Circuit, DC, solve_dc
from repro.tech import TECH90
from repro.units import uA, um

VDD = TECH90.vdd


@pytest.fixture(scope="module")
def sizing():
    return solve_bias(uA(50)).sizing


@pytest.fixture(scope="module")
def pg_sizing():
    return solve_bias(uA(50), gated=True).sizing


def dc_evaluate(fn_name, inputs, sizing, gated=False, sleep_on=True):
    """DC-solve a generated cell and return {out: differential volts}."""
    fn = function(fn_name)
    gen = (PgMcmlCellGenerator(TECH90, sizing) if gated
           else McmlCellGenerator(TECH90, sizing))
    cell = gen.build(fn)
    ckt = cell.circuit
    ckt.v("vdd", cell.vdd_net, VDD)
    ckt.v("vvn", cell.vn_net, sizing.vn)
    ckt.v("vvp", cell.vp_net, sizing.vp)
    if gated:
        ckt.v("vsleep", cell.sleep_net, VDD if sleep_on else 0.0)
    hi, lo = sizing.input_high(TECH90), sizing.input_low(TECH90)
    for pin, value in inputs.items():
        p, n = cell.input_nets[pin]
        ckt.v(f"v{pin.lower()}p", p, DC(hi if value else lo))
        ckt.v(f"v{pin.lower()}n", n, DC(lo if value else hi))
    op = solve_dc(ckt)
    return {out: op[p] - op[n] for out, (p, n) in cell.output_nets.items()},\
        op


class TestMcmlElectricalTruth:
    @pytest.mark.parametrize("fn_name", ["BUF", "AND2", "XOR2", "MUX2"])
    def test_all_input_combinations(self, fn_name, sizing):
        fn = function(fn_name)
        for bits in itertools.product([False, True], repeat=len(fn.inputs)):
            env = dict(zip(fn.inputs, bits))
            diffs, _ = dc_evaluate(fn_name, env, sizing)
            expected = fn.evaluate(env)
            for out, diff in diffs.items():
                if expected[out]:
                    assert diff > 0.2, (fn_name, env, out, diff)
                else:
                    assert diff < -0.2, (fn_name, env, out, diff)

    def test_full_adder_both_outputs(self, sizing):
        fn = function("FA")
        for bits in itertools.product([False, True], repeat=3):
            env = dict(zip(fn.inputs, bits))
            diffs, _ = dc_evaluate("FA", env, sizing)
            expected = fn.evaluate(env)
            for out in ("S", "CO"):
                assert (diffs[out] > 0.15) == expected[out], (env, out)

    def test_supply_current_constant_across_inputs(self, sizing):
        """The DPA-resistance property at DC: same Iss for every input."""
        currents = []
        for bits in itertools.product([False, True], repeat=2):
            _, op = dc_evaluate("AND2", dict(zip(("A", "B"), bits)), sizing)
            currents.append(op.current("vdd"))
        spread = (max(currents) - min(currents)) / max(currents)
        assert spread < 0.02  # < 2 % variation across all inputs


class TestMcmlStructure:
    def test_buffer_device_count(self, sizing):
        cell = McmlCellGenerator(TECH90, sizing).build(function("BUF"))
        mosfets = [d for d in cell.circuit.devices
                   if type(d).__name__ == "Mosfet"]
        assert len(mosfets) == 5  # 2 loads + pair + tail

    def test_pg_buffer_adds_exactly_one_device(self, sizing, pg_sizing):
        plain = McmlCellGenerator(TECH90, sizing).build(function("BUF"))
        gated = PgMcmlCellGenerator(TECH90, pg_sizing).build(function("BUF"))
        count = lambda c: sum(1 for d in c.circuit.devices
                              if type(d).__name__ == "Mosfet")
        assert count(gated) == count(plain) + 1

    def test_depth_tracking(self, sizing):
        gen = McmlCellGenerator(TECH90, sizing)
        assert gen.build(function("BUF")).depth == 1
        assert gen.build(function("AND2")).depth == 2

    def test_multi_output_separate_tails(self, sizing):
        cell = McmlCellGenerator(TECH90, sizing).build(function("FA"))
        tails = [d for d in cell.circuit.devices if "mtail" in d.name]
        assert len(tails) == 2

    def test_latch_topology(self, sizing):
        cell = McmlCellGenerator(TECH90, sizing).build(function("DLATCH"))
        assert cell.depth == 2
        assert cell.n_pairs == 3

    def test_unsupported_sequential(self, sizing):
        # DLATCH and DFF have transistor templates; DFFR does not (yet).
        with pytest.raises(CellError):
            McmlCellGenerator(TECH90, sizing).build(function("DFFR"))

    def test_namespacing_in_shared_circuit(self, sizing):
        shared = Circuit("two_cells")
        gen = McmlCellGenerator(TECH90, sizing)
        a = gen.build(function("BUF"), circuit=shared, prefix="u1_")
        b = gen.build(function("BUF"), circuit=shared, prefix="u2_")
        assert a.output_nets["Y"] != b.output_nets["Y"]

    def test_sizing_validation(self):
        with pytest.raises(CellError):
            McmlSizing(iss=-1.0)
        with pytest.raises(CellError):
            McmlSizing(swing=1.5)

    def test_for_current_scales_widths(self):
        small = McmlSizing.for_current(uA(10))
        big = McmlSizing.for_current(uA(200))
        assert big.w_pair > small.w_pair
        assert big.w_tail > small.w_tail

    def test_input_capacitance_positive(self, sizing):
        gen = McmlCellGenerator(TECH90, sizing)
        assert gen.input_capacitance() > 0.0
        assert gen.load_resistance() == pytest.approx(
            sizing.swing / sizing.iss)


class TestPgMcmlSleep:
    def test_sleep_on_behaves_like_mcml(self, pg_sizing):
        diffs, op = dc_evaluate("BUF", {"A": True}, pg_sizing, gated=True)
        assert diffs["Y"] > 0.2
        assert op.current("vdd") == pytest.approx(uA(50), rel=0.2)

    def test_sleep_off_kills_current(self, pg_sizing):
        _, op_on = dc_evaluate("BUF", {"A": True}, pg_sizing, gated=True,
                               sleep_on=True)
        _, op_off = dc_evaluate("BUF", {"A": True}, pg_sizing, gated=True,
                                sleep_on=False)
        assert op_off.current("vdd") < op_on.current("vdd") / 1e4

    def test_sleep_mode_stack_voltages(self, pg_sizing):
        """In sleep the off device takes the stack voltage: the node
        above it (cs) floats high, the node below sits at ground."""
        _, op = dc_evaluate("BUF", {"A": True}, pg_sizing, gated=True,
                            sleep_on=False)
        assert op["mtail_y_pg"] < 0.05       # below the sleep device
        assert op["cs_y"] > 0.5              # network bottom floats up

    def test_negative_vgs_when_bias_also_gated(self, pg_sizing):
        """§4's stacking effect: gating the Vn line together with the
        cells floats the intermediate node up, giving the sleep device a
        negative VGS and even lower leakage."""
        fn = function("BUF")
        gen = PgMcmlCellGenerator(TECH90, pg_sizing)

        def leak(vn_value):
            cell = gen.build(fn)
            ckt = cell.circuit
            ckt.v("vdd", cell.vdd_net, VDD)
            ckt.v("vvn", cell.vn_net, vn_value)
            ckt.v("vvp", cell.vp_net, pg_sizing.vp)
            ckt.v("vsleep", cell.sleep_net, 0.0)
            hi, lo = pg_sizing.input_high(TECH90), pg_sizing.input_low(TECH90)
            p, n = cell.input_nets["A"]
            ckt.v("vinp", p, hi)
            ckt.v("vinn", n, lo)
            op = solve_dc(ckt)
            return op.current("vdd"), op["mtail_y_pg"]

        leak_biased, _ = leak(pg_sizing.vn)
        leak_gated, mid = leak(0.0)
        assert leak_gated <= leak_biased * 1.05
        assert mid > 0.005  # intermediate node floated -> VGS < 0

    def test_topology_enum_complete(self):
        assert {t.value for t in PowerGateTopology} == {"a", "b", "c", "d"}

    @pytest.mark.parametrize("topology", list(PowerGateTopology))
    def test_all_topologies_build(self, pg_sizing, topology):
        gen = PgMcmlCellGenerator(TECH90, pg_sizing, topology)
        cell = gen.build(function("BUF"))
        assert cell.has_sleep
        mosfets = [d for d in cell.circuit.devices
                   if type(d).__name__ == "Mosfet"]
        assert len(mosfets) >= 5


class TestCmosGenerator:
    def test_inverter_dc(self):
        gen = CmosCellGenerator()
        cell = gen.build("INV")
        ckt = cell.circuit
        ckt.v("vdd", cell.vdd_net, VDD)
        ckt.v("vin", cell.input_nets["A"], 0.0)
        op = solve_dc(ckt)
        assert op[cell.output_nets["Y"]] > VDD - 0.05

    @pytest.mark.parametrize("fn_name,inputs,expected", [
        ("NAND2", {"A": 1, "B": 1}, 0), ("NAND2", {"A": 1, "B": 0}, 1),
        ("NOR2", {"A": 0, "B": 0}, 1), ("NOR2", {"A": 1, "B": 0}, 0),
        ("MUX2", {"S": 0, "D0": 1, "D1": 0}, 1),
        ("MUX2", {"S": 1, "D0": 1, "D1": 0}, 0),
        ("BUF", {"A": 1}, 1),
    ])
    def test_gate_truth(self, fn_name, inputs, expected):
        gen = CmosCellGenerator()
        cell = gen.build(fn_name)
        ckt = cell.circuit
        ckt.v("vdd", cell.vdd_net, VDD)
        for pin, val in inputs.items():
            ckt.v(f"v{pin.lower()}", cell.input_nets[pin],
                  VDD if val else 0.0)
        op = solve_dc(ckt)
        out = op[cell.output_nets["Y"]]
        assert (out > VDD / 2) == bool(expected)

    def test_no_template_for_xor(self):
        with pytest.raises(CellError):
            CmosCellGenerator().build("XOR2")

    def test_static_current_negligible(self):
        gen = CmosCellGenerator()
        cell = gen.build("NAND2")
        ckt = cell.circuit
        ckt.v("vdd", cell.vdd_net, VDD)
        ckt.v("va", cell.input_nets["A"], VDD)
        ckt.v("vb", cell.input_nets["B"], 0.0)
        op = solve_dc(ckt)
        assert abs(op.current("vdd")) < 1e-7  # leakage only
