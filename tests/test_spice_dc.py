"""Tests for the DC operating-point solver."""

import pytest

from repro.errors import CircuitError, ConvergenceError
from repro.spice import Circuit, GROUND, solve_dc
from repro.spice.circuit import canonical_node
from repro.tech import NMOS_HVT, NMOS_LVT, PMOS_LVT
from repro.units import um

VDD = 1.2


class TestCircuitConstruction:
    def test_ground_aliases(self):
        assert canonical_node("gnd") == GROUND
        assert canonical_node("VSS") == GROUND
        assert canonical_node("0") == GROUND

    def test_empty_node_name(self):
        with pytest.raises(CircuitError):
            canonical_node("")

    def test_duplicate_device_name(self):
        c = Circuit()
        c.resistor("r1", "a", "b", 1e3)
        with pytest.raises(CircuitError):
            c.resistor("r1", "b", "c", 1e3)

    def test_duplicate_source_on_node(self):
        c = Circuit()
        c.v("v1", "a", 1.0)
        with pytest.raises(CircuitError):
            c.v("v2", "a", 2.0)

    def test_cannot_drive_ground(self):
        c = Circuit()
        with pytest.raises(CircuitError):
            c.v("v1", "gnd", 1.0)

    def test_validate_empty(self):
        with pytest.raises(CircuitError):
            Circuit().validate()

    def test_validate_floating_node(self):
        c = Circuit()
        c.v("v1", "a", 1.0)
        c.resistor("r1", "a", "dangling", 1e3)
        with pytest.raises(CircuitError):
            c.validate()

    def test_device_lookup(self):
        c = Circuit()
        r = c.resistor("r1", "a", "0", 1e3)
        assert c.device("r1") is r
        with pytest.raises(CircuitError):
            c.device("r9")

    def test_all_nodes_sorted_and_grounded(self):
        c = Circuit()
        c.resistor("r1", "b", "a", 1.0)
        assert GROUND in c.all_nodes()

    def test_negative_resistance_rejected(self):
        with pytest.raises(Exception):
            Circuit().resistor("r1", "a", "0", -5.0)


class TestLinearSolves:
    def test_resistor_divider(self):
        c = Circuit()
        c.v("vdd", "vdd", VDD)
        c.resistor("r1", "vdd", "mid", 1e3)
        c.resistor("r2", "mid", "0", 1e3)
        op = solve_dc(c)
        assert op["mid"] == pytest.approx(VDD / 2, abs=1e-6)

    def test_divider_supply_current(self):
        c = Circuit()
        c.v("vdd", "vdd", VDD)
        c.resistor("r1", "vdd", "mid", 1e3)
        c.resistor("r2", "mid", "0", 1e3)
        op = solve_dc(c)
        assert op.current("vdd") == pytest.approx(VDD / 2e3, rel=1e-6)

    def test_three_way_divider(self):
        c = Circuit()
        c.v("vdd", "vdd", 3.0)
        c.resistor("r1", "vdd", "a", 1e3)
        c.resistor("r2", "a", "b", 1e3)
        c.resistor("r3", "b", "0", 1e3)
        op = solve_dc(c)
        assert op["a"] == pytest.approx(2.0, abs=1e-6)
        assert op["b"] == pytest.approx(1.0, abs=1e-6)

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.isource("i1", "0", "out", 1e-3)  # pushes 1 mA into out
        c.resistor("r1", "out", "0", 1e3)
        op = solve_dc(c)
        assert op["out"] == pytest.approx(1.0, abs=1e-6)

    def test_capacitor_open_at_dc(self):
        c = Circuit()
        c.v("vdd", "vdd", VDD)
        c.resistor("r1", "vdd", "out", 1e3)
        c.capacitor("c1", "out", "0", 1e-12)
        op = solve_dc(c)
        assert op["out"] == pytest.approx(VDD, abs=1e-6)
        assert op.current("vdd") == pytest.approx(0.0, abs=1e-9)

    def test_time_dependent_source(self):
        from repro.spice import PWL
        c = Circuit()
        c.v("vin", "in", PWL([(0.0, 0.0), (1.0, 2.0)]))
        c.resistor("r1", "in", "0", 1e3)
        assert solve_dc(c, t=0.5).current("vin") == pytest.approx(1e-3)


class TestNonlinearSolves:
    def test_nmos_diode(self):
        # Diode-connected NMOS against a pull-up resistor.
        c = Circuit()
        c.v("vdd", "vdd", VDD)
        c.resistor("r1", "vdd", "d", 10e3)
        c.mosfet("m1", "d", "d", "0", "0", NMOS_LVT, w=um(1), l=um(0.1))
        op = solve_dc(c)
        # The node must sit above Vt and below Vdd.
        assert NMOS_LVT.vt0 < op["d"] < VDD
        # KCL: resistor current equals device current.
        i_r = (VDD - op["d"]) / 10e3
        assert op.current("vdd") == pytest.approx(i_r, rel=1e-6)

    def test_cmos_inverter_transfer(self):
        def inverter_out(vin):
            c = Circuit()
            c.v("vdd", "vdd", VDD)
            c.v("vin", "in", vin)
            c.mosfet("mn", "out", "in", "0", "0", NMOS_LVT,
                     w=um(0.3), l=um(0.1))
            c.mosfet("mp", "out", "in", "vdd", "vdd", PMOS_LVT,
                     w=um(0.6), l=um(0.1))
            return solve_dc(c)["out"]

        assert inverter_out(0.0) > VDD - 0.05
        assert inverter_out(VDD) < 0.05
        mid = inverter_out(0.55)
        assert 0.1 < mid < VDD - 0.1  # transition region

    def test_mcml_pair_steering(self):
        """The core MCML property: the tail current steers entirely to
        the side whose gate is higher."""
        c = Circuit()
        c.v("vdd", "vdd", VDD)
        c.v("vn", "vn", 0.7)
        c.v("inp", "inp", VDD)
        c.v("inn", "inn", VDD - 0.4)
        c.mosfet("mlp", "outp", "0", "vdd", "vdd", PMOS_LVT,
                 w=um(0.3), l=um(0.1))
        c.mosfet("mln", "outn", "0", "vdd", "vdd", PMOS_LVT,
                 w=um(0.3), l=um(0.1))
        c.mosfet("m1", "outn", "inp", "tail", "0", NMOS_HVT,
                 w=um(0.8), l=um(0.1))
        c.mosfet("m2", "outp", "inn", "tail", "0", NMOS_HVT,
                 w=um(0.8), l=um(0.1))
        c.mosfet("mt", "tail", "vn", "0", "0", NMOS_HVT,
                 w=um(1.0), l=um(0.2))
        op = solve_dc(c)
        # inp high -> current through outn load -> outn drops, outp ~ Vdd.
        assert op["outp"] > VDD - 0.02
        assert op["outn"] < VDD - 0.1

    def test_operating_point_repr(self):
        c = Circuit()
        c.v("vdd", "vdd", VDD)
        c.resistor("r1", "vdd", "0", 1e3)
        assert "vdd" in repr(solve_dc(c))

    def test_warm_start_guess(self):
        c = Circuit()
        c.v("vdd", "vdd", VDD)
        c.resistor("r1", "vdd", "mid", 1e3)
        c.resistor("r2", "mid", "0", 1e3)
        op = solve_dc(c, guess={"mid": 0.6})
        assert op["mid"] == pytest.approx(0.6, abs=1e-6)


class TestGuessValidation:
    @staticmethod
    def divider():
        c = Circuit("div")
        c.v("vdd", "vdd", VDD)
        c.resistor("r1", "vdd", "mid", 1e3)
        c.resistor("r2", "mid", "0", 1e3)
        return c

    def test_unknown_guess_name_raises(self):
        # A typo here used to silently degrade the warm start.
        with pytest.raises(CircuitError, match="guess names"):
            solve_dc(self.divider(), guess={"midd": 0.6})

    def test_error_names_circuit_and_offenders(self):
        with pytest.raises(CircuitError) as err:
            solve_dc(self.divider(), guess={"nope": 0.1, "mid": 0.6})
        assert "nope" in str(err.value) and "div" in str(err.value)

    def test_fixed_node_guess_tolerated(self):
        # Source-pinned nodes are allowed (their value is fixed anyway).
        op = solve_dc(self.divider(), guess={"vdd": 0.3, "mid": 0.6})
        assert op["vdd"] == pytest.approx(VDD)
        assert op["mid"] == pytest.approx(VDD / 2, abs=1e-6)

    def test_ground_alias_guess(self):
        op = solve_dc(self.divider(), guess={"gnd": 0.0})
        assert op["mid"] == pytest.approx(VDD / 2, abs=1e-6)
