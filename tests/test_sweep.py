"""Tests for DC sweeps: VTCs of CMOS and MCML gates."""

import numpy as np
import pytest

from repro.cells import CmosCellGenerator, McmlCellGenerator, function, \
    solve_bias
from repro.errors import CircuitError
from repro.spice import Circuit, DC, dc_sweep
from repro.tech import TECH90
from repro.units import uA, um

VDD = TECH90.vdd


def cmos_inverter():
    gen = CmosCellGenerator()
    cell = gen.build("INV")
    ckt = cell.circuit
    ckt.v("vdd", cell.vdd_net, VDD)
    ckt.v("vin", cell.input_nets["A"], 0.0)
    return ckt, cell.output_nets["Y"]


class TestSweepMechanics:
    def test_linear_circuit(self):
        ckt = Circuit()
        ckt.v("vin", "in", 0.0)
        ckt.resistor("r1", "in", "mid", 1e3)
        ckt.resistor("r2", "mid", "0", 1e3)
        sweep = dc_sweep(ckt, "vin", np.linspace(0, 2, 11))
        assert np.allclose(sweep.wave("mid").v, sweep.values / 2)

    def test_source_current_tracks(self):
        ckt = Circuit()
        ckt.v("vin", "in", 0.0)
        ckt.resistor("r1", "in", "0", 1e3)
        sweep = dc_sweep(ckt, "vin", [0.0, 1.0, 2.0])
        assert sweep.current("vin").v[-1] == pytest.approx(2e-3)

    def test_stimulus_restored(self):
        ckt = Circuit()
        source = ckt.v("vin", "in", DC(0.7))
        ckt.resistor("r1", "in", "0", 1e3)
        dc_sweep(ckt, "vin", [0.0, 1.0])
        assert source.value(0.0) == pytest.approx(0.7)

    def test_unknown_source(self):
        ckt = Circuit()
        ckt.v("vin", "in", 0.0)
        ckt.resistor("r1", "in", "0", 1e3)
        with pytest.raises(CircuitError):
            dc_sweep(ckt, "nope", [0.0, 1.0])

    def test_too_few_points(self):
        ckt = Circuit()
        ckt.v("vin", "in", 0.0)
        ckt.resistor("r1", "in", "0", 1e3)
        with pytest.raises(CircuitError):
            dc_sweep(ckt, "vin", [1.0])

    def test_duplicates_rejected(self):
        ckt = Circuit()
        ckt.v("vin", "in", 0.0)
        ckt.resistor("r1", "in", "0", 1e3)
        with pytest.raises(CircuitError, match="repeat"):
            dc_sweep(ckt, "vin", [0.0, 1.0, 1.0])

    def test_reverse_sweep_matches_forward(self):
        """A decreasing sweep is reverse-solve-unreverse: same physics,
        caller's ordering preserved."""
        ckt = Circuit()
        ckt.v("vin", "in", 0.0)
        ckt.resistor("r1", "in", "mid", 1e3)
        ckt.resistor("r2", "mid", "0", 1e3)
        grid = np.linspace(0, 2, 11)
        forward = dc_sweep(ckt, "vin", grid)
        backward = dc_sweep(ckt, "vin", grid[::-1])
        assert np.allclose(backward.voltages["mid"], grid[::-1] / 2)
        assert np.allclose(backward.voltages["mid"],
                           forward.voltages["mid"][::-1])
        # The derived waveform is always on an ascending axis.
        assert np.array_equal(backward.wave("mid").t, grid)
        assert np.allclose(backward.wave("mid").v, forward.wave("mid").v)

    def test_shuffled_sweep_scatters_back(self):
        ckt = Circuit()
        ckt.v("vin", "in", 0.0)
        ckt.resistor("r1", "in", "0", 1e3)
        values = [1.0, 0.25, 2.0, 0.5]
        sweep = dc_sweep(ckt, "vin", values)
        assert np.allclose(sweep.source_currents["vin"],
                           np.asarray(values) / 1e3)

    def test_unknown_record_node_raises(self):
        ckt = Circuit()
        ckt.v("vin", "in", 0.0)
        ckt.resistor("r1", "in", "0", 1e3)
        with pytest.raises(CircuitError, match="bogus"):
            dc_sweep(ckt, "vin", [0.0, 1.0], record=["bogus"])

    def test_unrecorded_node(self):
        ckt = Circuit()
        ckt.v("vin", "in", 0.0)
        ckt.resistor("r1", "in", "mid", 1e3)
        ckt.resistor("r2", "mid", "0", 1e3)
        sweep = dc_sweep(ckt, "vin", [0.0, 1.0], record=["mid"])
        with pytest.raises(CircuitError):
            sweep.wave("in")


class TestCmosVTC:
    @pytest.fixture(scope="class")
    def sweep(self):
        ckt, out = cmos_inverter()
        result = dc_sweep(ckt, "vin", np.linspace(0.0, VDD, 61))
        result.out = out
        return result

    def test_rails(self, sweep):
        vtc = sweep.wave(sweep.out)
        assert vtc.v[0] > VDD - 0.05
        assert vtc.v[-1] < 0.05

    def test_monotonically_falling(self, sweep):
        vtc = sweep.wave(sweep.out)
        assert np.all(np.diff(vtc.v) <= 1e-6)

    def test_switching_threshold_near_midrail(self, sweep):
        vm = sweep.switching_threshold(sweep.out)
        assert 0.4 < vm < 0.8

    def test_gain_exceeds_unity_in_transition(self, sweep):
        gain = sweep.gain(sweep.out)
        assert abs(gain.trough()) > 4.0  # healthy inverter gain

    def test_crowbar_current_peaks_mid_transition(self, sweep):
        supply = sweep.current("vdd")
        peak_at = sweep.values[int(np.argmax(supply.v))]
        assert 0.3 < peak_at < 0.9


class TestMcmlTransfer:
    def test_differential_steering_curve(self):
        bias = solve_bias(uA(50))
        s = bias.sizing
        gen = McmlCellGenerator(sizing=s)
        cell = gen.build(function("BUF"))
        ckt = cell.circuit
        ckt.v("vdd", cell.vdd_net, VDD)
        ckt.v("vvn", cell.vn_net, s.vn)
        ckt.v("vvp", cell.vp_net, s.vp)
        common = VDD - s.swing / 2
        in_p, in_n = cell.input_nets["A"]
        ckt.v("vin_p", in_p, common)
        ckt.v("vin_n", in_n, DC(common))
        # Sweep the positive rail through the common mode.
        sweep = dc_sweep(ckt, "vin_p",
                         np.linspace(common - 0.25, common + 0.25, 41))
        out_p, out_n = cell.output_nets["Y"]
        diff = sweep.wave(out_p).v - sweep.wave(out_n).v
        # Fully steered at the ends, crossing zero at the middle.
        assert diff[0] < -0.3 and diff[-1] > 0.3
        mid = np.interp(common, sweep.values, diff)
        assert abs(mid) < 0.05

    def test_supply_current_flat_through_transition(self):
        """The DPA property along the whole transfer curve, not just at
        the logic levels: Iss stays constant while the cell switches."""
        bias = solve_bias(uA(50))
        s = bias.sizing
        gen = McmlCellGenerator(sizing=s)
        cell = gen.build(function("BUF"))
        ckt = cell.circuit
        ckt.v("vdd", cell.vdd_net, VDD)
        ckt.v("vvn", cell.vn_net, s.vn)
        ckt.v("vvp", cell.vp_net, s.vp)
        common = VDD - s.swing / 2
        in_p, in_n = cell.input_nets["A"]
        ckt.v("vin_p", in_p, common)
        ckt.v("vin_n", in_n, DC(common))
        sweep = dc_sweep(ckt, "vin_p",
                         np.linspace(common - 0.2, common + 0.2, 21))
        supply = sweep.current("vdd").v
        assert (supply.max() - supply.min()) / supply.mean() < 0.05
