"""Integration tests over the experiment drivers: the paper's claims.

These are the claims the reproduction must uphold; the benchmarks print
the full tables, these tests assert the shape.
"""

import pytest

from repro.experiments import fig5, fig6, table1, table3
from repro.experiments.table3 import PAPER_TABLE3


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run()

    def test_areas_exact(self, result):
        assert result.max_abs_error_um2() < 1e-3

    def test_overhead_near_6_percent(self, result):
        assert result.mean_overhead_pct == pytest.approx(5.56, abs=0.3)

    def test_library_wide_overhead(self, result):
        assert 4.0 < result.library_mean_overhead_pct < 7.0


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run(n_blocks=1)

    def test_cell_count_ordering(self, result):
        cells = {r.style: r.cells for r in result.rows}
        assert cells["cmos"] > cells["pgmcml"] > cells["mcml"]

    def test_cmos_mcml_cell_ratio_matches_paper(self, result):
        cells = {r.style: r.cells for r in result.rows}
        paper_ratio = PAPER_TABLE3["cmos"][0] / PAPER_TABLE3["mcml"][0]
        assert cells["cmos"] / cells["mcml"] == pytest.approx(paper_ratio,
                                                              abs=0.25)

    def test_area_ordering(self, result):
        areas = {r.style: r.area_um2 for r in result.rows}
        assert areas["pgmcml"] > areas["mcml"] > areas["cmos"]

    def test_block_area_ratio_near_2_5(self, result):
        areas = {r.style: r.area_um2 for r in result.rows}
        assert areas["mcml"] / areas["cmos"] == pytest.approx(2.53, abs=0.6)

    def test_delay_ordering(self, result):
        delays = {r.style: r.delay_ns for r in result.rows}
        assert delays["cmos"] < delays["mcml"] < delays["pgmcml"]

    def test_pg_delay_overhead_small(self, result):
        delays = {r.style: r.delay_ns for r in result.rows}
        assert delays["pgmcml"] / delays["mcml"] < 1.05

    def test_mcml_power_is_huge(self, result):
        power = {r.style: r.avg_power_w for r in result.rows}
        assert power["mcml"] > 100 * power["cmos"]

    def test_pg_power_beats_cmos_at_paper_duty(self, result):
        power = {r.style: r.avg_power_at_paper_duty_w for r in result.rows}
        assert power["pgmcml"] < power["cmos"]
        # Paper: PG-MCML ~4x below CMOS.
        assert power["cmos"] / power["pgmcml"] == pytest.approx(4.3, abs=2.5)

    def test_pg_reduction_factor_at_paper_duty(self, result):
        ratio = result.power_ratio_at_paper_duty("mcml", "pgmcml")
        assert ratio > 1e3  # paper: ~1e4

    def test_pg_power_magnitude_near_paper(self, result):
        pg_row = result.row("pgmcml")
        assert pg_row.avg_power_at_paper_duty_w == pytest.approx(
            47.77e-6, rel=0.5)

    def test_duty_measured(self, result):
        assert 0.005 < result.measured_duty < 0.05


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run()

    def test_mcml_flat_tens_of_ma(self, result):
        assert 10.0 < result.mcml_flat_ma < 400.0
        assert result.mcml_current.swing() == 0.0

    def test_pg_reaches_mcml_level_when_awake(self, result):
        assert result.pg_peak_ma == pytest.approx(result.mcml_flat_ma,
                                                  rel=0.05)

    def test_sleep_floor_negligible(self, result):
        assert result.pg_floor_ua < 50.0
        assert result.on_off_ratio > 1e3

    def test_sleep_signal_leads_the_burst(self, result):
        t_on, _ = result.window
        rise = result.sleep_signal.first_crossing(0.6, "rise")
        assert rise == pytest.approx(t_on, abs=1e-10)

    def test_window_length_order_of_paper(self, result):
        assert 5.0 < result.window_length_ns() < 60.0


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run()

    def test_matches_paper_outcome(self, result):
        assert result.matches_paper()

    def test_cmos_margin(self, result):
        assert result.distinguishability("cmos") > 1.2

    def test_differential_buried(self, result):
        assert result.distinguishability("mcml") < 1.0
        assert result.distinguishability("pgmcml") < 1.0

    def test_pg_no_worse_than_mcml(self, result):
        """'The insertion of the sleep signal does not introduce a
        negative effect on robustness' — PG margin comparable to MCML."""
        assert result.distinguishability("pgmcml") <= \
            1.15 * result.distinguishability("mcml")
