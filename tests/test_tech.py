"""Tests for repro.tech: device parameters, corners, mismatch."""

import math

import pytest

from repro.errors import DeviceError
from repro.tech import (
    CORNERS,
    MismatchModel,
    NMOS_HVT,
    NMOS_LVT,
    PMOS_HVT,
    PMOS_LVT,
    TECH90,
    Technology,
    corner,
    flavor,
)
from repro.units import um


class TestFlavors:
    def test_registry_lookup(self):
        assert flavor("nmos_hvt") is NMOS_HVT
        assert flavor("pmos_lvt") is PMOS_LVT

    def test_unknown_flavor(self):
        with pytest.raises(DeviceError):
            flavor("nmos_mystery")

    def test_polarity(self):
        assert NMOS_LVT.is_nmos and not NMOS_LVT.is_pmos
        assert PMOS_HVT.is_pmos and not PMOS_HVT.is_nmos

    def test_hvt_has_higher_threshold(self):
        assert NMOS_HVT.vt0 > NMOS_LVT.vt0
        assert PMOS_HVT.vt0 > PMOS_LVT.vt0

    def test_hvt_has_lower_mobility(self):
        assert NMOS_HVT.kp < NMOS_LVT.kp

    def test_shifted_vt(self):
        shifted = NMOS_LVT.shifted(dvt=0.05)
        assert shifted.vt0 == pytest.approx(NMOS_LVT.vt0 + 0.05)

    def test_shifted_kp(self):
        shifted = NMOS_LVT.shifted(kp_scale=1.1)
        assert shifted.kp == pytest.approx(NMOS_LVT.kp * 1.1)

    def test_shift_cannot_invert_device(self):
        with pytest.raises(DeviceError):
            NMOS_LVT.shifted(dvt=-1.0)

    def test_invalid_polarity(self):
        with pytest.raises(DeviceError):
            NMOS_LVT.__class__(
                name="bad", polarity=0, vt0=0.3, kp=1e-4, lam=0.1,
                nsub=1.3, cox=1e-2, cj=1e-9, cov=1e-10,
                lmin=um(0.1), wmin=um(0.12))


class TestTechnology:
    def test_vdd(self):
        assert TECH90.vdd == pytest.approx(1.2)

    def test_cell_height(self):
        assert TECH90.cell_height == pytest.approx(um(2.8))

    def test_pg_site_wider_than_mcml(self):
        assert TECH90.site_width_pgmcml > TECH90.site_width_mcml

    def test_site_overhead_is_5_6_percent(self):
        ratio = TECH90.site_width_pgmcml / TECH90.site_width_mcml
        assert ratio == pytest.approx(7.448 / 7.056, rel=1e-6)

    def test_flavor_accessor(self):
        assert TECH90.flavor("nmos_lvt").name == "nmos_lvt"
        with pytest.raises(DeviceError):
            TECH90.flavor("nope")

    def test_thermal_voltage_scales_with_temp(self):
        hot = Technology(temp_k=360.0)
        assert hot.vt_thermal == pytest.approx(TECH90.vt_thermal * 1.2)


class TestCorners:
    def test_all_five_present(self):
        assert set(CORNERS) == {"tt", "ff", "ss", "fs", "sf"}

    def test_lookup_case_insensitive(self):
        assert corner("FF").name == "ff"

    def test_unknown_corner(self):
        with pytest.raises(DeviceError):
            corner("xx")

    def test_tt_is_identity(self):
        p = corner("tt").apply(NMOS_LVT)
        assert p.vt0 == pytest.approx(NMOS_LVT.vt0)
        assert p.kp == pytest.approx(NMOS_LVT.kp)

    def test_ss_is_slow(self):
        p = corner("ss").apply(NMOS_LVT)
        assert p.vt0 > NMOS_LVT.vt0
        assert p.kp < NMOS_LVT.kp

    def test_ff_is_fast(self):
        p = corner("ff").apply(PMOS_LVT)
        assert p.vt0 < PMOS_LVT.vt0
        assert p.kp > PMOS_LVT.kp

    def test_fs_splits_polarity(self):
        fs = corner("fs")
        n = fs.apply(NMOS_LVT)
        p = fs.apply(PMOS_LVT)
        assert n.vt0 < NMOS_LVT.vt0  # fast NMOS
        assert p.vt0 > PMOS_LVT.vt0  # slow PMOS

    def test_corner_technology(self):
        tech = corner("ss").technology()
        assert tech.flavor("nmos_hvt").vt0 > NMOS_HVT.vt0
        assert tech.vdd == TECH90.vdd


class TestMismatch:
    def test_pelgrom_scaling(self):
        mm = MismatchModel(avt=3.5e-9)
        small = mm.sigma_vt(um(0.12), um(0.1))
        large = mm.sigma_vt(um(0.48), um(0.1))
        assert small == pytest.approx(2.0 * large)

    def test_sigma_positive_geometry_required(self):
        mm = MismatchModel()
        with pytest.raises(DeviceError):
            mm.sigma_vt(0.0, um(0.1))

    def test_negative_coefficients_rejected(self):
        with pytest.raises(DeviceError):
            MismatchModel(avt=-1.0)

    def test_sampling_is_reproducible(self):
        a = MismatchModel(seed=7).sample(NMOS_HVT, um(0.5), um(0.1))
        b = MismatchModel(seed=7).sample(NMOS_HVT, um(0.5), um(0.1))
        assert a.vt0 == pytest.approx(b.vt0)
        assert a.kp == pytest.approx(b.kp)

    def test_sampling_differs_across_draws(self):
        mm = MismatchModel(seed=7)
        a = mm.sample(NMOS_HVT, um(0.5), um(0.1))
        b = mm.sample(NMOS_HVT, um(0.5), um(0.1))
        assert a.vt0 != b.vt0

    def test_sample_statistics(self):
        mm = MismatchModel(avt=3.5e-9, seed=0)
        sigma = mm.sigma_vt(um(0.5), um(0.1))
        draws = [mm.sample(NMOS_HVT, um(0.5), um(0.1)).vt0 - NMOS_HVT.vt0
                 for _ in range(400)]
        observed = (sum(d * d for d in draws) / len(draws)) ** 0.5
        assert observed == pytest.approx(sigma, rel=0.2)

    def test_resistor_ratio_small(self):
        mm = MismatchModel(seed=3)
        draws = [abs(mm.sample_resistor_ratio()) for _ in range(100)]
        assert max(draws) < 0.06  # ~1 % sigma
