"""Tests for the TVLA extension and the transistor-level CML flip-flop."""

import numpy as np
import pytest

from repro.cells import (
    McmlCellGenerator,
    PgMcmlCellGenerator,
    build_cmos_library,
    build_mcml_library,
    function,
    solve_bias,
)
from repro.cells.characterize import characterize_mcml_dff
from repro.errors import AttackError
from repro.sca import TVLA_THRESHOLD, fixed_vs_random_tvla, welch_t
from repro.sca.attack import build_reduced_aes
from repro.spice import DC, Pulse, run_transient
from repro.tech import TECH90
from repro.units import ns, ps, uA


class TestWelchT:
    def test_identical_groups_zero(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(50, 10))
        t = welch_t(a, a.copy())
        assert np.allclose(t, 0.0)

    def test_shifted_mean_detected(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.0, 1.0, size=(200, 5))
        b = rng.normal(0.0, 1.0, size=(200, 5))
        b[:, 2] += 2.0
        t = welch_t(a, b)
        assert abs(t[2]) > TVLA_THRESHOLD
        assert all(abs(t[i]) < TVLA_THRESHOLD for i in (0, 1, 3, 4))

    def test_sign_convention(self):
        a = np.zeros((10, 1)) + 1.0 + np.arange(10).reshape(-1, 1) * 1e-3
        b = np.zeros((10, 1)) + np.arange(10).reshape(-1, 1) * 1e-3
        assert welch_t(a, b)[0] > 0  # group A larger -> positive t

    def test_zero_variance_yields_zero(self):
        a = np.ones((10, 3))
        b = np.ones((10, 3))
        assert np.allclose(welch_t(a, b), 0.0)

    def test_validation(self):
        with pytest.raises(AttackError):
            welch_t(np.ones((1, 3)), np.ones((5, 3)))
        with pytest.raises(AttackError):
            welch_t(np.ones((5, 3)), np.ones((5, 4)))
        with pytest.raises(AttackError):
            welch_t(np.ones(5), np.ones((5, 1)))


class TestTVLACampaign:
    def test_cmos_leaks_clearly(self):
        nl, _ = build_reduced_aes(build_cmos_library())
        result = fixed_vs_random_tvla(nl, key=0x2B, n_traces=96)
        assert result.leaks
        assert result.max_abs_t > TVLA_THRESHOLD
        assert len(result.leaking_samples()) >= 1

    def test_mcml_leakage_amplitude_far_below_cmos(self):
        """Both styles are t-test detectable, but the *amplitude* of the
        MCML residual is orders of magnitude below the CMOS signal —
        which is what decides exploitability (Fig. 6)."""
        cmos_nl, _ = build_reduced_aes(build_cmos_library())
        mcml_nl, _ = build_reduced_aes(build_mcml_library())
        r_cmos = fixed_vs_random_tvla(cmos_nl, key=0x2B, n_traces=96)
        r_mcml = fixed_vs_random_tvla(mcml_nl, key=0x2B, n_traces=96)
        assert r_cmos.max_abs_delta > 10.0 * r_mcml.max_abs_delta

    def test_counts_recorded(self):
        nl, _ = build_reduced_aes(build_cmos_library())
        result = fixed_vs_random_tvla(nl, key=0x10, n_traces=40)
        assert result.n_fixed == result.n_random == 20

    def test_minimum_traces(self):
        nl, _ = build_reduced_aes(build_cmos_library())
        with pytest.raises(AttackError):
            fixed_vs_random_tvla(nl, key=0, n_traces=2)

    def test_repr(self):
        nl, _ = build_reduced_aes(build_cmos_library())
        result = fixed_vs_random_tvla(nl, key=0, n_traces=16)
        assert "t" in repr(result)


@pytest.fixture(scope="module")
def pg_sizing():
    return solve_bias(uA(50), gated=True).sizing


class TestCmlDff:
    def test_structure(self, pg_sizing):
        cell = McmlCellGenerator(TECH90, pg_sizing).build(function("DFF"))
        tails = [d for d in cell.circuit.devices if "mtail" in d.name]
        assert len(tails) == 2  # master + slave
        assert cell.n_pairs == 6

    def test_pg_variant_gates_both_tails(self, pg_sizing):
        cell = PgMcmlCellGenerator(TECH90, pg_sizing).build(function("DFF"))
        sleeps = [d for d in cell.circuit.devices
                  if d.name.endswith("_sleep")]
        assert len(sleeps) == 2

    def test_clk_to_q_measurement(self, pg_sizing):
        meas = characterize_mcml_dff(
            PgMcmlCellGenerator(TECH90, pg_sizing))
        assert 1e-12 < meas.delay < 60e-12
        assert meas.swing > 0.3
        assert meas.iss == pytest.approx(2 * uA(50), rel=0.15)

    def test_edge_triggered_behaviour(self, pg_sizing):
        """Q must NOT follow D while the clock is high (master opaque),
        and must capture the D value present at the rising edge."""
        gen = McmlCellGenerator(TECH90, pg_sizing)
        cell = gen.build(function("DFF"), load_cap=1e-15)
        ckt = cell.circuit
        s = pg_sizing
        hi, lo = s.input_high(TECH90), s.input_low(TECH90)
        ckt.v("vdd", cell.vdd_net, TECH90.vdd)
        ckt.v("vvn", cell.vn_net, s.vn)
        ckt.v("vvp", cell.vp_net, s.vp)
        d_p, d_n = cell.input_nets["D"]
        ck_p, ck_n = cell.input_nets["CK"]
        # D: high until 0.9 ns, then drops low (after the clock edge).
        ckt.v("vd_p", d_p, Pulse(hi, lo, ns(0.9), ps(10), ps(10), ns(2)))
        ckt.v("vd_n", d_n, Pulse(lo, hi, ns(0.9), ps(10), ps(10), ns(2)))
        # CK rises at 0.6 ns and stays high.
        ckt.v("vck_p", ck_p, Pulse(lo, hi, ns(0.6), ps(10), ps(10), ns(3)))
        ckt.v("vck_n", ck_n, Pulse(hi, lo, ns(0.6), ps(10), ps(10), ns(3)))
        res = run_transient(ckt, tstop=ns(1.6), dt=ps(2))
        q = res.differential(*cell.output_nets["Q"])
        # After the edge Q holds the captured '1' even though D fell.
        assert q.value_at(ns(0.8)) > 0.2
        assert q.value_at(ns(1.5)) > 0.2
