"""Tests for CheckpointedRun: chunked execution, atomic snapshots,
retry with backoff, and the acceptance-criterion kill-and-resume
round-trip on a fig6-style CPA campaign."""

import json
import os

import numpy as np
import pytest

from repro.cells import build_cmos_library
from repro.errors import CheckpointError, ReproError
from repro.experiments.runner import CheckpointedRun
from repro.power import MeasurementChain
from repro.sca import AttackCampaign, fixed_vs_random_tvla
from repro.sca.attack import build_reduced_aes


def square_chunk(chunk, start):
    return np.array([[float(i), float(i * i)] for i in chunk])


class TestBasicExecution:
    def test_single_pass(self, tmp_path):
        runner = CheckpointedRun(tmp_path / "basic.npz", chunk_size=4)
        out = runner.run(list(range(10)), square_chunk)
        np.testing.assert_array_equal(
            out, [[i, i * i] for i in range(10)])
        assert os.path.exists(runner.path)
        assert runner.stats.chunks_total == 3
        assert runner.stats.chunks_run == 3
        assert runner.stats.chunks_resumed == 0

    def test_completed_run_resumes_without_reprocessing(self, tmp_path):
        runner = CheckpointedRun(tmp_path / "done.npz", chunk_size=4)
        first = runner.run(list(range(10)), square_chunk)

        def exploding(chunk, start):
            raise AssertionError("should not be called on a finished run")

        again = CheckpointedRun(tmp_path / "done.npz", chunk_size=4)
        second = again.run(list(range(10)), exploding)
        np.testing.assert_array_equal(first, second)
        assert again.stats.chunks_run == 0
        assert again.stats.chunks_resumed == 3

    def test_one_dim_chunk_output(self, tmp_path):
        runner = CheckpointedRun(tmp_path / "flat.npz", chunk_size=3)
        out = runner.run(list(range(7)),
                         lambda chunk, start: np.array(
                             [float(i) for i in chunk]))
        assert out.shape == (7, 1)

    def test_clear_removes_the_checkpoint(self, tmp_path):
        runner = CheckpointedRun(tmp_path / "gone.npz", chunk_size=4)
        runner.run(list(range(4)), square_chunk)
        assert os.path.exists(runner.path)
        runner.clear()
        assert not os.path.exists(runner.path)

    def test_npz_suffix_is_appended(self, tmp_path):
        runner = CheckpointedRun(tmp_path / "noext")
        assert runner.path.endswith(".npz")

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointedRun(tmp_path / "x.npz", chunk_size=0)
        with pytest.raises(CheckpointError):
            CheckpointedRun(tmp_path / "x.npz", max_retries=-1)

    def test_wrong_row_count_rejected(self, tmp_path):
        runner = CheckpointedRun(tmp_path / "rows.npz", chunk_size=4)
        with pytest.raises(CheckpointError):
            runner.run(list(range(8)),
                       lambda chunk, start: np.zeros((1, 2)))


class TestKillAndResume:
    def test_mid_run_kill_resumes_from_chunk_boundary(self, tmp_path):
        path = tmp_path / "killed.npz"
        calls = []

        def process_then_die(chunk, start):
            calls.append(start)
            if start >= 8:
                raise KeyboardInterrupt  # not in retry_on: propagates
            return square_chunk(chunk, start)

        runner = CheckpointedRun(path, chunk_size=4)
        with pytest.raises(KeyboardInterrupt):
            runner.run(list(range(12)), process_then_die)
        assert calls == [0, 4, 8]

        resumed = CheckpointedRun(path, chunk_size=4)
        calls.clear()
        out = resumed.run(list(range(12)), square_chunk)
        np.testing.assert_array_equal(
            out, [[i, i * i] for i in range(12)])
        assert resumed.stats.chunks_resumed == 2
        assert resumed.stats.chunks_run == 1

    def test_corrupt_checkpoint_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "corrupt.npz"
        CheckpointedRun(path, chunk_size=4).run(list(range(8)), square_chunk)
        with open(path, "r+b") as fh:
            fh.truncate(200)  # simulate disk corruption
        runner = CheckpointedRun(path, chunk_size=4)
        with pytest.raises(CheckpointError, match="unreadable"):
            runner.run(list(range(8)), square_chunk)

    def test_fingerprint_mismatch_raises(self, tmp_path):
        path = tmp_path / "fp.npz"
        CheckpointedRun(path, chunk_size=4).run(list(range(8)), square_chunk)
        other = CheckpointedRun(path, chunk_size=4)
        with pytest.raises(CheckpointError, match="different") as info:
            other.run(list(range(9)), square_chunk)
        # Both fingerprints ride in the context so the refusal is
        # diagnosable from a JSONL post-mortem alone.
        err = info.value
        assert err.error_code == "E_CHECKPOINT"
        assert err.context["saved"]["n_items"] == 8
        assert err.context["expected"]["n_items"] == 9
        assert err.context["saved"]["items_sha"] \
            != err.context["expected"]["items_sha"]
        assert err.context["path"] == str(path)
        json.dumps(err.to_dict())  # post-mortem is JSONL-ready

    def test_extra_fingerprint_keys_participate(self, tmp_path):
        path = tmp_path / "fpx.npz"
        CheckpointedRun(path, chunk_size=4).run(
            list(range(8)), square_chunk, fingerprint={"seed": 1})
        other = CheckpointedRun(path, chunk_size=4)
        with pytest.raises(CheckpointError):
            other.run(list(range(8)), square_chunk, fingerprint={"seed": 2})

    def test_state_round_trip(self, tmp_path):
        """Caller state (e.g. an RNG) rides along in the checkpoint so a
        resumed run continues the exact stream."""
        path = tmp_path / "state.npz"
        state = {"n": 0}

        def process(chunk, start):
            rows = []
            for _ in chunk:
                rows.append([float(state["n"])])
                state["n"] += 1
            return np.array(rows)

        runner = CheckpointedRun(path, chunk_size=2)

        def die_after_one(chunk, start):
            if start >= 2:
                raise KeyboardInterrupt
            return process(chunk, start)

        with pytest.raises(KeyboardInterrupt):
            runner.run(list(range(6)), die_after_one,
                       get_state=lambda: state,
                       set_state=state.update)

        # Fresh process: the counter restarts at a wrong value unless the
        # checkpoint restores it.
        state.clear()
        state["n"] = 999
        out = CheckpointedRun(path, chunk_size=2).run(
            list(range(6)), process,
            get_state=lambda: state, set_state=state.update)
        np.testing.assert_array_equal(out, [[float(i)] for i in range(6)])


class TestRetryBackoff:
    def test_transient_failures_are_retried_with_backoff(self, tmp_path):
        sleeps = []
        attempts = {"n": 0}

        def flaky(chunk, start):
            if start == 4 and attempts["n"] < 2:
                attempts["n"] += 1
                raise ReproError("transient wobble")
            return square_chunk(chunk, start)

        runner = CheckpointedRun(tmp_path / "flaky.npz", chunk_size=4,
                                 max_retries=3, backoff_base=0.05,
                                 backoff_cap=2.0, sleep=sleeps.append)
        out = runner.run(list(range(8)), flaky)
        np.testing.assert_array_equal(out, [[i, i * i] for i in range(8)])
        assert runner.stats.retries == 2
        assert sleeps == [0.05, 0.1]
        assert len(runner.stats.failures) == 2

    def test_backoff_is_capped(self, tmp_path):
        sleeps = []
        attempts = {"n": 0}

        def very_flaky(chunk, start):
            if attempts["n"] < 4:
                attempts["n"] += 1
                raise ReproError("still down")
            return square_chunk(chunk, start)

        runner = CheckpointedRun(tmp_path / "cap.npz", chunk_size=4,
                                 max_retries=5, backoff_base=0.05,
                                 backoff_cap=0.15, sleep=sleeps.append)
        runner.run(list(range(4)), very_flaky)
        assert sleeps == [0.05, 0.1, 0.15, 0.15]

    def test_retry_budget_exhaustion_raises(self, tmp_path):
        def hopeless(chunk, start):
            raise ReproError("permanently down")

        runner = CheckpointedRun(tmp_path / "dead.npz", chunk_size=4,
                                 max_retries=2, sleep=lambda s: None)
        with pytest.raises(CheckpointError, match="after 2 retries"):
            runner.run(list(range(4)), hopeless)

    def test_state_restored_before_each_retry(self, tmp_path):
        state = {"n": 0}
        attempts = {"n": 0}

        def advancing_then_failing(chunk, start):
            rows = []
            for _ in chunk:
                rows.append([float(state["n"])])
                state["n"] += 1
            if start == 2 and attempts["n"] == 0:
                attempts["n"] += 1
                raise ReproError("failed after consuming state")
            return np.array(rows)

        runner = CheckpointedRun(tmp_path / "restore.npz", chunk_size=2,
                                 sleep=lambda s: None)
        out = runner.run(list(range(4)), advancing_then_failing,
                         get_state=lambda: dict(state),
                         set_state=state.update)
        # Without the restore, the retried chunk would read 4 and 5.
        np.testing.assert_array_equal(out, [[0.0], [1.0], [2.0], [3.0]])


class _KillAfter(CheckpointedRun):
    """Checkpoint runner that dies after N successful chunk saves."""

    def __init__(self, *args, die_after=2, **kwargs):
        super().__init__(*args, **kwargs)
        self.die_after = die_after
        self._saves = 0

    def _save(self, blocks, n_done, fingerprint, state):
        super()._save(blocks, n_done, fingerprint, state)
        self._saves += 1
        if self._saves >= self.die_after:
            raise KeyboardInterrupt


class TestCampaignResume:
    """Acceptance criterion: a fig6-style CPA campaign killed mid-run
    resumes from its checkpoint and yields byte-identical results."""

    KEY = 0x2B
    PLAINTEXTS = list(range(48))

    def test_cpa_campaign_kill_and_resume_is_byte_identical(self, tmp_path):
        lib = build_cmos_library()
        path = tmp_path / "fig6_cmos.npz"

        reference = AttackCampaign(lib, self.KEY).run(self.PLAINTEXTS)

        campaign = AttackCampaign(lib, self.KEY)
        with pytest.raises(KeyboardInterrupt):
            campaign.run_checkpointed(
                _KillAfter(path, chunk_size=16, die_after=2),
                self.PLAINTEXTS)
        assert os.path.exists(path)

        resumed_campaign = AttackCampaign(lib, self.KEY)
        runner = CheckpointedRun(path, chunk_size=16)
        result = resumed_campaign.run_checkpointed(runner, self.PLAINTEXTS)
        assert runner.stats.chunks_resumed == 2
        assert runner.stats.chunks_run == 1

        np.testing.assert_array_equal(result.traces, reference.traces)
        np.testing.assert_array_equal(result.cpa.peak_per_guess,
                                      reference.cpa.peak_per_guess)

    def test_tvla_kill_and_resume_matches_uninterrupted(self, tmp_path):
        lib = build_cmos_library()
        netlist, _ = build_reduced_aes(lib)
        path = tmp_path / "tvla_cmos.npz"

        reference = fixed_vs_random_tvla(netlist, key=self.KEY, n_traces=32)

        with pytest.raises(KeyboardInterrupt):
            fixed_vs_random_tvla(
                netlist, key=self.KEY, n_traces=32,
                runner=_KillAfter(path, chunk_size=8, die_after=2))

        result = fixed_vs_random_tvla(
            netlist, key=self.KEY, n_traces=32,
            runner=CheckpointedRun(path, chunk_size=8))
        np.testing.assert_array_equal(result.t_values, reference.t_values)


class TestTelemetryEdgeCases:
    """Observability must never influence checkpoint semantics: resume
    works and stays byte-identical whether telemetry is off, in memory,
    or appending to a JSONL file — even one a previous kill corrupted."""

    def _killed_then_resumed(self, tmp_path, first_tele, second_tele):
        from repro.obs import MemorySink, Telemetry

        path = tmp_path / "obs.npz"
        reference = CheckpointedRun(tmp_path / "ref.npz", chunk_size=4).run(
            list(range(12)), square_chunk)
        with pytest.raises(KeyboardInterrupt):
            _KillAfter(path, chunk_size=4, die_after=2,
                       telemetry=first_tele).run(list(range(12)),
                                                 square_chunk)
        runner = CheckpointedRun(path, chunk_size=4, telemetry=second_tele)
        out = runner.run(list(range(12)), square_chunk)
        np.testing.assert_array_equal(out, reference)
        assert runner.stats.chunks_resumed == 2

    def test_resume_with_telemetry_enabled_both_sides(self, tmp_path):
        from repro.obs import MemorySink, Telemetry

        first = Telemetry(sinks=[MemorySink()])
        second = Telemetry(sinks=[MemorySink()])
        self._killed_then_resumed(tmp_path, first, second)
        assert any(s["name"] == "checkpoint.save"
                   for s in first.sinks[0].spans())
        assert any(s["name"] == "checkpoint.load"
                   for s in second.sinks[0].spans())
        assert second.registry.counter("checkpoint.chunks_resumed").value \
            == 2
        assert second.registry.histogram(
            "checkpoint.load_seconds").snapshot()["count"] == 1

    def test_resume_after_telemetry_is_turned_off(self, tmp_path):
        from repro.obs import MemorySink, Telemetry

        self._killed_then_resumed(tmp_path,
                                  Telemetry(sinks=[MemorySink()]), None)

    def test_resume_after_telemetry_is_turned_on(self, tmp_path):
        from repro.obs import MemorySink, Telemetry

        self._killed_then_resumed(tmp_path, None,
                                  Telemetry(sinks=[MemorySink()]))

    def test_corrupt_jsonl_sink_does_not_poison_resume(self, tmp_path):
        """The trace file is append-only: a resume pointed at a trace
        torn by the kill (or overwritten with garbage) neither raises
        nor changes the computed rows."""
        from repro.obs import JsonlSink, Telemetry, read_jsonl

        trace = tmp_path / "campaign.jsonl"
        path = tmp_path / "obs.npz"
        reference = CheckpointedRun(tmp_path / "ref.npz", chunk_size=4).run(
            list(range(12)), square_chunk)

        first = Telemetry(sinks=[JsonlSink(trace)])
        with pytest.raises(KeyboardInterrupt):
            _KillAfter(path, chunk_size=4, die_after=2,
                       telemetry=first).run(list(range(12)), square_chunk)
        first.close()

        # Simulate the kill tearing the trace mid-record.
        with open(trace, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "span", "name": "torn')

        second = Telemetry(sinks=[JsonlSink(trace)])
        runner = CheckpointedRun(path, chunk_size=4, telemetry=second)
        out = runner.run(list(range(12)), square_chunk)
        second.close()
        np.testing.assert_array_equal(out, reference)

        # Lenient reading recovers every intact record around the tear.
        records = read_jsonl(trace)
        assert any(r.get("name") == "checkpoint.load" for r in records)
        assert any(r.get("name") == "checkpoint.save" for r in records)

    def test_redirecting_telemetry_mid_campaign_is_harmless(self, tmp_path):
        """First half traced to file A, resume traced to file B: rows
        identical and both traces individually well-formed."""
        from repro.obs import JsonlSink, Telemetry, read_jsonl, validate_stream

        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        path = tmp_path / "redir.npz"
        reference = CheckpointedRun(tmp_path / "ref.npz", chunk_size=4).run(
            list(range(12)), square_chunk)

        first = Telemetry(sinks=[JsonlSink(a)])
        with pytest.raises(KeyboardInterrupt):
            _KillAfter(path, chunk_size=4, die_after=2,
                       telemetry=first).run(list(range(12)), square_chunk)
        first.close()

        second = Telemetry(sinks=[JsonlSink(b)])
        out = CheckpointedRun(path, chunk_size=4, telemetry=second).run(
            list(range(12)), square_chunk)
        second.close()
        np.testing.assert_array_equal(out, reference)
        validate_stream(read_jsonl(a, strict=True))
        validate_stream(read_jsonl(b, strict=True))
