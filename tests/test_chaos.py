"""Chaos tests: killed workers, runaway-solve budgets, ERC preflight,
and crash-durable checkpoints.

The fault-tolerance contract under test:

* a CPA campaign whose fork workers are SIGKILLed mid-chunk completes
  with trace bytes and key rank identical to a serial run, and the
  requeue/rebuild is visible in telemetry;
* a pool whose workers die systematically falls back to the thread
  backend after a bounded number of rebuilds instead of looping;
* runaway DC/transient solves stop at deterministic budgets with a
  structured :class:`BudgetExhaustedError` carrying diagnostics;
* the ERC rejects each class of malformed circuit with structured
  findings before any Newton iteration;
* checkpoint saves survive crashes (fsync before rename, directory
  fsync after) and failed saves never corrupt the previous checkpoint.

Set ``REPRO_CHAOS_ARTIFACT=/path/out.jsonl`` to have the worker-kill
run leave its validated failure-telemetry JSONL behind (CI uploads it).
"""

import gc
import json
import math
import os

import numpy as np
import pytest

from repro.cells import build_pg_mcml_library, preflight_library
from repro.cells.functions import function
from repro.cells.pgmcml import PgMcmlCellGenerator
from repro.errors import (
    AttackError,
    BudgetExhaustedError,
    ConvergenceError,
    ErcError,
    ReproError,
)
from repro.experiments.runner import CheckpointedRun
from repro.faultinject import Fault, FaultInjector, WorkerKillSwitch
from repro.obs import MemorySink, Telemetry, validate_stream
from repro.sca import AcquisitionPool, AttackCampaign, TraceAcquirer, \
    acquire_traces, cpa_attack
from repro.sca.acquisition import _FORK_ACQUIRERS, _fork_available
from repro.sca.attack import build_reduced_aes
from repro.spice import Circuit, DC, SolveBudget, UNLIMITED_BUDGET, \
    check_circuit, erc_preflight, run_transient, solve_dc
from repro.spice.devices import Mosfet, Resistor
from repro.spice.erc import erc_enabled
from repro.spice.recovery import _ENV_CACHE
from repro.synth import build_sbox_ise
from repro.units import ns, ps

KEY = 0x2B
PTS = list(range(32))

fork_only = pytest.mark.skipif(not _fork_available(),
                               reason="fork start method unavailable")


@pytest.fixture(scope="module")
def campaign_setup():
    """(library, netlist, serial reference matrix) for the kill tests."""
    library = build_pg_mcml_library()
    netlist, _ = build_reduced_aes(library)
    serial = acquire_traces(netlist, KEY, PTS, workers=1)
    return library, netlist, serial


class _KillingAcquirer(TraceAcquirer):
    """Acquirer that pokes a kill switch at the top of every chunk."""

    kill_switch = None

    def acquire(self, plaintexts, trace_offset=0, **kwargs):
        if self.kill_switch is not None:
            self.kill_switch.poke()
        return super().acquire(plaintexts, trace_offset=trace_offset,
                               **kwargs)


def _events(tele, name=None):
    records = [r for r in tele.sinks[0].records if r["kind"] == "event"]
    if name is None:
        return records
    return [r for r in records if r["name"] == name]


class TestWorkerCrashRecovery:
    """Tentpole part 1: SIGKILLed fork workers, byte-identical output."""

    @fork_only
    def test_killed_worker_recovers_byte_identical(self, campaign_setup,
                                                   tmp_path):
        _, netlist, serial = campaign_setup
        switch = WorkerKillSwitch(str(tmp_path / "ks"), kills=1)

        def factory():
            acquirer = _KillingAcquirer(netlist, KEY)
            acquirer.kill_switch = switch
            return acquirer

        tele = Telemetry(sinks=[MemorySink()])
        with AcquisitionPool(factory, workers=2, backend="process",
                             chunk_size=8, telemetry=tele) as pool:
            rows = pool.acquire(PTS)
            assert pool.backend == "process"  # no fallback needed
        assert switch.pending() == 0, "the kill switch never fired"
        assert np.array_equal(rows, serial)

        lost = _events(tele, "sca.acquisition.worker_lost")
        rebuilt = _events(tele, "sca.acquisition.pool_rebuilt")
        assert lost and rebuilt
        assert lost[0]["attrs"]["requeued"] >= 1
        assert tele.registry.counter(
            "sca.acquisition.pool_rebuilds").value >= 1
        validate_stream(tele.sinks[0].records)

        artifact = os.environ.get("REPRO_CHAOS_ARTIFACT")
        if artifact:
            os.makedirs(os.path.dirname(artifact) or ".", exist_ok=True)
            with open(artifact, "w") as handle:
                for record in tele.sinks[0].records:
                    handle.write(json.dumps(record) + "\n")

    @fork_only
    def test_killed_worker_campaign_key_rank_matches_serial(
            self, campaign_setup, tmp_path):
        _, netlist, serial = campaign_setup
        switch = WorkerKillSwitch(str(tmp_path / "ks"), kills=1,
                                  kill_on_call=2)

        def factory():
            acquirer = _KillingAcquirer(netlist, KEY)
            acquirer.kill_switch = switch
            return acquirer

        with AcquisitionPool(factory, workers=2, backend="process",
                             chunk_size=4) as pool:
            rows = pool.acquire(PTS)
        assert np.array_equal(rows, serial)
        reference = cpa_attack(serial, PTS, true_key=KEY)
        recovered = cpa_attack(rows, PTS, true_key=KEY)
        assert recovered.rank_of_true_key() == reference.rank_of_true_key()

    @fork_only
    def test_systematic_deaths_fall_back_to_threads(self, campaign_setup,
                                                    tmp_path):
        """Every forked worker dies instantly: after max_pool_rebuilds
        the pool demotes itself to threads (where the kill switch is a
        no-op — threads share the exempt parent PID) and completes."""
        _, netlist, serial = campaign_setup
        switch = WorkerKillSwitch(str(tmp_path / "ks"), kills=1000)

        def factory():
            acquirer = _KillingAcquirer(netlist, KEY)
            acquirer.kill_switch = switch
            return acquirer

        tele = Telemetry(sinks=[MemorySink()])
        with AcquisitionPool(factory, workers=2, backend="process",
                             chunk_size=8, telemetry=tele,
                             max_pool_rebuilds=1) as pool:
            rows = pool.acquire(PTS)
            assert pool.backend == "thread"
            assert pool._token is None
        assert np.array_equal(rows, serial)
        fallback = _events(tele, "sca.acquisition.backend_fallback")
        assert fallback and fallback[0]["attrs"]["to_backend"] == "thread"

    @fork_only
    def test_registry_released_on_close(self, campaign_setup):
        _, netlist, _ = campaign_setup
        pool = AcquisitionPool(lambda: TraceAcquirer(netlist, KEY),
                               workers=2, backend="process")
        pool._ensure_started()
        token = pool._token
        assert token in _FORK_ACQUIRERS
        pool.close()
        assert token not in _FORK_ACQUIRERS
        pool.close()  # idempotent

    @fork_only
    def test_registry_released_when_pool_is_abandoned(self, campaign_setup):
        """A pool dropped without close() (caller crashed) must not leak
        its acquirer in the module registry."""
        _, netlist, _ = campaign_setup
        pool = AcquisitionPool(lambda: TraceAcquirer(netlist, KEY),
                               workers=2, backend="process")
        pool._ensure_started()
        token = pool._token
        executor = pool._executor
        assert token in _FORK_ACQUIRERS
        del pool
        gc.collect()
        assert token not in _FORK_ACQUIRERS
        executor.shutdown()

    def test_rebuild_budget_is_validated(self, campaign_setup):
        _, netlist, _ = campaign_setup
        with pytest.raises(AttackError):
            AcquisitionPool(lambda: TraceAcquirer(netlist, KEY),
                            max_pool_rebuilds=-1)


# -- solve budgets ------------------------------------------------------------


def _oscillating_divider(magnitude=5e-3):
    """A trivially solvable divider made unsolvable by an oscillate
    fault (residual inconsistent with Jacobian — no Newton converges)."""
    c = Circuit("osc")
    c.v("vdd", "vdd", 1.0)
    c.resistor("r1", "vdd", "n1", 1e3)
    c.resistor("r2", "n1", "0", 1e3)
    injector = FaultInjector(c, [Fault("r2", "oscillate",
                                       magnitude=magnitude)])
    injector.arm()
    return c, injector


class TestSolveBudgets:
    """Tentpole part 2: deterministic budgets on DC and transient."""

    def test_dc_newton_iteration_budget(self):
        circuit, _ = _oscillating_divider()
        with pytest.raises(BudgetExhaustedError) as info:
            solve_dc(circuit, budget=SolveBudget(max_newton_iterations=10))
        err = info.value
        assert err.error_code == "E_BUDGET_EXHAUSTED"
        assert err.context["scope"] == "dc"
        assert err.context["limit"] == "max_newton_iterations"
        assert err.diagnostics is not None
        assert err.diagnostics.budget_exhausted == "max_newton_iterations"
        json.dumps(err.to_dict())  # structured and serializable

    def test_dc_ladder_attempt_budget(self):
        circuit, _ = _oscillating_divider()
        with pytest.raises(BudgetExhaustedError) as info:
            solve_dc(circuit, budget=SolveBudget(max_ladder_attempts=2))
        assert info.value.context["limit"] == "max_ladder_attempts"
        assert len(info.value.diagnostics.attempts) == 2

    def test_unlimited_budget_still_plain_convergence_error(self):
        circuit, _ = _oscillating_divider()
        with pytest.raises(ConvergenceError) as info:
            solve_dc(circuit)
        assert not isinstance(info.value, BudgetExhaustedError)
        assert info.value.context.get("scope") == "dc"

    def test_budget_does_not_change_a_converging_solve(self):
        c = Circuit("div")
        c.v("vdd", "vdd", 1.0)
        c.resistor("r1", "vdd", "n1", 1e3)
        c.resistor("r2", "n1", "0", 1e3)
        free = solve_dc(c)
        capped = solve_dc(c, budget=SolveBudget(max_newton_iterations=100,
                                                max_ladder_attempts=4))
        assert free["n1"] == capped["n1"]

    def test_transient_step_budget(self):
        c = Circuit("rc")
        c.v("vin", "a", DC(1.0))
        c.resistor("r", "a", "b", 1e3)
        c.capacitor("cl", "b", "0", 1e-12)
        with pytest.raises(BudgetExhaustedError) as info:
            run_transient(c, tstop=ns(10), dt=ps(100),
                          budget=SolveBudget(max_transient_steps=5))
        err = info.value
        assert err.context["scope"] == "transient"
        assert err.context["limit"] == "max_transient_steps"
        assert err.context["steps_taken"] > 0

    def test_transient_rejection_budget(self):
        c = Circuit("rc")
        c.v("vin", "a", DC(1.0))
        c.resistor("r", "a", "b", 1e3)
        c.capacitor("cl", "b", "0", 1e-12)
        injector = FaultInjector(c, [
            Fault("r", "oscillate", t_start=ns(0.2), magnitude=5e-3)])
        with injector, pytest.raises(BudgetExhaustedError) as info:
            run_transient(c, tstop=ns(10), dt=ps(100),
                          on_step=injector.set_time,
                          budget=SolveBudget(max_transient_rejections=2))
        assert info.value.context["limit"] == "max_transient_rejections"

    def test_budget_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVE_BUDGET", raising=False)
        assert SolveBudget.from_env() is UNLIMITED_BUDGET
        monkeypatch.setenv("REPRO_SOLVE_BUDGET", "500")
        assert SolveBudget.from_env() == SolveBudget(
            max_newton_iterations=500)
        monkeypatch.setenv("REPRO_SOLVE_BUDGET",
                           "iters=50,attempts=2,rejections=3,steps=1000")
        assert SolveBudget.from_env() == SolveBudget(
            max_newton_iterations=50, max_ladder_attempts=2,
            max_transient_rejections=3, max_transient_steps=1000)

    def test_budget_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVE_BUDGET", "iters=-1")
        _ENV_CACHE.clear()
        with pytest.raises(ReproError):
            SolveBudget.from_env()
        _ENV_CACHE.clear()

    def test_budget_exhaustion_is_counted(self):
        circuit, _ = _oscillating_divider()
        tele = Telemetry(sinks=[MemorySink()])
        with pytest.raises(BudgetExhaustedError):
            solve_dc(circuit, budget=SolveBudget(max_newton_iterations=10),
                     telemetry=tele)
        assert tele.registry.counter("spice.budget.dc_exhausted").value == 1
        assert _events(tele, "spice.budget.exhausted")


# -- ERC ----------------------------------------------------------------------


class TestErcRules:
    """Tentpole part 3: every rule class catches its malformation."""

    def test_floating_node(self):
        c = Circuit("float")
        c.v("vs", "a", 1.0)
        c.resistor("r1", "a", "0", 1e3)
        c.capacitor("cf", "dangle", "a", 1e-15)
        report = check_circuit(c)
        assert [f.rule for f in report.findings] == ["floating-node"]
        assert report.findings[0].nodes == ("dangle",)
        assert "cf" in report.findings[0].devices

    def test_no_dc_path(self):
        c = Circuit("island")
        c.v("vs", "a", 1.0)
        c.resistor("r1", "a", "0", 1e3)
        c.capacitor("c1", "a", "x", 1e-15)
        c.resistor("r2", "x", "y", 1e3)
        c.capacitor("c2", "y", "0", 1e-15)
        report = check_circuit(c)
        assert [f.rule for f in report.findings] == ["no-dc-path"]
        assert report.findings[0].nodes == ("x", "y")

    def test_shorted_supply(self):
        c = Circuit("short")
        c.v("v1", "vdd", 1.2)
        c.resistor("rs", "vdd", "0", 1e-3)
        report = check_circuit(c)
        assert [f.rule for f in report.findings] == ["shorted-supply"]
        assert "rs" in report.findings[0].devices

    def test_rail_tie_resistor_is_not_a_short(self):
        # Constant cells tie an output leg to a rail through 1 Ω:
        # legal, and pinned here so SHORT_RESISTANCE stays below it.
        c = Circuit("tie")
        c.v("v1", "vdd", 1.2)
        c.resistor("rtie", "vdd", "0", 1.0)
        assert check_circuit(c).ok

    def test_duplicate_names(self):
        # The Circuit builder rejects duplicates eagerly, so the ERC
        # rule guards netlists assembled by direct list manipulation
        # (deserializers, generated code).
        c = Circuit("dup")
        c.v("vs", "a", 1.0)
        c.resistor("r1", "a", "0", 1e3)
        c.devices.append(Resistor("r1", "a", "0", 2e3))
        c.devices.append(Resistor("vs", "a", "0", 3e3))
        report = check_circuit(c)
        rules = [f.rule for f in report.findings]
        assert rules.count("duplicate-name") == 2

    def test_ungated_tail_and_missing_sleep(self):
        generator = PgMcmlCellGenerator()
        cell = generator.build(function("BUF"), erc=False)
        cell.circuit.devices[:] = [d for d in cell.circuit.devices
                                   if not d.name.endswith("_sleep")]
        with pytest.raises(ErcError) as info:
            generator.erc_check(cell)
        assert set(info.value.context["rules"]) == \
            {"missing-sleep", "ungated-tail"}
        assert info.value.error_code == "E_ERC"
        json.dumps(info.value.to_dict())

    def test_sleep_gate_tied_to_ground(self):
        generator = PgMcmlCellGenerator()
        cell = generator.build(function("BUF"), erc=False)
        devices = cell.circuit.devices
        for i, device in enumerate(devices):
            if device.name.endswith("_sleep"):
                # swap_device enforces identical terminals, so rewire
                # the gate by list surgery (what a buggy generator or
                # netlist deserializer would effectively do).
                devices[i] = Mosfet(device.name, device.drain, "0",
                                    device.source, device.bulk,
                                    device.model)
        with pytest.raises(ErcError) as info:
            generator.erc_check(cell)
        assert "missing-sleep" in info.value.context["rules"]

    def test_generator_build_runs_preflight_by_default(self):
        assert erc_enabled()
        cell = PgMcmlCellGenerator().build(function("NAND2"))
        assert cell.sleep_net is not None  # built and checked

    def test_env_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_ERC", "off")
        assert not erc_enabled()
        monkeypatch.setenv("REPRO_ERC", "on")
        assert erc_enabled()

    def test_campaign_start_runs_preflight(self, campaign_setup):
        library, _, _ = campaign_setup
        tele = Telemetry(sinks=[MemorySink()])
        AttackCampaign(library, KEY, telemetry=tele)
        assert tele.registry.counter("spice.erc.checks").value >= 3

    def test_campaign_erc_opt_out(self, campaign_setup):
        library, _, _ = campaign_setup
        tele = Telemetry(sinks=[MemorySink()])
        AttackCampaign(library, KEY, telemetry=tele, erc=False)
        assert tele.registry.counter("spice.erc.checks").value == 0

    def test_synthesis_runs_preflight(self, campaign_setup, monkeypatch):
        library, _, _ = campaign_setup
        calls = []
        monkeypatch.setattr("repro.synth.sbox_unit.preflight_library",
                            lambda lib, **kw: calls.append(lib))
        build_sbox_ise(library, n_sboxes=1)
        assert calls == [library]
        build_sbox_ise(library, n_sboxes=1, erc=False)
        assert calls == [library]

    def test_preflight_telemetry_on_failure(self):
        c = Circuit("bad")
        c.v("vs", "a", 1.0)
        c.resistor("r1", "a", "0", 1e3)
        c.capacitor("cf", "dangle", "a", 1e-15)
        tele = Telemetry(sinks=[MemorySink()])
        with pytest.raises(ErcError):
            erc_preflight(c, telemetry=tele)
        assert tele.registry.counter("spice.erc.failures").value == 1
        findings = _events(tele, "spice.erc.finding")
        assert findings and findings[0]["attrs"]["rule"] == "floating-node"

    def test_library_preflight_all_styles_clean(self):
        from repro.cells import build_cmos_library, build_mcml_library
        for build in (build_pg_mcml_library, build_mcml_library,
                      build_cmos_library):
            for report in preflight_library(build()):
                assert report.ok


# -- durable checkpoints ------------------------------------------------------


class TestDurableCheckpoint:
    def test_save_fsyncs_file_and_directory(self, tmp_path, monkeypatch):
        fsynced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (fsynced.append(fd), real_fsync(fd))[1])
        runner = CheckpointedRun(tmp_path / "c.npz", chunk_size=4)
        runner._save([np.ones((2, 3))], 2, {"n_items": 2}, {"k": 1})
        assert len(fsynced) >= 2  # temp file, then its directory
        rows, n_done, meta, state = runner.load()
        assert rows.shape == (2, 3) and n_done == 2
        assert meta["n_items"] == 2 and state == {"k": 1}

    def test_failed_save_preserves_previous_checkpoint(self, tmp_path,
                                                       monkeypatch):
        runner = CheckpointedRun(tmp_path / "c.npz", chunk_size=4)
        runner._save([np.ones((2, 3))], 2, {"n_items": 2}, None)

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", explode)
        with pytest.raises(OSError):
            runner._save([np.ones((4, 3))], 4, {"n_items": 4}, None)
        monkeypatch.undo()
        rows, n_done, _, _ = runner.load()
        assert n_done == 2 and rows.shape == (2, 3)
        leftovers = [p for p in os.listdir(tmp_path)
                     if p != "c.npz"]
        assert leftovers == []  # temp file cleaned up


# -- failure taxonomy ---------------------------------------------------------


def _all_subclasses(cls):
    out = set()
    for sub in cls.__subclasses__():
        out.add(sub)
        out |= _all_subclasses(sub)
    return out


class TestFailureTaxonomy:
    """Tentpole part 4: structured, serializable error codes everywhere."""

    def test_every_repro_error_has_a_code(self):
        import repro.errors  # noqa: F401 - registers the subclasses
        for cls in _all_subclasses(ReproError) | {ReproError}:
            code = cls.default_error_code
            assert code.startswith("E_"), cls

    def test_context_survives_to_dict(self):
        err = ConvergenceError("no luck", iterations=7,
                               residual=math.nan,
                               context={"scope": "dc", "arr": (1, 2)})
        payload = err.to_dict()
        assert payload["error_code"] == "E_CONVERGENCE"
        assert payload["iterations"] == 7
        assert payload["residual"] is None  # NaN is not JSON
        assert payload["context"]["arr"] == [1, 2]
        json.dumps(payload)

    def test_numpy_context_values_serialize(self):
        # Regression: np scalars/arrays land in contexts constantly
        # (trace indices, residuals) and json.dumps refuses both, which
        # used to crash JSONL sinks mid-post-mortem.
        err = ReproError("numpy-laden failure", context={
            "index": np.int64(7),
            "residual": np.float64(1.5),
            "nan": np.float64("nan"),
            "flag": np.bool_(True),
            "rows": np.arange(4.0).reshape(2, 2),
            "nested": {"worst": np.float32(2.5), "ranks": [np.int32(3)]},
        })
        payload = err.to_dict()
        json.dumps(payload)  # must not raise
        ctx = payload["context"]
        assert ctx["index"] == 7 and isinstance(ctx["index"], int)
        assert ctx["residual"] == 1.5 and isinstance(ctx["residual"], float)
        assert ctx["nan"] is None  # NaN is not JSON
        assert ctx["flag"] is True
        assert ctx["rows"] == [[0.0, 1.0], [2.0, 3.0]]
        assert ctx["nested"] == {"worst": 2.5, "ranks": [3]}

    def test_erc_report_round_trips_jsonl(self):
        c = Circuit("bad")
        c.v("vs", "a", 1.0)
        c.resistor("r1", "a", "0", 1e3)
        c.capacitor("cf", "dangle", "a", 1e-15)
        report = check_circuit(c)
        line = json.dumps(report.to_dict())
        back = json.loads(line)
        assert back["ok"] is False
        assert back["findings"][0]["rule"] == "floating-node"


class TestOpCacheFaultInjection:
    """The operating-point cache must never serve a faulted circuit.

    Content addressing is the invalidation mechanism: arming a
    :class:`FaultInjector` swaps real devices for :class:`FaultyDevice`
    proxies, whose class the fingerprint does not recognise — so an
    armed circuit bypasses the cache entirely (no stale hit, no
    poisoned store), and disarming restores the original content key.
    """

    def _bench(self):
        ckt = Circuit("opcache_fault")
        ckt.v("vs", "a", 1.0)
        ckt.resistor("r1", "a", "b", 1e3)
        ckt.resistor("r2", "b", "0", 1e3)
        return ckt

    def test_armed_faults_bypass_disarm_restores(self):
        from repro.spice import OperatingPointCache
        cache = OperatingPointCache()
        ckt = self._bench()
        baseline = solve_dc(ckt, op_cache=cache)
        assert cache.counters()["stores"] == 1

        injector = FaultInjector(ckt, [Fault("r2", "perturb",
                                             magnitude=1e-4)])
        with injector:
            faulted = solve_dc(ckt, op_cache=cache)
            # The proxy cannot be fingerprinted: bypass, not hit/store.
            assert cache.bypasses == 1
            assert cache.hits == 0
            assert len(cache) == 1
        assert faulted.voltages["b"] != pytest.approx(
            baseline.voltages["b"], rel=1e-6)

        restored = solve_dc(ckt, op_cache=cache)
        assert cache.hits == 1
        assert restored.voltages == baseline.voltages

    def test_swap_survivor_is_a_different_key(self):
        """A fault that permanently swaps a device value must miss."""
        from repro.spice import OperatingPointCache
        from repro.spice.devices import Resistor as R
        cache = OperatingPointCache()
        ckt = self._bench()
        solve_dc(ckt, op_cache=cache)
        ckt.swap_device("r2", R("r2", "b", "0", 2e3))
        solve_dc(ckt, op_cache=cache)
        assert cache.hits == 0 and cache.misses == 2 and len(cache) == 2

    def test_transient_with_faults_and_cache_env(self, monkeypatch):
        """REPRO_OP_CACHE=1 + armed faults: the run completes and the
        default cache records only bypasses for the faulted circuit."""
        from repro.spice import OP_CACHE_ENV, default_op_cache
        from repro.spice import opcache as opcache_mod
        monkeypatch.setenv(OP_CACHE_ENV, "1")
        monkeypatch.setattr(opcache_mod, "_DEFAULT_CACHE", None)
        ckt = self._bench()
        ckt.capacitor("cb", "b", "0", 1e-13)
        injector = FaultInjector(ckt, [Fault("r1", "open",
                                             t_start=2e-9, t_stop=4e-9)])
        with injector:
            res = run_transient(ckt, tstop=6e-9, dt=2e-10,
                                on_step=injector.set_time)
        cache = default_op_cache()
        assert cache is not None
        assert cache.bypasses >= 1 and cache.hits == 0 and len(cache) == 0
        assert np.all(np.isfinite(res.wave("b").v))
