"""Tests for repro.units: SI parsing, formatting, scale helpers."""

import math

import pytest

from repro.errors import UnitsError
from repro import units
from repro.units import clamp, db20, format_si, parse_si


class TestScaleHelpers:
    def test_ns(self):
        assert units.ns(2.5) == pytest.approx(2.5e-9)

    def test_ps(self):
        assert units.ps(50) == pytest.approx(50e-12)

    def test_fs(self):
        assert units.fs(3) == pytest.approx(3e-15)

    def test_us_ms(self):
        assert units.us(7) == pytest.approx(7e-6)
        assert units.ms(7) == pytest.approx(7e-3)

    def test_capacitance(self):
        assert units.fF(1.2) == pytest.approx(1.2e-15)
        assert units.pF(0.5) == pytest.approx(0.5e-12)

    def test_current(self):
        assert units.uA(50) == pytest.approx(50e-6)
        assert units.nA(0.1) == pytest.approx(1e-10)
        assert units.mA(30) == pytest.approx(0.03)

    def test_power_voltage(self):
        assert units.uW(47.77) == pytest.approx(47.77e-6)
        assert units.mW(490.56) == pytest.approx(0.49056)
        assert units.mV(400) == pytest.approx(0.4)

    def test_length(self):
        assert units.um(2.8) == pytest.approx(2.8e-6)
        assert units.nm(90) == pytest.approx(90e-9)

    def test_frequency(self):
        assert units.MHz(400) == pytest.approx(4e8)
        assert units.GHz(1.2) == pytest.approx(1.2e9)


class TestParseSi:
    def test_plain_number(self):
        assert parse_si("42") == 42.0

    def test_micro(self):
        assert parse_si("50u") == pytest.approx(50e-6)

    def test_micro_sign(self):
        assert parse_si("50µ") == pytest.approx(50e-6)

    def test_nano_with_unit(self):
        assert parse_si("1.2nF") == pytest.approx(1.2e-9)

    def test_meg(self):
        assert parse_si("3meg") == pytest.approx(3e6)

    def test_kilo(self):
        assert parse_si("8k") == pytest.approx(8000.0)

    def test_negative(self):
        assert parse_si("-0.5m") == pytest.approx(-5e-4)

    def test_exponent(self):
        assert parse_si("1e-5") == pytest.approx(1e-5)

    def test_exponent_and_prefix(self):
        assert parse_si("1e3k") == pytest.approx(1e6)

    def test_unit_without_prefix(self):
        assert parse_si("3V") == 3.0

    def test_whitespace(self):
        assert parse_si("  2.5n  ") == pytest.approx(2.5e-9)

    def test_empty_raises(self):
        with pytest.raises(UnitsError):
            parse_si("")

    def test_non_string_raises(self):
        with pytest.raises(UnitsError):
            parse_si(5.0)

    def test_no_number_raises(self):
        with pytest.raises(UnitsError):
            parse_si("abc")


class TestFormatSi:
    def test_zero(self):
        assert format_si(0.0, "A") == "0A"

    def test_micro(self):
        assert format_si(50e-6, "A") == "50uA"

    def test_nano(self):
        assert format_si(2.5e-9, "s") == "2.5ns"

    def test_kilo(self):
        assert format_si(8.2e3) == "8.2k"

    def test_negative(self):
        assert format_si(-3e-3, "V") == "-3mV"

    def test_roundtrip(self):
        for value in (1e-13, 4.7e-9, 3.3e-6, 0.12, 47.0, 9.1e7):
            assert parse_si(format_si(value)) == pytest.approx(value, rel=1e-3)

    def test_non_finite(self):
        assert "inf" in format_si(float("inf"), "A")


class TestMisc:
    def test_db20(self):
        assert db20(10.0) == pytest.approx(20.0)

    def test_db20_non_positive(self):
        with pytest.raises(UnitsError):
            db20(0.0)

    def test_clamp_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_clamp_edges(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_clamp_reversed(self):
        with pytest.raises(UnitsError):
            clamp(0.5, 1.0, 0.0)
