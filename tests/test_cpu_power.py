"""Tests for the instruction-level leakage model and system-level study."""

import numpy as np
import pytest

from repro.cpu import CPU, aes_firmware, assemble
from repro.cpu.isa import Instruction
from repro.errors import TraceError
from repro.power.cpu_power import (
    ALPHA_WRITEBACK,
    BASE_CURRENT,
    CpuLeakageModel,
    software_aes_traces,
)
from repro.sca import cpa_attack


def run_snippet(source, model=None):
    model = model or CpuLeakageModel(noise_sigma=0.0)
    cpu = CPU(memory_size=1 << 16)
    cpu.load_image(assemble(source))
    cpu.pc = 0
    return model.trace_program(cpu), cpu


class TestInstructionLeak:
    def test_one_sample_per_instruction(self):
        trace, cpu = run_snippet("l.addi r1, r0, 1\nl.nop 1\n")
        assert trace.size == cpu.stats.instructions == 2

    def test_writeback_hw_leaks(self):
        t_zero, _ = run_snippet("l.addi r1, r0, 0\nl.nop 1\n")
        t_ones, _ = run_snippet("l.addi r1, r0, 0xFF\nl.nop 1\n")
        delta = t_ones[0] - t_zero[0]
        assert delta == pytest.approx(8 * ALPHA_WRITEBACK, rel=1e-6)

    def test_r0_writes_do_not_leak(self):
        t, _ = run_snippet("l.addi r0, r0, 0xFF\nl.nop 1\n")
        assert t[0] == pytest.approx(BASE_CURRENT, rel=1e-6)

    def test_store_leaks_data_hw(self):
        base = ("l.addi r2, r0, 0x100\n"
                "l.addi r1, r0, {val}\n"
                "l.sw 0(r2), r1\n"
                "l.nop 1\n")
        t_zero, _ = run_snippet(base.format(val=0))
        t_ones, _ = run_snippet(base.format(val=0xFF))
        assert t_ones[2] > t_zero[2]

    def test_protected_sbox_suppresses_lookup_leak(self):
        src = "l.addi r1, r0, 0xFF\nl.sbox r2, r1\nl.nop 1\n"
        unprot = CpuLeakageModel(noise_sigma=0.0)
        prot = CpuLeakageModel(noise_sigma=0.0, protected_sbox=True,
                               protected_writeback=True)
        t_u, _ = run_snippet(src, unprot)
        t_p, _ = run_snippet(src, prot)
        # Compare the data-dependent part above the base current.
        assert (t_p[1] - BASE_CURRENT) < 0.2 * (t_u[1] - BASE_CURRENT)

    def test_noise_differs_across_traces(self):
        model = CpuLeakageModel(noise_sigma=1e-6)
        t1, _ = run_snippet("l.nop\nl.nop 1\n", model)
        t2, _ = run_snippet("l.nop\nl.nop 1\n", model)
        assert not np.array_equal(t1, t2)

    def test_runaway_detected(self):
        model = CpuLeakageModel(noise_sigma=0.0)
        cpu = CPU(memory_size=1 << 12)
        cpu.load_image(assemble("loop: l.j loop\n"))
        with pytest.raises(TraceError):
            model.trace_program(cpu, max_instructions=100)


class TestSoftwareTraces:
    KEY = bytes([0x2B]) + bytes(range(1, 16))

    def make_traces(self, n=48, **model_kwargs):
        rng = np.random.default_rng(7)
        pts = [int(x) for x in rng.integers(0, 256, size=n)]
        blocks = [bytes([p]) + bytes(15) for p in pts]
        model = CpuLeakageModel(**model_kwargs)
        traces = software_aes_traces(
            lambda: aes_firmware(1, use_ise=False), self.KEY, blocks,
            model=model)
        return traces, pts

    def test_aligned_by_cycle(self):
        traces, _ = self.make_traces(n=4)
        assert traces.ndim == 2
        assert traces.shape[0] == 4

    def test_software_aes_is_breakable(self):
        traces, pts = self.make_traces(n=64)
        result = cpa_attack(traces, pts, true_key=0x2B)
        assert result.rank_of_true_key() == 0

    def test_window_and_cycles_exclusive(self):
        with pytest.raises(TraceError):
            software_aes_traces(
                lambda: aes_firmware(1), self.KEY,
                [bytes(16)], window=(0, 5), cycles=[1, 2])

    def test_cycle_selection(self):
        blocks = [bytes(16), bytes([1] + [0] * 15)]
        traces = software_aes_traces(
            lambda: aes_firmware(1), self.KEY, blocks, cycles=[5, 10, 15])
        assert traces.shape == (2, 3)

    def test_bad_cycles_rejected(self):
        with pytest.raises(TraceError):
            software_aes_traces(
                lambda: aes_firmware(1), self.KEY, [bytes(16)],
                cycles=[10 ** 9])


class TestSystemStudy:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import software_attack
        return software_attack.run(n_traces=80)

    def test_expected_pattern(self, result):
        assert result.matches_expectation()

    def test_software_lookup_broken(self, result):
        assert result.scenario("software lookup", "full").broken

    def test_protected_unit_resists_at_its_cycles(self, result):
        row = result.scenario("ISE, protected path", "sbox")
        assert not row.broken
        assert row.rank > 10

    def test_cmos_writeback_leaks(self, result):
        assert result.scenario("ISE, CMOS writeback", "sbox").broken

    def test_surrounding_software_still_leaks(self, result):
        assert result.scenario("ISE, protected path", "full").broken
