"""Tests for the layout model and cell datasheets (Tables 1 & 2 geometry)."""

import pytest

from repro.cells import (
    Cell,
    DelayModel,
    LayoutModel,
    PowerModel,
    SITE_COUNTS_CMOS,
    SITE_COUNTS_MCML,
    function,
)
from repro.cells.layout import (
    estimate_sites,
    library_area_um2,
    mcml_transistor_count,
)
from repro.errors import CellError
from repro.units import fF, ps, uA


class TestTable1Areas:
    """The published Table 1 values, reproduced exactly."""

    @pytest.mark.parametrize("cell,mcml_um2,pg_um2", [
        ("BUF", 7.056, 7.448),
        ("MUX4", 19.7568, 20.8544),
        ("AND4", 16.9344, 17.8752),
        ("DLATCH", 8.4672, 8.9376),
    ])
    def test_exact_areas(self, cell, mcml_um2, pg_um2):
        assert LayoutModel("mcml").area_um2(cell) == pytest.approx(
            mcml_um2, rel=1e-9)
        assert LayoutModel("pgmcml").area_um2(cell) == pytest.approx(
            pg_um2, rel=1e-9)

    def test_overhead_constant_56_percent(self):
        for name in SITE_COUNTS_MCML:
            ratio = (LayoutModel("pgmcml").area_um2(name)
                     / LayoutModel("mcml").area_um2(name))
            assert ratio == pytest.approx(7.448 / 7.056, rel=1e-9)


class TestTable2Areas:
    @pytest.mark.parametrize("cell,area", [
        ("BUF", 7.448), ("DIFF2SINGLE", 8.9376), ("AND2", 8.9376),
        ("AND3", 13.40641), ("AND4", 17.8752), ("MUX2", 8.9376),
        ("MUX4", 20.8544), ("MAJ32", 17.8752), ("XOR2", 8.9376),
        ("XOR3", 17.8752), ("XOR4", 20.8544), ("DLATCH", 8.9376),
        ("DFF", 17.8752), ("DFFR", 26.8128), ("EDFF", 23.8336),
        ("FA", 35.7504),
    ])
    def test_pg_mcml_area(self, cell, area):
        assert LayoutModel("pgmcml").area_um2(cell) == pytest.approx(
            area, rel=1e-4)


class TestLayoutModel:
    def test_unknown_style(self):
        with pytest.raises(CellError):
            LayoutModel("ecl").site_width()

    def test_unknown_cell(self):
        with pytest.raises(CellError):
            LayoutModel("cmos").area_um2("FROB")

    def test_width_um(self):
        assert LayoutModel("mcml").width_um("BUF") == pytest.approx(
            5 * 0.504, rel=1e-9)

    def test_library_area_histogram(self):
        total = library_area_um2({"BUF": 2, "AND2": 1}, "pgmcml")
        assert total == pytest.approx(2 * 7.448 + 8.9376, rel=1e-9)

    def test_library_area_negative_count(self):
        with pytest.raises(CellError):
            library_area_um2({"BUF": -1}, "mcml")

    def test_cmos_sites_cover_reference_cells(self):
        for name in ("INV", "NAND2", "MUX2", "DFF", "FA"):
            assert SITE_COUNTS_CMOS[name] > 0


class TestEstimator:
    def test_transistor_count_buffer(self):
        # Buffer: 1 pair (2T) + 2 loads + tail = 5; +1 sleep for PG.
        assert mcml_transistor_count(function("BUF"), False) == 5
        assert mcml_transistor_count(function("BUF"), True) == 6

    def test_transistor_count_grows_with_inputs(self):
        and2 = mcml_transistor_count(function("AND2"), False)
        and4 = mcml_transistor_count(function("AND4"), False)
        assert and4 > and2

    def test_latch_topology_count(self):
        # Clock + track + hold pairs (6T) + 2 loads + tail.
        assert mcml_transistor_count(function("DLATCH"), False) == 9

    def test_estimator_within_40_percent(self):
        for name in ("BUF", "AND2", "AND3", "AND4", "XOR2", "MUX2"):
            est = estimate_sites(function(name), "pgmcml")
            actual = SITE_COUNTS_MCML[name]
            assert abs(est - actual) / actual < 0.45

    def test_estimator_unknown_style(self):
        with pytest.raises(CellError):
            estimate_sites(function("BUF"), "ttl")


class TestCellDatasheet:
    def make_power(self, style="pgmcml"):
        return PowerModel(style=style, iss=uA(50), sleep_leak=1e-10,
                          residual_sigma=5e-8, wake_time=ps(300))

    def make_cell(self, **kwargs):
        defaults = dict(
            name="BUF", function=function("BUF"), style="pgmcml",
            sites=5, area_um2=7.448, input_cap=fF(1.2),
            delay_model=DelayModel(ps(14), 8000.0),
            power=self.make_power())
        defaults.update(kwargs)
        return Cell(**defaults)

    def test_delay_linear_in_load(self):
        cell = self.make_cell()
        d1 = cell.delay(fF(1))
        d2 = cell.delay(fF(2))
        assert d2 - d1 == pytest.approx(8000.0 * fF(1))

    def test_default_delay_uses_own_input(self):
        cell = self.make_cell()
        assert cell.delay() == pytest.approx(cell.delay(fF(1.2)))

    def test_fo4(self):
        cell = self.make_cell()
        assert cell.fo4_delay() > cell.delay()

    def test_style_mismatch_rejected(self):
        with pytest.raises(CellError):
            self.make_cell(power=PowerModel(style="cmos", leak=1e-9))

    def test_negative_load_rejected(self):
        with pytest.raises(CellError):
            self.make_cell().delay(-1e-15)

    def test_power_static_current_modes(self):
        p = self.make_power()
        assert p.static_current() == pytest.approx(uA(50))
        assert p.static_current(asleep=True) == pytest.approx(1e-10)

    def test_mcml_cannot_sleep(self):
        p = PowerModel(style="mcml", iss=uA(50))
        with pytest.raises(CellError):
            p.static_current(asleep=True)

    def test_sleep_leak_below_iss_enforced(self):
        with pytest.raises(CellError):
            PowerModel(style="pgmcml", iss=uA(1), sleep_leak=uA(2))

    def test_mcml_needs_positive_iss(self):
        with pytest.raises(CellError):
            PowerModel(style="mcml", iss=0.0)

    def test_with_measurement_changes_source(self):
        cell = self.make_cell()
        updated = cell.with_measurement(DelayModel(ps(20), 8000.0),
                                        self.make_power())
        assert updated.source == "characterized"
        assert updated.delay_model.intrinsic == pytest.approx(ps(20))
