"""Bank-vs-loop equivalence of the vectorized MNA assembly.

The banked path (:mod:`repro.spice.banks`) must reproduce the reference
per-device loop's residual, Jacobian, and fixed-node currents to
floating-point rounding (the issue's bound is 1e-12; in practice the
two agree to ~1e-15 because both evaluate the same EKV arithmetic with
the same forward-difference step).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cells.functions import function
from repro.cells.mcml import McmlCellGenerator
from repro.cells.pgmcml import PgMcmlCellGenerator
from repro.errors import CircuitError
from repro.spice import Circuit, solve_dc
from repro.spice.dc import _ASSEMBLY_ENV, System
from repro.spice.devices import Mosfet
from repro.tech import NMOS_LVT, PMOS_LVT, TECH90
from repro.units import um

VDD = 1.2


def biased_cell(style: str, fn_name: str = "AND2",
                sleep_on: bool = True) -> Circuit:
    """A generated cell with rails, bias, and DC inputs attached."""
    gen_cls = PgMcmlCellGenerator if style == "pgmcml" else McmlCellGenerator
    gen = gen_cls(TECH90)
    cell = gen.build(function(fn_name), load_cap=2e-15)
    ckt = cell.circuit
    ckt.v("vdd", cell.vdd_net, TECH90.vdd)
    ckt.v("vvn", cell.vn_net, gen.sizing.vn)
    ckt.v("vvp", cell.vp_net, gen.sizing.vp)
    if cell.has_sleep:
        ckt.v("vslp", cell.sleep_net, TECH90.vdd if sleep_on else 0.0)
    swing = gen.sizing.swing
    for i, (pos, neg) in enumerate(cell.input_nets.values()):
        hi = i % 2 == 0
        ckt.v(f"vi{i}p", pos, TECH90.vdd - (0.0 if hi else swing))
        ckt.v(f"vi{i}n", neg, TECH90.vdd - (swing if hi else 0.0))
    return ckt


def mixed_circuit() -> Circuit:
    """Every banked device class at once, plus a capacitor (skipped)."""
    c = Circuit("mixed")
    c.v("vdd", "vdd", VDD)
    c.resistor("r1", "vdd", "a", 1e3)
    c.resistor("r2", "a", "b", 2e3)
    c.isource("i1", "b", "0", 1e-5)
    c.capacitor("c1", "a", "0", 1e-15)
    c.mosfet("mn", "b", "a", "0", "0", NMOS_LVT, w=um(0.3), l=um(0.1))
    c.mosfet("mp", "b", "a", "vdd", "vdd", PMOS_LVT, w=um(0.6), l=um(0.1))
    return c


def assert_assemblies_agree(circuit: Circuit, x: np.ndarray,
                            gmin: float = 0.0, t: float = 0.0) -> None:
    bank = System(circuit, assembly="bank")
    loop = System(circuit, assembly="loop")
    fixed = circuit.fixed_nodes(t)
    f_b, j_b = bank.residual_and_jacobian(x, fixed, gmin)
    f_l, j_l = loop.residual_and_jacobian(x, fixed, gmin)
    np.testing.assert_allclose(f_b, f_l, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(j_b, j_l, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(bank.residual_only(x, fixed, gmin), f_l,
                               rtol=1e-9, atol=1e-12)
    cur_b = bank.fixed_node_currents(x, fixed)
    cur_l = loop.fixed_node_currents(x, fixed)
    assert set(cur_b) == set(cur_l)
    for node in cur_b:
        assert cur_b[node] == pytest.approx(cur_l[node], rel=1e-9,
                                            abs=1e-15)


class TestEquivalence:
    @pytest.mark.parametrize("gmin", [0.0, 1e-9, 1e-3])
    def test_mixed_devices(self, gmin):
        circuit = mixed_circuit()
        rng = np.random.default_rng(7)
        n = len(circuit.unknown_nodes())
        for _ in range(5):
            assert_assemblies_agree(circuit, rng.uniform(0.0, VDD, n),
                                    gmin=gmin)

    @pytest.mark.parametrize("style,sleep_on", [("mcml", True),
                                                ("pgmcml", True),
                                                ("pgmcml", False)])
    def test_cell_random_bias(self, style, sleep_on):
        circuit = biased_cell(style, sleep_on=sleep_on)
        rng = np.random.default_rng(11)
        n = len(circuit.unknown_nodes())
        for _ in range(3):
            assert_assemblies_agree(circuit, rng.uniform(0.0, VDD, n))

    def test_solve_dc_agreement(self):
        circuit = biased_cell("pgmcml")
        op_bank = solve_dc(circuit, system=System(circuit, assembly="bank"))
        op_loop = solve_dc(circuit, system=System(circuit, assembly="loop"))
        for node, volt in op_bank.voltages.items():
            assert volt == pytest.approx(op_loop.voltages[node], abs=1e-9)
        for name, cur in op_bank.source_currents.items():
            assert cur == pytest.approx(op_loop.source_currents[name],
                                        abs=1e-15)

    @given(st.integers(0, 2**32 - 1),
           st.sampled_from(["BUF", "AND2", "XOR2"]),
           st.sampled_from([("mcml", True), ("pgmcml", True),
                            ("pgmcml", False)]))
    @settings(max_examples=15, deadline=None)
    def test_property_random_cells(self, seed, fn_name, style_sleep):
        """The issue's property test: any cell, any bias point."""
        style, sleep_on = style_sleep
        circuit = biased_cell(style, fn_name, sleep_on=sleep_on)
        rng = np.random.default_rng(seed)
        x = rng.uniform(-0.2, VDD + 0.2, len(circuit.unknown_nodes()))
        assert_assemblies_agree(circuit, x, gmin=rng.choice([0.0, 1e-6]))


class TestScatterFallback:
    def test_bincount_path_matches_dense(self, monkeypatch):
        """Above the dense-operator footprint ceiling, the plan falls
        back to bincount accumulation; both must deposit identically."""
        import repro.spice.banks as banks

        circuit = mixed_circuit()
        x = np.linspace(0.1, 1.0, len(circuit.unknown_nodes()))
        fixed = circuit.fixed_nodes()
        dense = System(circuit, assembly="bank")
        f_d, j_d = dense.residual_and_jacobian(x, fixed, 0.0)
        monkeypatch.setattr(banks, "_DENSE_LIMIT", 0)
        sparse = System(circuit, assembly="bank")
        assert all(b.plan.s_f is None for b in sparse.bank_assembly().banks)
        f_s, j_s = sparse.residual_and_jacobian(x, fixed, 0.0)
        np.testing.assert_array_equal(f_d, f_s)
        np.testing.assert_array_equal(j_d, j_s)
        np.testing.assert_array_equal(
            dense.bank_assembly().fixed_totals(
                dense.full_volts(x, fixed), x, fixed),
            sparse.bank_assembly().fixed_totals(
                sparse.full_volts(x, fixed), x, fixed))
        cur = sparse.fixed_node_currents(x, fixed)
        assert set(cur) == set(fixed)


class TestLoopBlockFallback:
    def test_subclass_goes_to_loop_block(self):
        """Subclasses may override currents(); only exact banked types
        take the vectorized path."""

        class ScaledMosfet(Mosfet):
            def currents(self, volts):
                return [2.0 * i for i in super().currents(volts)]

        circuit = mixed_circuit()
        original = circuit.device("mn")
        circuit.swap_device("mn", ScaledMosfet(
            "mn", *original.terminals, original.model))
        system = System(circuit, assembly="bank")
        assembly = system.bank_assembly()
        assert assembly.loop is not None
        assert any(type(d) is ScaledMosfet
                   for d, _, _ in assembly.loop.entries)
        x = np.linspace(0.2, 0.9, system.n)
        assert_assemblies_agree(circuit, x)

    def test_loop_block_fixed_totals(self):
        circuit = mixed_circuit()
        original = circuit.device("mp")

        class Proxy(Mosfet):
            pass

        circuit.swap_device("mp", Proxy("mp", *original.terminals,
                                        original.model))
        system = System(circuit, assembly="bank")
        x = np.linspace(0.1, 1.1, system.n)
        fixed = circuit.fixed_nodes()
        cur_b = system.fixed_node_currents(x, fixed)
        cur_l = System(circuit, assembly="loop").fixed_node_currents(x, fixed)
        for node in cur_b:
            assert cur_b[node] == pytest.approx(cur_l[node], rel=1e-9,
                                                abs=1e-15)


class TestStaleness:
    def test_swap_device_rebuilds_banks(self):
        circuit = mixed_circuit()
        system = System(circuit, assembly="bank")
        fixed = circuit.fixed_nodes()
        x = np.full(system.n, 0.5)
        before = system.residual_only(x, fixed, 0.0)
        first = system.bank_assembly()
        assert system.bank_assembly() is first  # cached while unchanged
        original = circuit.device("r1")
        from repro.spice.devices import Resistor
        circuit.swap_device("r1", Resistor("r1", *original.terminals, 10e3))
        rebuilt = system.bank_assembly()
        assert rebuilt is not first
        after = system.residual_only(x, fixed, 0.0)
        assert not np.allclose(before, after)
        loop_after = System(circuit, assembly="loop").residual_only(
            x, fixed, 0.0)
        np.testing.assert_allclose(after, loop_after, rtol=1e-9, atol=1e-12)


class TestAssemblySelection:
    def test_invalid_assembly_argument(self):
        with pytest.raises(CircuitError, match="assembly"):
            System(mixed_circuit(), assembly="simd")

    def test_invalid_assembly_env(self, monkeypatch):
        monkeypatch.setenv(_ASSEMBLY_ENV, "nope")
        with pytest.raises(CircuitError, match="assembly"):
            System(mixed_circuit())

    def test_env_selects_loop(self, monkeypatch):
        monkeypatch.setenv(_ASSEMBLY_ENV, "loop")
        assert System(mixed_circuit()).assembly == "loop"

    def test_default_is_bank(self, monkeypatch):
        monkeypatch.delenv(_ASSEMBLY_ENV, raising=False)
        assert System(mixed_circuit()).assembly == "bank"
