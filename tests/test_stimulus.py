"""Tests for the DC / PWL / Pulse / Clock stimuli."""

import pytest

from repro.errors import CircuitError
from repro.spice import Clock, DC, Pulse, PWL
from repro.units import ns, ps


class TestDC:
    def test_constant(self):
        s = DC(1.2)
        assert s.value(0.0) == 1.2
        assert s.value(1e9) == 1.2

    def test_no_breakpoints(self):
        assert DC(0.0).breakpoints() == []


class TestPWL:
    def test_interpolation(self):
        s = PWL([(0.0, 0.0), (1.0, 1.0)])
        assert s.value(0.5) == pytest.approx(0.5)

    def test_hold_before_and_after(self):
        s = PWL([(1.0, 2.0), (2.0, 4.0)])
        assert s.value(0.0) == 2.0
        assert s.value(9.0) == 4.0

    def test_breakpoints(self):
        s = PWL([(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)])
        assert s.breakpoints() == [0.0, 1.0, 2.0]

    def test_empty_rejected(self):
        with pytest.raises(CircuitError):
            PWL([])

    def test_non_monotonic_rejected(self):
        with pytest.raises(CircuitError):
            PWL([(1.0, 0.0), (0.5, 1.0)])


class TestPulse:
    def pulse(self, period=0.0):
        return Pulse(v0=0.0, v1=1.2, delay=ns(1), rise=ps(100),
                     fall=ps(100), width=ns(2), period=period)

    def test_initial_level(self):
        assert self.pulse().value(0.0) == 0.0

    def test_high_level(self):
        assert self.pulse().value(ns(2)) == 1.2

    def test_mid_rise(self):
        assert self.pulse().value(ns(1) + ps(50)) == pytest.approx(0.6)

    def test_mid_fall(self):
        t = ns(1) + ps(100) + ns(2) + ps(50)
        assert self.pulse().value(t) == pytest.approx(0.6)

    def test_back_to_low(self):
        assert self.pulse().value(ns(5)) == 0.0

    def test_single_pulse_stays_low(self):
        assert self.pulse().value(ns(100)) == 0.0

    def test_periodic_repeat(self):
        p = self.pulse(period=ns(10))
        assert p.value(ns(2)) == p.value(ns(12)) == 1.2

    def test_zero_rise_time(self):
        p = Pulse(0.0, 1.0, 0.0, 0.0, 0.0, ns(1))
        assert p.value(ps(1)) == 1.0

    def test_negative_timing_rejected(self):
        with pytest.raises(CircuitError):
            Pulse(0, 1, -1e-9, 0, 0, 1e-9)

    def test_period_too_short_rejected(self):
        with pytest.raises(CircuitError):
            Pulse(0, 1, 0, ns(1), ns(1), ns(1), period=ns(2))

    def test_breakpoints_sorted_within_pulse(self):
        bp = self.pulse().breakpoints()
        assert bp == sorted(bp)

    def test_periodic_breakpoints_cover_cycles(self):
        bp = self.pulse(period=ns(10)).breakpoints()
        assert any(b > ns(20) for b in bp)


class TestClock:
    def test_fifty_percent_duty(self):
        clk = Clock(0.0, 1.2, period=ns(2.5), transition=ps(100))
        high = sum(1 for k in range(1000)
                   if clk.value(k * ns(2.5) / 1000) > 0.6)
        assert high == pytest.approx(500, abs=60)

    def test_period_positive(self):
        with pytest.raises(CircuitError):
            Clock(0, 1, period=0.0, transition=ps(10))

    def test_transition_bounded(self):
        with pytest.raises(CircuitError):
            Clock(0, 1, period=ns(1), transition=ns(1))
