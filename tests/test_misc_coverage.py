"""Edge-case coverage across small utility surfaces."""

import io

import numpy as np
import pytest

from repro.errors import (
    AttackError,
    CircuitError,
    ReproError,
    TraceError,
)
from repro.experiments.runner import ExperimentRecord, print_table, \
    records_table
from repro.power.trace import TraceGrid, _deposit_triangles
from repro.spice import Waveform


class TestExperimentRunner:
    def test_record_ratio(self):
        rec = ExperimentRecord("x", measured=2.0, paper=4.0, unit="um2")
        assert rec.ratio == pytest.approx(0.5)

    def test_record_without_paper_value(self):
        rec = ExperimentRecord("x", measured=2.0)
        assert rec.ratio is None
        assert rec.row()[2] == "-"

    def test_record_zero_paper_value(self):
        rec = ExperimentRecord("x", measured=2.0, paper=0.0)
        assert rec.ratio is None

    def test_print_table_returns_text(self, capsys):
        text = print_table([["a", "1"], ["bb", "22"]], ["col", "val"])
        out = capsys.readouterr().out
        assert "col" in text and text in out

    def test_print_table_empty_rejected(self):
        with pytest.raises(ReproError):
            print_table([], ["h"])

    def test_records_table(self, capsys):
        text = records_table([ExperimentRecord("q", 1.0, 2.0, "V")])
        assert "quantity" in text


class TestDepositTriangle:
    def grid(self):
        return TraceGrid(0.0, 1e-9, 1e-11)

    def test_charge_conserved(self):
        """The integral of the deposited pulse equals the charge."""
        grid = self.grid()
        samples = np.zeros(grid.n)
        charge = 5e-15
        _deposit_triangles(samples, grid, np.array([0.3e-9]),
                           np.array([charge]), 100e-12)
        integral = np.trapezoid(samples, grid.times()) if hasattr(
            np, "trapezoid") else np.trapz(samples, grid.times())
        assert integral == pytest.approx(charge, rel=0.05)

    def test_pulse_is_local(self):
        grid = self.grid()
        samples = np.zeros(grid.n)
        _deposit_triangles(samples, grid, np.array([0.5e-9]),
                           np.array([1e-15]), 100e-12)
        times = grid.times()
        outside = samples[(times < 0.49e-9) | (times > 0.61e-9)]
        assert np.all(outside == 0.0)

    def test_pulse_clipped_at_grid_edges(self):
        grid = self.grid()
        samples = np.zeros(grid.n)
        _deposit_triangles(samples, grid, np.array([0.97e-9]),
                           np.array([1e-15]), 100e-12)
        assert np.isfinite(samples).all()

    def test_off_grid_pulse_ignored(self):
        grid = self.grid()
        samples = np.zeros(grid.n)
        _deposit_triangles(samples, grid, np.array([5e-9]),
                           np.array([1e-15]), 100e-12)
        assert np.all(samples == 0.0)


class TestErrorTaxonomy:
    def test_all_derive_from_repro_error(self):
        from repro import errors
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj is not Exception:
                assert issubclass(obj, errors.ReproError) or \
                    obj is errors.ReproError

    def test_convergence_error_carries_diagnostics(self):
        from repro.errors import ConvergenceError
        err = ConvergenceError("no", iterations=7, residual=1e-3)
        assert err.iterations == 7
        assert err.residual == pytest.approx(1e-3)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise TraceError("x")
        with pytest.raises(ReproError):
            raise AttackError("x")
        with pytest.raises(ReproError):
            raise CircuitError("x")


class TestWaveformEdges:
    def test_crossing_exactly_at_sample(self):
        w = Waveform([0.0, 1.0, 2.0], [0.0, 0.5, 1.0])
        times = w.crossings(0.5, "rise")
        assert len(times) == 1
        assert times[0] == pytest.approx(1.0)

    def test_flat_segments_skipped(self):
        w = Waveform([0, 1, 2, 3], [0.0, 0.5, 0.5, 1.0])
        # The flat 0.5 plateau must not double-count a crossing of 0.5.
        assert len(w.crossings(0.5, "rise")) == 1

    def test_settle_value_single_point_window(self):
        # Slicing is sample-based: a trailing window holding only the
        # final sample settles to that sample's value.
        w = Waveform([0.0, 10.0], [1.0, 3.0])
        assert w.settle_value(0.5) == pytest.approx(3.0)


class TestDisassemblerListing:
    def test_every_encoded_word_disassembles(self):
        from repro.cpu import aes_firmware, disassemble
        from repro.cpu.assembler import assemble
        fw = aes_firmware(n_blocks=1, use_ise=True,
                          expand_key_on_core=True)
        image = assemble(fw.source)
        # Walk the code region word by word until the halt NOP.
        addr = 0
        count = 0
        while True:
            word = (image.get(addr, 0) << 24) | \
                (image.get(addr + 1, 0) << 16) | \
                (image.get(addr + 2, 0) << 8) | image.get(addr + 3, 0)
            text = disassemble(word)
            assert text  # every instruction word must round-trip
            count += 1
            if text == "l.nop 1":
                break
            addr += 4
        assert count > 500  # the unrolled AES body
