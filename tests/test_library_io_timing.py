"""Tests for library JSON round-trips and wire-aware timing."""

import io
import json

import pytest

from repro.cells import (
    build_cmos_library,
    build_mcml_library,
    build_pg_mcml_library,
    library_from_dict,
    library_to_dict,
    load_library,
    save_library,
)
from repro.cells.io import cell_from_dict, cell_to_dict
from repro.errors import CellError
from repro.netlist import GateNetlist, static_timing, wire_delay
from repro.synth import build_sbox_ise, place


@pytest.fixture(scope="module")
def pg():
    return build_pg_mcml_library()


class TestCellRoundtrip:
    def test_fields_preserved(self, pg):
        original = pg.cell("BUF")
        rebuilt = cell_from_dict(cell_to_dict(original))
        assert rebuilt.name == original.name
        assert rebuilt.area_um2 == original.area_um2
        assert rebuilt.delay_model.intrinsic == \
            original.delay_model.intrinsic
        assert rebuilt.power.iss == original.power.iss
        assert rebuilt.power.sleep_leak == original.power.sleep_leak

    def test_pseudo_flag_survives(self, pg):
        swap = cell_from_dict(cell_to_dict(pg.cell("RAILSWAP")))
        assert swap.pseudo

    def test_missing_field_rejected(self):
        with pytest.raises(CellError):
            cell_from_dict({"name": "BUF"})


class TestLibraryRoundtrip:
    @pytest.mark.parametrize("build", [build_cmos_library,
                                       build_mcml_library,
                                       build_pg_mcml_library])
    def test_full_roundtrip(self, build):
        original = build()
        buf = io.StringIO()
        save_library(buf, original)
        buf.seek(0)
        loaded = load_library(buf)
        assert loaded.names() == original.names()
        assert loaded.style == original.style
        for name in original.names():
            assert loaded.cell(name).area_um2 == pytest.approx(
                original.cell(name).area_um2)
            assert loaded.cell(name).delay_model.intrinsic == \
                pytest.approx(original.cell(name).delay_model.intrinsic)

    def test_file_roundtrip(self, pg, tmp_path):
        path = str(tmp_path / "pg.json")
        save_library(path, pg)
        loaded = load_library(path)
        assert len(loaded) == len(pg)

    def test_json_is_valid_and_sorted(self, pg):
        buf = io.StringIO()
        save_library(buf, pg)
        data = json.loads(buf.getvalue())
        names = [c["name"] for c in data["cells"]]
        assert names == sorted(names)
        assert data["style"] == "pgmcml"

    def test_version_checked(self, pg):
        data = library_to_dict(pg)
        data["format_version"] = 99
        with pytest.raises(CellError):
            library_from_dict(data)

    def test_duplicate_cell_rejected(self, pg):
        data = library_to_dict(pg)
        data["cells"].append(data["cells"][0])
        with pytest.raises(CellError):
            library_from_dict(data)

    def test_loaded_library_is_usable(self, pg):
        """A reloaded library must drive synthesis like the original."""
        from repro.synth import map_lut
        buf = io.StringIO()
        save_library(buf, pg)
        buf.seek(0)
        loaded = load_library(buf)
        block = map_lut(loaded, {"y": [0, 1, 1, 0]}, ["a", "b"])
        assert block.netlist.total_cells() >= 1


class TestWireAwareTiming:
    @pytest.fixture(scope="class")
    def ise(self):
        return build_sbox_ise(build_mcml_library())

    def test_routed_slower_than_logical(self, ise):
        placement = place(ise.netlist)
        logical = static_timing(ise.netlist)
        routed = static_timing(ise.netlist, placement=placement)
        assert routed.critical_delay > logical.critical_delay

    def test_wire_delay_positive_for_real_nets(self, ise):
        placement = place(ise.netlist)
        delays = [wire_delay(ise.netlist, placement, n)
                  for n in list(ise.netlist.nets)[:50]]
        assert any(d > 0 for d in delays)
        assert all(d >= 0 for d in delays)

    def test_single_pin_net_has_no_wire(self):
        lib = build_cmos_library()
        nl = GateNetlist("one", lib)
        nl.add_primary_input("a")
        nl.add_instance("INV", {"A": "a", "Y": "y"}, name="u")
        placement = place(nl)
        # 'y' has a driver but no sinks -> fewer than two placed points.
        assert wire_delay(nl, placement, "y") == 0.0

    def test_differential_wire_penalty(self):
        """The same topology pays more wire delay in the fat-wire
        differential flow than in CMOS."""
        def routed_minus_logical(build):
            nl = GateNetlist("chain", build())
            nl.add_primary_input("a")
            prev = "a"
            cell = "BUF"
            for i in range(60):
                nl.add_instance(cell, {"A": prev, "Y": f"n{i}"},
                                name=f"u{i}")
                prev = f"n{i}"
            placement = place(nl)
            return (static_timing(nl, placement=placement).critical_delay
                    - static_timing(nl).critical_delay)

        assert routed_minus_logical(build_mcml_library) > \
            routed_minus_logical(build_cmos_library)
