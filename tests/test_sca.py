"""Tests for leakage models, CPA, DPA, and metrics on synthetic traces."""

import numpy as np
import pytest

from repro.aes import SBOX
from repro.errors import AttackError
from repro.sca import (
    cpa_attack,
    correlation_matrix,
    dpa_attack,
    guessing_entropy,
    hamming_distance,
    hamming_weight,
    hd_model,
    hw_model,
    key_rank,
    mtd,
    success_rate,
)
from repro.sca.leakage import all_guess_hypotheses


class TestLeakageModels:
    def test_hamming_weight(self):
        assert hamming_weight(0x00) == 0
        assert hamming_weight(0xFF) == 8
        assert hamming_weight(0xA5) == 4

    def test_hamming_weight_negative(self):
        with pytest.raises(AttackError):
            hamming_weight(-1)

    def test_hamming_distance(self):
        assert hamming_distance(0xFF, 0x00) == 8
        assert hamming_distance(0x0F, 0x0E) == 1

    def test_hw_model_values(self):
        pts = [0x00, 0x10]
        out = hw_model(pts, key_guess=0x00)
        assert out[0] == hamming_weight(SBOX[0x00])
        assert out[1] == hamming_weight(SBOX[0x10])

    def test_hw_model_validation(self):
        with pytest.raises(AttackError):
            hw_model([0], key_guess=300)
        with pytest.raises(AttackError):
            hw_model([], key_guess=0)
        with pytest.raises(AttackError):
            hw_model([256], key_guess=0)

    def test_hd_model(self):
        out = hd_model([0x00], key_guess=0x00, reference=SBOX[0x00])
        assert out[0] == 0.0

    def test_all_guess_matrix_shape(self):
        hyp = all_guess_hypotheses(list(range(16)))
        assert hyp.shape == (256, 16)


def synthetic_traces(key, n_traces=200, n_samples=20, leak_sample=7,
                     gain=1.0, noise=0.2, seed=0):
    """HW-leaking traces at one sample, Gaussian noise elsewhere."""
    rng = np.random.default_rng(seed)
    plaintexts = rng.integers(0, 256, size=n_traces)
    traces = rng.normal(0.0, noise, size=(n_traces, n_samples))
    leak = np.array([hamming_weight(SBOX[p ^ key]) for p in plaintexts])
    traces[:, leak_sample] += gain * leak
    return traces, plaintexts.tolist()


class TestCorrelationMatrix:
    def test_perfect_correlation(self):
        traces = np.array([[1.0], [2.0], [3.0]])
        hyp = np.array([[1.0, 2.0, 3.0]])
        rho = correlation_matrix(traces, hyp)
        assert rho[0, 0] == pytest.approx(1.0)

    def test_anti_correlation(self):
        traces = np.array([[1.0], [2.0], [3.0]])
        hyp = np.array([[3.0, 2.0, 1.0]])
        assert correlation_matrix(traces, hyp)[0, 0] == pytest.approx(-1.0)

    def test_constant_column_yields_zero(self):
        traces = np.ones((10, 3))
        hyp = np.arange(10, dtype=float).reshape(1, 10)
        rho = correlation_matrix(traces, hyp)
        assert np.all(rho == 0.0)

    def test_shape_validation(self):
        with pytest.raises(AttackError):
            correlation_matrix(np.ones((5, 2)), np.ones((3, 4)))
        with pytest.raises(AttackError):
            correlation_matrix(np.ones(5), np.ones((1, 5)))


class TestCPA:
    def test_recovers_key_from_clean_leak(self):
        traces, pts = synthetic_traces(key=0x3C)
        result = cpa_attack(traces, pts, true_key=0x3C)
        assert result.succeeded
        assert result.rank_of_true_key() == 0

    def test_peak_at_leaking_sample(self):
        traces, pts = synthetic_traces(key=0x3C, leak_sample=7)
        result = cpa_attack(traces, pts, true_key=0x3C)
        assert int(np.abs(result.rho[0x3C]).argmax()) == 7

    def test_fails_on_pure_noise(self):
        rng = np.random.default_rng(42)
        traces = rng.normal(size=(200, 20))
        pts = rng.integers(0, 256, size=200).tolist()
        result = cpa_attack(traces, pts, true_key=0x3C)
        # With no signal the key is essentially random: demand only that
        # the margin criterion reports indistinguishability.
        assert result.distinguishability() < 1.5

    def test_distinguishability_above_one_on_success(self):
        traces, pts = synthetic_traces(key=0x11, gain=3.0, noise=0.1)
        result = cpa_attack(traces, pts, true_key=0x11)
        assert result.distinguishability() > 1.2

    def test_unknown_true_key(self):
        traces, pts = synthetic_traces(key=0x3C)
        result = cpa_attack(traces, pts)
        assert result.succeeded is None
        with pytest.raises(AttackError):
            result.rank_of_true_key()

    def test_repr(self):
        traces, pts = synthetic_traces(key=0x3C)
        assert "CPAResult" in repr(cpa_attack(traces, pts, true_key=0x3C))


class TestDPA:
    def test_recovers_key_single_bit_leak(self):
        rng = np.random.default_rng(3)
        key = 0x42
        pts = rng.integers(0, 256, size=600)
        traces = rng.normal(0, 0.05, size=(600, 10))
        bit = (np.array([SBOX[p ^ key] for p in pts]) >> 2) & 1
        traces[:, 4] += 1.0 * bit
        result = dpa_attack(traces, pts.tolist(), target_bit=2,
                            true_key=key)
        assert result.succeeded

    def test_bit_range_validated(self):
        with pytest.raises(AttackError):
            dpa_attack(np.ones((4, 2)), [0, 1, 2, 3], target_bit=9)

    def test_count_mismatch(self):
        with pytest.raises(AttackError):
            dpa_attack(np.ones((4, 2)), [0, 1])

    def test_rank_query(self):
        rng = np.random.default_rng(3)
        pts = rng.integers(0, 256, size=100)
        traces = rng.normal(size=(100, 5))
        result = dpa_attack(traces, pts.tolist(), true_key=0x10)
        assert 0 <= result.rank_of_true_key() <= 255


class TestMetrics:
    def test_key_rank_top(self):
        scores = np.zeros(256)
        scores[0x77] = 1.0
        assert key_rank(scores, 0x77) == 0

    def test_key_rank_bottom(self):
        scores = np.arange(256, dtype=float)
        assert key_rank(scores, 0) == 255

    def test_key_rank_validation(self):
        with pytest.raises(AttackError):
            key_rank([1.0, 2.0], 0)
        with pytest.raises(AttackError):
            key_rank(np.zeros(256), 300)

    def test_guessing_entropy(self):
        assert guessing_entropy([0, 10, 20]) == pytest.approx(10.0)
        with pytest.raises(AttackError):
            guessing_entropy([])

    def test_success_rate(self):
        assert success_rate([0, 0, 5, 200]) == pytest.approx(0.5)
        assert success_rate([0, 1, 2], order=3) == pytest.approx(1.0)
        with pytest.raises(AttackError):
            success_rate([0], order=0)

    def test_mtd_finds_threshold(self):
        traces, pts = synthetic_traces(key=0x3C, n_traces=240, gain=2.0,
                                       noise=0.3)
        threshold = mtd(traces, pts, true_key=0x3C, step=40)
        assert threshold is not None
        assert threshold <= 240

    def test_mtd_none_without_leak(self):
        rng = np.random.default_rng(0)
        traces = rng.normal(size=(120, 10))
        pts = rng.integers(0, 256, size=120).tolist()
        assert mtd(traces, pts, true_key=0x3C, step=40) is None

    def test_mtd_validation(self):
        with pytest.raises(AttackError):
            mtd(np.ones((4, 2)), [0, 1], true_key=0, step=0)
