"""Tests for AES-128 and the reduced SCA target, with hypothesis checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aes import (
    AES128,
    INV_SBOX,
    ReducedAES,
    SBOX,
    decrypt_block,
    encrypt_block,
    expand_key,
    gf_inverse,
    gf_mul,
    inv_sbox,
    sbox,
)
from repro.aes.sbox import AES_POLY, gf_pow, xtime
from repro.errors import ReproError


class TestGF:
    def test_mul_identity(self):
        for a in (0x01, 0x53, 0xFF):
            assert gf_mul(a, 1) == a

    def test_mul_zero(self):
        assert gf_mul(0x57, 0) == 0

    def test_known_product(self):
        # FIPS-197 example: {57} x {83} = {c1}.
        assert gf_mul(0x57, 0x83) == 0xC1

    def test_xtime(self):
        assert xtime(0x57) == 0xAE
        assert xtime(0xAE) == 0x47  # wraps through the polynomial

    def test_mul_commutative(self):
        for a, b in [(3, 7), (0x53, 0xCA), (0x80, 0x1B)]:
            assert gf_mul(a, b) == gf_mul(b, a)

    def test_inverse(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inverse(a)) == 1

    def test_inverse_of_zero_is_zero(self):
        assert gf_inverse(0) == 0

    def test_pow(self):
        assert gf_pow(0x02, 8) == gf_mul(gf_pow(0x02, 4), gf_pow(0x02, 4))

    def test_operand_range(self):
        with pytest.raises(ReproError):
            gf_mul(256, 1)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_distributive(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


class TestSbox:
    def test_fips_anchors(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_table(self):
        for x in range(256):
            assert INV_SBOX[SBOX[x]] == x

    def test_helpers_mask(self):
        assert sbox(0x100) == SBOX[0]
        assert inv_sbox(SBOX[5]) == 5

    def test_no_fixed_points(self):
        assert all(SBOX[x] != x for x in range(256))

    def test_poly_constant(self):
        assert AES_POLY == 0x11B


class TestAES128:
    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")

    def test_fips_appendix_b(self):
        pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        assert encrypt_block(pt, self.KEY).hex() == \
            "3925841d02dc09fbdc118597196a0b32"

    def test_fips_appendix_c1(self):
        pt = bytes.fromhex("00112233445566778899aabbccddeeff")
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        assert encrypt_block(pt, key).hex() == \
            "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_key_schedule_first_words(self):
        # FIPS-197 Appendix A.1 for the 2b7e... key.
        rks = expand_key(self.KEY)
        assert bytes(rks[0]) == self.KEY
        assert bytes(rks[1][:4]).hex() == "a0fafe17"

    def test_key_schedule_shape(self):
        rks = expand_key(self.KEY)
        assert len(rks) == 11
        assert all(len(rk) == 16 for rk in rks)

    def test_bad_block_length(self):
        with pytest.raises(ReproError):
            encrypt_block(b"short", self.KEY)
        with pytest.raises(ReproError):
            encrypt_block(bytes(16), b"short")

    def test_object_wrapper(self):
        aes = AES128(self.KEY)
        pt = bytes(range(16))
        assert aes.decrypt(aes.encrypt(pt)) == pt
        assert aes.encrypt_many([pt, pt]) == [aes.encrypt(pt)] * 2

    @given(st.binary(min_size=16, max_size=16),
           st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_decrypt_inverts_encrypt(self, pt, key):
        assert decrypt_block(encrypt_block(pt, key), key) == pt

    @given(st.binary(min_size=16, max_size=16))
    @settings(max_examples=10, deadline=None)
    def test_avalanche(self, pt):
        key = self.KEY
        ct1 = encrypt_block(pt, key)
        flipped = bytes([pt[0] ^ 0x01]) + pt[1:]
        ct2 = encrypt_block(flipped, key)
        diff_bits = sum(bin(a ^ b).count("1") for a, b in zip(ct1, ct2))
        assert diff_bits > 30  # ~64 expected


class TestReducedAES:
    def test_intermediate(self):
        r = ReducedAES(0x2B)
        assert r.intermediate(0x00) == 0x2B
        assert r.output(0x00) == SBOX[0x2B]

    def test_outputs_vectorised(self):
        r = ReducedAES(0x10)
        outs = r.outputs(range(4))
        assert outs == [SBOX[p ^ 0x10] for p in range(4)]

    def test_hypothesis_function_matches_device(self):
        r = ReducedAES(0x77)
        for p in (0, 1, 128, 255):
            assert ReducedAES.hypothesis(p, 0x77) == r.output(p)

    def test_all_pairs_enumeration(self):
        pairs = ReducedAES.all_pairs()
        assert len(pairs) == 65536
        assert pairs[0] == (0, 0)

    def test_range_validation(self):
        with pytest.raises(ReproError):
            ReducedAES(300)
        with pytest.raises(ReproError):
            ReducedAES(0).output(300)
