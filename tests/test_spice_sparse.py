"""Sparse MNA assembly + operating-point cache: the equivalence proof.

The sparse path (:mod:`repro.spice.sparse`) assembles the same
floating-point residual and Jacobian entries as the dense device banks
— one canonical ``nnz`` data vector instead of an ``(n, n)`` array —
and factors with SuperLU instead of LAPACK.  The contract proven here:

* **entry-for-entry Jacobian identity** — densifying the sparse data
  vector reproduces the bank Jacobian exactly (same bincount sums);
* **solution equivalence** — DC operating points, transient waveforms,
  and lockstep-batched waveforms agree across ``bank`` / ``loop`` /
  ``sparse`` to ≤1e-9 for all three library styles, sleep on and off;
* **identical control flow** — the Newton iteration counts and recovery
  ladder attempts of a PG-MCML buffer chain are byte-identical across
  assemblies (pinned as a regression reference);
* **the operating-point cache is safe** — hits are byte-identical to
  cold solves, content (not name) addressed, invalidated by
  ``swap_device`` and fault-proxy injection, and disabled by default.

Full-core (AES) cases are ``@pytest.mark.slow``: ERC preflight over the
complete elaborated core in every style, and the headline smoke test —
a supply-current transient of the 144k-device PG-MCML core that only
the sparse assembly can run.
"""

import os
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import (
    build_cmos_library,
    build_mcml_library,
    build_pg_mcml_library,
)
from repro.cells.cmos import CmosCellGenerator
from repro.cells.functions import function
from repro.cells.mcml import McmlCellGenerator
from repro.cells.pgmcml import PgMcmlCellGenerator
from repro.errors import CircuitError, ConvergenceError, SynthesisError
from repro.faultinject import Fault, FaultInjector
from repro.netlist import LogicSimulator
from repro.obs import Telemetry
from repro.spice import (
    Circuit,
    DC,
    OP_CACHE_ENV,
    OperatingPointCache,
    Pulse,
    default_op_cache,
    run_transient,
    run_transient_batch,
    solve_dc,
)
from repro.spice import sparse as sparse_mod
from repro.spice.dc import _ASSEMBLY_ENV, System
from repro.spice.erc import check_circuit
from repro.synth import (
    attach_core_testbench,
    build_aes_core,
    elaborate_netlist,
    initial_point,
    map_lut,
)
from repro.tech import TECH90
from repro.units import um

ASSEMBLIES = ("bank", "loop", "sparse")

#: Pinned reference trajectory of the 3-buffer PG-MCML chain DC solve
#: (TestDiagnosticsPinned): plain Newton converges without touching the
#: recovery ladder, in exactly this many iterations, in every assembly.
PINNED_CONVERGED_BY = "newton"
PINNED_ATTEMPTS = 1
PINNED_ITERATIONS = 16

#: (library style, sleep drive) cases — sleep only applies to PG-MCML.
STYLE_CASES = [
    ("cmos", None),
    ("mcml", None),
    ("pgmcml", True),
    ("pgmcml", False),
]

LIB_BUILDERS = {
    "cmos": build_cmos_library,
    "mcml": build_mcml_library,
    "pgmcml": build_pg_mcml_library,
}


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    """Equivalence runs must not inherit assembly/cache environment."""
    monkeypatch.delenv(_ASSEMBLY_ENV, raising=False)
    monkeypatch.delenv(OP_CACHE_ENV, raising=False)


# -- testbench builders -------------------------------------------------------

def biased_cell(style: str, fn_name: str = "AND2",
                sleep_on: bool = True) -> Circuit:
    """One generated differential cell with rails, bias, and DC inputs."""
    gen_cls = PgMcmlCellGenerator if style == "pgmcml" else McmlCellGenerator
    gen = gen_cls(TECH90)
    cell = gen.build(function(fn_name), load_cap=2e-15)
    ckt = cell.circuit
    ckt.v("vdd", cell.vdd_net, TECH90.vdd)
    ckt.v("vvn", cell.vn_net, gen.sizing.vn)
    ckt.v("vvp", cell.vp_net, gen.sizing.vp)
    if cell.has_sleep:
        ckt.v("vslp", cell.sleep_net, TECH90.vdd if sleep_on else 0.0)
    swing = gen.sizing.swing
    for i, (pos, neg) in enumerate(cell.input_nets.values()):
        hi = i % 2 == 0
        ckt.v(f"vi{i}p", pos, TECH90.vdd - (0.0 if hi else swing))
        ckt.v(f"vi{i}n", neg, TECH90.vdd - (swing if hi else 0.0))
    return ckt


def cmos_cell(fn_name: str = "NAND2") -> Circuit:
    """One static CMOS gate with rails and DC inputs."""
    gen = CmosCellGenerator(TECH90)
    cell = gen.build(fn_name, load_cap=2e-15)
    ckt = cell.circuit
    ckt.v("vdd", cell.vdd_net, TECH90.vdd)
    for i, net in enumerate(cell.input_nets.values()):
        ckt.v(f"vi{i}", net, TECH90.vdd if i % 2 == 0 else 0.0)
    return ckt


def styled_cell(style: str, sleep_on, fn_name: str = "AND2") -> Circuit:
    if style == "cmos":
        # CMOS has primitive templates only; pick a same-arity gate.
        return cmos_cell({"AND2": "NAND2", "XOR2": "NOR2"}[fn_name])
    return biased_cell(style, fn_name, bool(sleep_on))


def pg_buffer_chain(n_cells: int = 3, sleep_on: bool = True,
                    pulse: bool = False):
    """``n_cells`` PG-MCML buffers in series (the bench_spice workload)."""
    gen = PgMcmlCellGenerator(TECH90)
    ckt = Circuit(f"pg_chain{n_cells}")
    cells = [gen.build(function("BUF"), circuit=ckt, prefix=f"u{i}_",
                       load_cap=2e-15)
             for i in range(n_cells)]
    tied = set()
    for cell in cells:
        for short, net, value in (
                ("vdd", cell.vdd_net, TECH90.vdd),
                ("vvn", cell.vn_net, gen.sizing.vn),
                ("vvp", cell.vp_net, gen.sizing.vp),
                ("vslp", cell.sleep_net,
                 TECH90.vdd if sleep_on else 0.0)):
            if net not in tied:
                tied.add(net)
                ckt.v(f"{short}_{net}", net, value)
    vdd, swing = TECH90.vdd, gen.sizing.swing
    in_p, in_n = cells[0].input_nets["A"]
    if pulse:
        window, edge = 64e-12, 5e-12
        ckt.v("vin_p", in_p, Pulse(vdd - swing, vdd, window / 2, edge,
                                   edge, window, 0.0))
        ckt.v("vin_n", in_n, Pulse(vdd, vdd - swing, window / 2, edge,
                                   edge, window, 0.0))
    else:
        ckt.v("vin_p", in_p, vdd)
        ckt.v("vin_n", in_n, vdd - swing)
    for i in range(n_cells - 1):
        out_p, out_n = next(iter(cells[i].output_nets.values()))
        nxt_p, nxt_n = cells[i + 1].input_nets["A"]
        ckt.resistor(f"rw{i}_p", out_p, nxt_p, 10.0)
        ckt.resistor(f"rw{i}_n", out_n, nxt_n, 10.0)
    return ckt


def dc_solution(circuit: Circuit, assembly: str):
    sys_ = System(circuit, assembly=assembly)
    op = solve_dc(circuit, system=sys_)
    return op


def assert_ops_close(op_a, op_b, tol=1e-9):
    assert set(op_a.voltages) == set(op_b.voltages)
    for node in op_a.voltages:
        assert op_a.voltages[node] == pytest.approx(
            op_b.voltages[node], abs=tol), node


# -- DC equivalence -----------------------------------------------------------

class TestDcEquivalence:
    @pytest.mark.parametrize("style,sleep_on", STYLE_CASES)
    @pytest.mark.parametrize("fn_name", ["AND2", "XOR2"])
    def test_cell_dc_sparse_matches_bank_and_loop(self, style, sleep_on,
                                                  fn_name):
        ops = {a: dc_solution(styled_cell(style, sleep_on, fn_name), a)
               for a in ASSEMBLIES}
        assert_ops_close(ops["sparse"], ops["bank"])
        assert_ops_close(ops["sparse"], ops["loop"])

    def test_jacobian_entries_identical(self):
        """Densified sparse data == bank Jacobian, entry for entry."""
        ckt = biased_cell("pgmcml", "AND2")
        bank = System(ckt, assembly="bank")
        sparse = System(ckt, assembly="sparse")
        fixed = ckt.fixed_nodes(0.0)
        rng = np.random.default_rng(7)
        x = 0.6 + 0.1 * rng.standard_normal(bank.n)
        for gmin in (0.0, 1e-9):
            f_b, j_b = bank.residual_and_jacobian(x, fixed, gmin)
            f_s, data = sparse.residual_and_jacobian(x, fixed, gmin)
            np.testing.assert_array_equal(f_s, f_b)
            asm = sparse.sparse_assembly()
            dense = np.zeros((sparse.n, sparse.n))
            dense[asm._perm[:, None], asm._perm[None, :]] = \
                asm.matrix(data).toarray()
            np.testing.assert_allclose(dense, j_b, rtol=1e-12, atol=1e-15)

    def test_fixed_node_currents_match(self):
        ckt = biased_cell("mcml", "MUX2")
        bank = System(ckt, assembly="bank")
        sparse = System(ckt, assembly="sparse")
        fixed = ckt.fixed_nodes(0.0)
        x = np.full(bank.n, 0.7)
        cur_b = bank.fixed_node_currents(x, fixed)
        cur_s = sparse.fixed_node_currents(x, fixed)
        assert set(cur_b) == set(cur_s)
        for node in cur_b:
            assert cur_s[node] == pytest.approx(cur_b[node], rel=1e-9,
                                                abs=1e-15)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=12, deadline=None)
    def test_random_network_equivalence(self, seed):
        """Random component values on a CMOS-inverter-ish network:
        all three assemblies find the same operating point."""
        rng = np.random.default_rng(seed)
        from repro.tech import NMOS_LVT, PMOS_LVT
        ckt = Circuit(f"rand{seed}")
        ckt.v("vdd", "vdd", float(rng.uniform(0.9, 1.4)))
        ckt.v("vin", "a", float(rng.uniform(0.0, 1.2)))
        ckt.resistor("r1", "vdd", "b", float(rng.uniform(1e3, 1e5)))
        ckt.resistor("r2", "b", "c", float(rng.uniform(1e3, 1e5)))
        ckt.resistor("r3", "c", "0", float(rng.uniform(1e3, 1e5)))
        ckt.isource("i1", "b", "0", float(rng.uniform(1e-8, 1e-6)))
        ckt.capacitor("c1", "b", "0", 1e-15)
        ckt.mosfet("mn", "b", "a", "0", "0", NMOS_LVT,
                   w=um(float(rng.uniform(0.2, 1.0))), l=um(0.1))
        ckt.mosfet("mp", "b", "a", "vdd", "vdd", PMOS_LVT,
                   w=um(float(rng.uniform(0.2, 1.0))), l=um(0.1))
        ops = {a: dc_solution(ckt, a) for a in ASSEMBLIES}
        assert_ops_close(ops["sparse"], ops["bank"])
        assert_ops_close(ops["sparse"], ops["loop"])


# -- transient / batch equivalence --------------------------------------------

class TestTransientEquivalence:
    @pytest.mark.parametrize("sleep_on", [True, False])
    def test_pg_chain_waveforms(self, monkeypatch, sleep_on):
        results = {}
        for assembly in ASSEMBLIES:
            monkeypatch.setenv(_ASSEMBLY_ENV, assembly)
            ckt = pg_buffer_chain(2, sleep_on=sleep_on, pulse=True)
            results[assembly] = run_transient(ckt, tstop=64e-12, dt=1e-12)
        ref = results["bank"]
        for assembly in ("loop", "sparse"):
            res = results[assembly]
            np.testing.assert_array_equal(res.time, ref.time)
            for node in ref.voltages:
                np.testing.assert_allclose(
                    res.voltages[node], ref.voltages[node], atol=1e-9,
                    err_msg=f"{assembly}:{node}")
            for src in ref.source_currents:
                np.testing.assert_allclose(
                    res.source_currents[src], ref.source_currents[src],
                    atol=1e-9, err_msg=f"{assembly}:{src}")

    @pytest.mark.parametrize("style", ["cmos", "mcml"])
    def test_single_cell_transient(self, monkeypatch, style):
        def build():
            if style == "cmos":
                gen = CmosCellGenerator(TECH90)
                cell = gen.build("INV", load_cap=2e-15)
                ckt = cell.circuit
                ckt.v("vdd", cell.vdd_net, TECH90.vdd)
                ckt.v("vin", next(iter(cell.input_nets.values())),
                      Pulse(0.0, TECH90.vdd, 20e-12, 2e-12, 2e-12, 80e-12))
                return ckt
            gen = McmlCellGenerator(TECH90)
            cell = gen.build(function("BUF"), load_cap=2e-15)
            ckt = cell.circuit
            ckt.v("vdd", cell.vdd_net, TECH90.vdd)
            ckt.v("vvn", cell.vn_net, gen.sizing.vn)
            ckt.v("vvp", cell.vp_net, gen.sizing.vp)
            vdd, swing = TECH90.vdd, gen.sizing.swing
            in_p, in_n = cell.input_nets["A"]
            ckt.v("vin_p", in_p, Pulse(vdd - swing, vdd, 20e-12, 2e-12,
                                       2e-12, 80e-12))
            ckt.v("vin_n", in_n, Pulse(vdd, vdd - swing, 20e-12, 2e-12,
                                       2e-12, 80e-12))
            return ckt

        waves = {}
        for assembly in ("bank", "sparse"):
            monkeypatch.setenv(_ASSEMBLY_ENV, assembly)
            waves[assembly] = run_transient(build(), tstop=60e-12, dt=1e-12)
        ref, got = waves["bank"], waves["sparse"]
        for node in ref.voltages:
            np.testing.assert_allclose(got.voltages[node],
                                       ref.voltages[node], atol=1e-9)

    def test_batched_sparse_matches_serial_bank(self, monkeypatch):
        def lanes(n):
            out = []
            for k in range(n):
                ckt = Circuit("rc")
                ckt.v("vin", "in",
                      Pulse(0.0, 1.0 + 0.1 * k, 1e-9, 1e-12, 1e-12, 50e-9))
                ckt.resistor("r1", "in", "out", 1e3 * (k + 1))
                ckt.capacitor("c1", "out", "0", 1e-12)
                out.append(ckt)
            return out

        monkeypatch.setenv(_ASSEMBLY_ENV, "bank")
        serial = [run_transient(c, tstop=5e-9, dt=0.5e-10)
                  for c in lanes(4)]
        monkeypatch.setenv(_ASSEMBLY_ENV, "sparse")
        batched = run_transient_batch(lanes(4), tstop=5e-9, dt=0.5e-10)
        for ref, got in zip(serial, batched):
            np.testing.assert_array_equal(got.time, ref.time)
            for node in ref.voltages:
                np.testing.assert_allclose(got.voltages[node],
                                           ref.voltages[node], atol=1e-9)

    def test_batched_pg_cells_sparse(self, monkeypatch):
        def lanes(n):
            return [pg_buffer_chain(1, pulse=True) for _ in range(n)]

        monkeypatch.setenv(_ASSEMBLY_ENV, "bank")
        serial = [run_transient(c, tstop=32e-12, dt=1e-12)
                  for c in lanes(3)]
        monkeypatch.setenv(_ASSEMBLY_ENV, "sparse")
        batched = run_transient_batch(lanes(3), tstop=32e-12, dt=1e-12)
        for ref, got in zip(serial, batched):
            for node in ref.voltages:
                np.testing.assert_allclose(got.voltages[node],
                                           ref.voltages[node], atol=1e-9)


# -- control-flow regression (satellite: pinned diagnostics) ------------------

class TestDiagnosticsPinned:
    def test_newton_trajectory_identical_across_assemblies(self):
        """Same iteration counts, attempts, and ladder verdicts.

        The sparse path must not change Newton's control flow — only
        the linear algebra inside each step.  The pinned numbers are
        the reference trajectory of a 3-buffer PG-MCML chain; a change
        means the solver's numerics moved (review, then re-pin).
        """
        diags = {}
        for assembly in ASSEMBLIES:
            op = dc_solution(pg_buffer_chain(3), assembly)
            diags[assembly] = op.diagnostics
        ref = diags["bank"]
        for assembly in ("loop", "sparse"):
            d = diags[assembly]
            assert d.converged_by == ref.converged_by
            assert d.strategies() == ref.strategies()
            assert d.total_iterations == ref.total_iterations
            assert [a.iterations for a in d.attempts] == \
                [a.iterations for a in ref.attempts]
        # Pinned reference (regression): see docstring before re-pinning.
        assert ref.converged_by == PINNED_CONVERGED_BY
        assert len(ref.attempts) == PINNED_ATTEMPTS
        assert ref.total_iterations == PINNED_ITERATIONS


# -- sparse assembly unit behaviour -------------------------------------------

class TestSparseAssemblyUnit:
    def _small(self):
        ckt = biased_cell("pgmcml", "BUF")
        sys_ = System(ckt, assembly="sparse")
        return ckt, sys_, sys_.sparse_assembly()

    def test_positions_outside_pattern_raise(self):
        _, sys_, asm = self._small()
        rows = np.array([0])
        cols = np.array([sys_.n - 1])
        flat = asm._invperm[cols] * asm.n + asm._invperm[rows]
        if np.isin(flat, asm._uniq).any():
            pytest.skip("corner coordinate happens to be in the pattern")
        with pytest.raises(CircuitError, match="outside the sparse"):
            asm.positions(rows, cols)

    def test_positions_roundtrip(self):
        _, _, asm = self._small()
        rows = np.arange(asm.n)
        pos = asm.positions(rows, rows)
        np.testing.assert_array_equal(pos, asm.diag_pos)

    def test_singular_takes_tikhonov_retry(self):
        _, _, asm = self._small()
        data = np.zeros(asm.nnz)
        rhs = np.zeros(asm.n)
        dx, singular = asm.solve(data, rhs)
        assert singular == 1
        np.testing.assert_allclose(dx, 0.0)

    def test_doubly_singular_small_system_densifies(self, monkeypatch):
        _, _, asm = self._small()
        monkeypatch.setattr(sparse_mod, "_TIKHONOV", 0.0)
        rhs = np.zeros(asm.n)
        dx, singular = asm.solve(np.zeros(asm.nnz), rhs)
        assert singular == 1
        np.testing.assert_allclose(dx, 0.0)

    def test_doubly_singular_large_system_fails_loudly(self, monkeypatch):
        _, _, asm = self._small()
        monkeypatch.setattr(sparse_mod, "_TIKHONOV", 0.0)
        monkeypatch.setattr(sparse_mod, "_DENSE_LSTSQ_LIMIT", 1)
        with pytest.raises(ConvergenceError, match="singular"):
            asm.solve(np.zeros(asm.nnz), np.zeros(asm.n))

    def test_solve_batch_matches_scalar_solve(self):
        ckt, sys_, asm = self._small()
        fixed = ckt.fixed_nodes(0.0)
        rng = np.random.default_rng(3)
        datas, rhss = [], []
        for _ in range(3):
            x = 0.6 + 0.05 * rng.standard_normal(sys_.n)
            f, data = sys_.residual_and_jacobian(x, fixed, 1e-9)
            datas.append(data)
            rhss.append(-f)
        dx_b, sing_b = asm.solve_batch(np.stack(datas), np.stack(rhss))
        for lane in range(3):
            dx, sing = asm.solve(datas[lane], rhss[lane])
            np.testing.assert_array_equal(dx_b[lane], dx)
            assert sing_b[lane] == sing

    def test_empty_system(self):
        ckt = Circuit("allfixed")
        ckt.v("vdd", "a", 1.0)
        ckt.resistor("r1", "a", "0", 1e3)
        sys_ = System(ckt, assembly="sparse")
        assert sys_.n == 0
        op = solve_dc(ckt, system=sys_)
        assert op.voltages["a"] == pytest.approx(1.0)

    def test_rebuilt_after_swap_device(self):
        from repro.spice import Capacitor
        ckt, sys_, asm = self._small()
        old = next(d for d in ckt.devices if type(d) is Capacitor)
        ckt.swap_device(old.name, Capacitor(old.name, *old.terminals,
                                            old.capacitance * 2))
        assert sys_.sparse_assembly() is not asm


# -- operating-point cache ----------------------------------------------------

class TestOperatingPointCache:
    def test_hit_is_byte_identical_to_cold_solve(self):
        cache = OperatingPointCache()
        ckt = pg_buffer_chain(2)
        cold = solve_dc(ckt, op_cache=cache)
        hit = solve_dc(ckt, op_cache=cache)
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1
        assert set(hit.voltages) == set(cold.voltages)
        for node in cold.voltages:
            # Byte identity, not closeness: same float, same repr.
            assert hit.voltages[node] == cold.voltages[node]
            assert repr(hit.voltages[node]) == repr(cold.voltages[node])

    def test_mutating_a_hit_does_not_poison_the_cache(self):
        cache = OperatingPointCache()
        ckt = cmos_cell("INV")
        first = solve_dc(ckt, op_cache=cache)
        node = next(iter(first.voltages))
        first.voltages[node] = 99.0
        again = solve_dc(ckt, op_cache=cache)
        assert again.voltages[node] != 99.0

    def test_content_addressed_across_equal_builds(self):
        cache = OperatingPointCache()
        solve_dc(cmos_cell("NAND2"), op_cache=cache)
        solve_dc(cmos_cell("NAND2"), op_cache=cache)
        assert cache.hits == 1

    def test_parameter_change_misses(self):
        cache = OperatingPointCache()
        a = cmos_cell("INV")
        b = cmos_cell("INV")
        a.resistor("rx", "vdd", "0", 2e6)
        b.resistor("rx", "vdd", "0", 1e6)
        solve_dc(a, op_cache=cache)
        solve_dc(b, op_cache=cache)
        assert cache.hits == 0 and cache.misses == 2

    def test_swap_device_invalidates(self):
        from repro.spice import Resistor
        cache = OperatingPointCache()
        ckt = cmos_cell("INV")
        ckt.resistor("rl", "vdd", "0", 1e6)
        solve_dc(ckt, op_cache=cache)
        ckt.swap_device("rl", Resistor("rl", "vdd", "0", 5e5))
        solve_dc(ckt, op_cache=cache)
        assert cache.hits == 0 and cache.misses == 2

    def test_guess_is_part_of_the_key(self):
        cache = OperatingPointCache()
        ckt = cmos_cell("INV")
        solve_dc(ckt, op_cache=cache)
        node = next(iter(System(ckt).unknowns))
        solve_dc(ckt, guess={node: 0.3}, op_cache=cache)
        assert cache.hits == 0 and cache.misses == 2

    def test_recovery_policy_bypasses(self):
        from repro.spice.recovery import RecoveryPolicy
        cache = OperatingPointCache()
        ckt = cmos_cell("INV")
        solve_dc(ckt, policy=RecoveryPolicy(), op_cache=cache)
        assert cache.bypasses == 1 and cache.misses == 0

    def test_unknown_device_class_bypasses(self):
        from repro.spice.devices import Device

        class Weird(Device):
            def __init__(self):
                super().__init__("w1", ("a", "0"))

            def currents(self, volts):
                return [volts[0] * 1e-3, -volts[0] * 1e-3]

        cache = OperatingPointCache()
        ckt = Circuit("weird")
        ckt.v("vs", "a", 1.0)
        ckt.resistor("r1", "a", "b", 1e3)
        ckt.resistor("r2", "b", "0", 1e3)
        ckt.add(Weird())
        solve_dc(ckt, op_cache=cache)
        assert cache.bypasses == 1 and len(cache) == 0

    def test_fifo_eviction(self):
        cache = OperatingPointCache(max_entries=2)
        gates = ["INV", "NAND2", "NOR2"]
        for g in gates:
            solve_dc(cmos_cell(g), op_cache=cache)
        assert len(cache) == 2
        solve_dc(cmos_cell("INV"), op_cache=cache)  # evicted -> miss
        assert cache.misses == 4
        solve_dc(cmos_cell("NOR2"), op_cache=cache)  # still resident
        assert cache.hits == 1

    def test_telemetry_counters(self):
        tele = Telemetry(sinks=[])
        cache = OperatingPointCache()
        ckt = cmos_cell("INV")
        solve_dc(ckt, op_cache=cache, telemetry=tele)
        solve_dc(ckt, op_cache=cache, telemetry=tele)
        reg = tele.registry
        assert reg.counter("spice.opcache.misses").value == 1
        assert reg.counter("spice.opcache.stores").value == 1
        assert reg.counter("spice.opcache.hits").value == 1

    def test_disabled_by_default_enabled_by_env(self, monkeypatch):
        assert default_op_cache() is None
        monkeypatch.setenv(OP_CACHE_ENV, "1")
        cache = default_op_cache()
        assert isinstance(cache, OperatingPointCache)
        assert default_op_cache() is cache  # persistent instance
        monkeypatch.setenv(OP_CACHE_ENV, "off")
        assert default_op_cache() is None

    def test_clear_resets_entries_and_counters(self):
        cache = OperatingPointCache()
        solve_dc(cmos_cell("INV"), op_cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.counters() == {"hits": 0, "misses": 0, "bypasses": 0,
                                    "stores": 0, "entries": 0}

    def test_cache_consistent_across_assemblies(self):
        """Assembly is part of the key; a hit never crosses assemblies."""
        cache = OperatingPointCache()
        ckt = cmos_cell("INV")
        solve_dc(ckt, system=System(ckt, assembly="bank"), op_cache=cache)
        solve_dc(ckt, system=System(ckt, assembly="sparse"), op_cache=cache)
        assert cache.hits == 0 and cache.misses == 2


# -- elaboration: gate netlist -> transistor circuit --------------------------

XOR_TABLE = [0, 1, 1, 0]


def lut_block(style: str):
    """A 2-input XOR plus a constant-high output (exercises ties)."""
    lib = LIB_BUILDERS[style]()
    return map_lut(lib, {"y": XOR_TABLE, "k": [1, 1, 1, 1]},
                   ["a", "b"], name=f"xorlut_{style}")


class TestElaborator:
    @pytest.mark.parametrize("style", ["cmos", "mcml", "pgmcml"])
    @pytest.mark.parametrize("a,b", [(False, False), (True, False),
                                     (True, True)])
    def test_lut_dc_truth(self, style, a, b):
        block = lut_block(style)
        elab = elaborate_netlist(block.netlist)
        attach_core_testbench(elab, {"a": a, "b": b})
        op = dc_solution(elab.circuit, "sparse")
        hi, lo = elab.logic_levels
        mid = (hi + lo) / 2.0
        for out, want in (("y", a != b), ("k", True)):
            rails = elab.rails(block.outputs[out])
            if isinstance(rails, tuple):
                diff = op.voltages[rails[0]] - op.voltages[rails[1]]
                assert (diff > 0) == want, (out, diff)
            else:
                assert (op.voltages[rails] > mid) == want

    def test_differential_elaboration_matches_bank_assembly(self):
        block = lut_block("pgmcml")
        elab = elaborate_netlist(block.netlist)
        attach_core_testbench(elab, {"a": True, "b": False})
        assert_ops_close(dc_solution(elab.circuit, "sparse"),
                         dc_solution(elab.circuit, "bank"))

    def test_netlist_bindings(self):
        block = lut_block("mcml")
        elab = elaborate_netlist(block.netlist)
        assert elab.differential
        assert elab.device_count == len(elab.circuit.devices)
        p, n = elab.rails("a")
        assert p != n
        with pytest.raises(SynthesisError, match="not a net"):
            elab.rails("nonexistent")

    def test_missing_primary_input_rejected(self):
        block = lut_block("cmos")
        elab = elaborate_netlist(block.netlist)
        with pytest.raises(SynthesisError, match="undriven primary"):
            attach_core_testbench(elab, {"a": True})

    def test_cmos_dff_latches_on_clock_edge(self):
        lib = build_cmos_library()
        from repro.netlist.graph import GateNetlist
        nl = GateNetlist("dffcore", lib)
        nl.add_primary_input("d")
        nl.add_primary_input("ck")
        nl.add_instance("DFF", {"D": "d", "CK": "ck", "Q": "q"}, name="ff")
        nl.add_instance("INV", {"A": "q", "Y": "qn"}, name="u1")
        nl.add_primary_output("qn")
        elab = elaborate_netlist(nl)
        vdd = TECH90.vdd
        ck = Pulse(0.0, vdd, 40e-12, 2e-12, 2e-12, 200e-12)
        attach_core_testbench(elab, {"d": True, "ck": ck})
        sim = LogicSimulator(nl)
        sim.initialize({"d": True, "ck": False})
        ic = initial_point(elab, sim.values)
        res = run_transient(elab.circuit, tstop=100e-12, dt=1e-12, ic=ic)
        q = elab.rails("q")
        assert res.wave(q).v[0] < 0.3 * vdd  # seeded low
        assert res.wave(q).v[-1] > 0.7 * vdd  # latched after the edge

    def test_initial_point_covers_every_node(self):
        block = lut_block("pgmcml")
        elab = elaborate_netlist(block.netlist)
        attach_core_testbench(elab, {"a": True, "b": True})
        sim = LogicSimulator(block.netlist)
        sim.initialize({"a": True, "b": True})
        ic = initial_point(elab, sim.values)
        sys_ = System(elab.circuit)
        assert all(n in ic.voltages for n in sys_.unknowns)

    def test_sleep_tree_leaf_missing_rejected(self):
        from repro.synth.sleep import SleepTree
        block = lut_block("pgmcml")
        bare = SleepTree(root_net="sleep_root", levels=0,
                         buffer_instances=[], leaf_of={},
                         insertion_delay=0.0, fanout_limit=4)
        with pytest.raises(SynthesisError, match="sleep-tree leaf"):
            elaborate_netlist(block.netlist, sleep_tree=bare)


# -- full-core cases (slow; CI slow-tests job) --------------------------------

def _core_inputs(load=True, clk=False):
    inputs = {f"pt{i}": (i % 3 == 0) for i in range(128)}
    inputs.update({f"key{i}": (i % 5 == 0) for i in range(128)})
    inputs["clk"] = clk
    inputs["load"] = load
    return inputs


@pytest.mark.slow
class TestFullCore:
    @pytest.mark.parametrize("style", ["cmos", "mcml", "pgmcml"])
    def test_erc_clean_and_linear_time(self, style):
        """ERC over the full elaborated core: no false positives.

        Also pins the O(devices) claim: checking the ~10^5-device core
        must cost no more than a generous per-device constant.
        """
        lib = LIB_BUILDERS[style]()
        core = build_aes_core(lib)
        elab = elaborate_netlist(core.netlist, sleep_tree=core.sleep_tree)
        attach_core_testbench(elab, _core_inputs())
        begin = time.perf_counter()
        report = check_circuit(elab.circuit, style=elab.style)
        elapsed = time.perf_counter() - begin
        assert report.ok, report.findings[:10]
        assert not report.findings
        n_dev = len(elab.circuit.devices)
        assert n_dev > 20_000
        assert elapsed < max(5.0, 100e-6 * n_dev), \
            f"ERC took {elapsed:.1f}s for {n_dev} devices"

    def test_aes_core_sparse_supply_current_smoke(self, monkeypatch):
        """The headline: a transient the dense assembly cannot run.

        144k devices / 72k unknowns — a dense Jacobian would be 40 GB.
        The sparse engine must march a few backward-Euler steps from a
        logic-seeded initial point and produce a finite supply-current
        waveform.
        """
        core = build_aes_core(build_pg_mcml_library())
        elab = elaborate_netlist(core.netlist, sleep_tree=core.sleep_tree)
        inputs = _core_inputs()
        attach_core_testbench(elab, inputs)
        sim = LogicSimulator(core.netlist)
        sim.initialize(inputs)
        ic = initial_point(elab, sim.values)
        monkeypatch.setenv(_ASSEMBLY_ENV, "sparse")
        res = run_transient(elab.circuit, tstop=4e-12, dt=1e-12,
                            record=[elab.vdd_net], ic=ic)
        supply = res.current("vdd")
        assert len(supply.v) == len(res.time) > 1
        assert np.all(np.isfinite(supply.v))
        assert np.max(np.abs(supply.v)) > 0.0
