"""Tests for the processor simulator and the AES firmware."""

import pytest

from repro.aes import SBOX, encrypt_block
from repro.cpu import CPU, aes_firmware, assemble
from repro.errors import CPUError


def run_asm(source, max_instructions=100000, cpu=None):
    cpu = cpu or CPU(memory_size=1 << 16)
    cpu.load_image(assemble(source))
    cpu.pc = 0
    cpu.run(max_instructions=max_instructions)
    return cpu


class TestArithmetic:
    def test_addi_and_add(self):
        cpu = run_asm("""
            l.addi r1, r0, 40
            l.addi r2, r0, 2
            l.add r3, r1, r2
            l.nop 1
        """)
        assert cpu.regs[3] == 42

    def test_r0_hardwired_zero(self):
        cpu = run_asm("""
            l.addi r0, r0, 5
            l.nop 1
        """)
        assert cpu.regs[0] == 0

    def test_sub_wraps_unsigned(self):
        cpu = run_asm("""
            l.addi r1, r0, 1
            l.addi r2, r0, 2
            l.sub r3, r1, r2
            l.nop 1
        """)
        assert cpu.regs[3] == 0xFFFFFFFF

    def test_logic_ops(self):
        cpu = run_asm("""
            l.addi r1, r0, 0x0F0
            l.addi r2, r0, 0x0FF
            l.and r3, r1, r2
            l.or r4, r1, r2
            l.xor r5, r1, r2
            l.nop 1
        """)
        assert cpu.regs[3] == 0x0F0
        assert cpu.regs[4] == 0x0FF
        assert cpu.regs[5] == 0x00F

    def test_immediates_logical_are_zero_extended(self):
        cpu = run_asm("""
            l.addi r1, r0, -1
            l.andi r2, r1, 0xFF00
            l.xori r3, r1, 0xFFFF
            l.nop 1
        """)
        assert cpu.regs[2] == 0xFF00
        assert cpu.regs[3] == 0xFFFF0000

    def test_shifts(self):
        cpu = run_asm("""
            l.addi r1, r0, 1
            l.slli r2, r1, 31
            l.srli r3, r2, 31
            l.srai r4, r2, 31
            l.nop 1
        """)
        assert cpu.regs[2] == 0x80000000
        assert cpu.regs[3] == 1
        assert cpu.regs[4] == 0xFFFFFFFF  # arithmetic shift of sign bit

    def test_mul(self):
        cpu = run_asm("""
            l.addi r1, r0, 7
            l.muli r2, r1, 6
            l.mul r3, r2, r1
            l.nop 1
        """)
        assert cpu.regs[2] == 42
        assert cpu.regs[3] == 294

    def test_movhi_ori_pair(self):
        cpu = run_asm("""
            l.movhi r1, 0xDEAD
            l.ori r1, r1, 0xBEEF
            l.nop 1
        """)
        assert cpu.regs[1] == 0xDEADBEEF


class TestMemory:
    def test_word_store_load_big_endian(self):
        cpu = run_asm("""
            l.movhi r1, 0x1122
            l.ori r1, r1, 0x3344
            l.addi r2, r0, 0x100
            l.sw 0(r2), r1
            l.lbz r3, 0(r2)
            l.lwz r4, 0(r2)
            l.nop 1
        """)
        assert cpu.regs[3] == 0x11  # big-endian MSB first
        assert cpu.regs[4] == 0x11223344

    def test_byte_store(self):
        cpu = run_asm("""
            l.addi r1, r0, 0xAB
            l.addi r2, r0, 0x200
            l.sb 3(r2), r1
            l.lwz r3, 0x200(r0)
            l.nop 1
        """)
        assert cpu.regs[3] == 0x000000AB

    def test_misaligned_word_access(self):
        cpu = CPU(memory_size=1 << 12)
        with pytest.raises(CPUError):
            cpu.read_word(2)

    def test_out_of_range_access(self):
        cpu = CPU(memory_size=1 << 12)
        with pytest.raises(CPUError):
            cpu.read_byte(1 << 12)


class TestControlFlow:
    def test_branch_taken(self):
        cpu = run_asm("""
            l.addi r1, r0, 5
            l.sfeq r1, r1
            l.bf good
            l.addi r2, r0, 99
        good:
            l.nop 1
        """)
        assert cpu.regs[2] == 0

    def test_branch_not_taken(self):
        cpu = run_asm("""
            l.addi r1, r0, 5
            l.sfne r1, r1
            l.bf skip
            l.addi r2, r0, 7
        skip:
            l.nop 1
        """)
        assert cpu.regs[2] == 7

    def test_loop_counts(self):
        cpu = run_asm("""
            l.addi r1, r0, 10
            l.addi r2, r0, 0
        loop:
            l.addi r2, r2, 3
            l.addi r1, r1, -1
            l.sfeq r1, r0
            l.bnf loop
            l.nop 1
        """)
        assert cpu.regs[2] == 30

    def test_unsigned_compares(self):
        cpu = run_asm("""
            l.addi r1, r0, -1      # 0xFFFFFFFF unsigned max
            l.addi r2, r0, 1
            l.sfgtu r1, r2
            l.bf big
            l.addi r3, r0, 1
        big:
            l.nop 1
        """)
        assert cpu.regs[3] == 0  # 0xFFFFFFFF > 1 unsigned

    def test_jal_links_r9(self):
        cpu = run_asm("""
            l.jal sub
            l.nop 1
        sub:
            l.addi r4, r0, 11
            l.jr r9
        """)
        assert cpu.regs[4] == 11
        assert cpu.halted

    def test_runaway_detected(self):
        with pytest.raises(CPUError):
            run_asm("loop: l.j loop\n", max_instructions=500)


class TestSboxInstruction:
    def test_applies_sbox_to_each_byte(self):
        cpu = run_asm("""
            l.movhi r1, 0x0001
            l.ori r1, r1, 0x53FF
            l.sbox r2, r1
            l.nop 1
        """)
        expected = (SBOX[0x00] << 24) | (SBOX[0x01] << 16) | \
            (SBOX[0x53] << 8) | SBOX[0xFF]
        assert cpu.regs[2] == expected

    def test_records_activity(self):
        cpu = run_asm("""
            l.addi r1, r0, 3
            l.sbox r2, r1
            l.sbox r3, r2
            l.nop 1
        """)
        assert cpu.stats.sbox_cycles == 2
        assert cpu.stats.ise_duty == pytest.approx(2 / 4)

    def test_stats_bookkeeping(self):
        cpu = run_asm("l.addi r1, r0, 1\nl.nop 1\n")
        assert cpu.stats.instructions == 2
        assert cpu.stats.opcode_counts["l.addi"] == 1
        assert "duty" in repr(cpu.stats)

    def test_trace_hook(self):
        seen = []
        cpu = CPU(memory_size=1 << 12)
        cpu.trace_hook = lambda c, inst: seen.append(inst.mnemonic)
        cpu.load_image(assemble("l.addi r1, r0, 1\nl.nop 1\n"))
        cpu.run()
        assert seen == ["l.addi", "l.nop"]

    def test_step_after_halt_rejected(self):
        cpu = run_asm("l.nop 1\n")
        with pytest.raises(CPUError):
            cpu.step()


class TestAesFirmware:
    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    PT = bytes.fromhex("3243f6a8885a308d313198a2e0370734")

    def test_software_aes_matches_reference(self):
        fw = aes_firmware(n_blocks=1, use_ise=False)
        cts, stats = fw.run(self.KEY, [self.PT])
        assert cts[0] == encrypt_block(self.PT, self.KEY)
        assert stats.sbox_cycles == 0

    def test_ise_aes_matches_reference(self):
        fw = aes_firmware(n_blocks=1, use_ise=True)
        cts, stats = fw.run(self.KEY, [self.PT])
        assert cts[0] == encrypt_block(self.PT, self.KEY)

    def test_ise_uses_40_sbox_ops_per_block(self):
        fw = aes_firmware(n_blocks=2, use_ise=True)
        pts = [self.PT, bytes(range(16))]
        _, stats = fw.run(self.KEY, pts)
        # 4 words x 10 rounds per block.
        assert stats.sbox_cycles == 80

    def test_ise_is_faster_than_software(self):
        pts = [self.PT]
        _, sw = aes_firmware(1, use_ise=False).run(self.KEY, pts)
        _, ise = aes_firmware(1, use_ise=True).run(self.KEY, pts)
        assert ise.cycles < sw.cycles

    def test_duty_factor_in_expected_band(self):
        fw = aes_firmware(n_blocks=1, use_ise=True)
        _, stats = fw.run(self.KEY, [self.PT])
        assert 0.005 < stats.ise_duty < 0.05

    def test_multi_block_pipeline(self):
        pts = [bytes((i * 7 + j) & 0xFF for j in range(16)) for i in range(3)]
        fw = aes_firmware(n_blocks=3, use_ise=True)
        cts, _ = fw.run(self.KEY, pts)
        for pt, ct in zip(pts, cts):
            assert ct == encrypt_block(pt, self.KEY)

    def test_block_count_must_match(self):
        fw = aes_firmware(n_blocks=2, use_ise=False)
        with pytest.raises(CPUError):
            fw.run(self.KEY, [self.PT])

    def test_plaintext_length_validated(self):
        fw = aes_firmware(n_blocks=1)
        with pytest.raises(CPUError):
            fw.run(self.KEY, [b"short"])
