"""Property-based tests for the EKV MOSFET model.

Seeded random bias grids (numpy RNG — no external property-testing
dependency) check the physical invariants the simulator leans on:

* Ids is continuous across the subthreshold/triode/saturation
  boundaries (the EKV interpolation has no seams);
* dIds/dVds stays finite and non-negative everywhere (needed for
  Newton's Jacobian to be well-conditioned);
* Ids is monotonically non-decreasing in Vgs at fixed Vds (NMOS);
* Ids(Vds -> 0) -> 0: no current without drain-source bias.

Each property is exercised for all four flavours (NMOS/PMOS x LVT/HVT)
over randomized (W, L, Vg, Vd, Vs, Vb) draws, so a regression anywhere
in the bias space fails loudly with the offending draw in the message.
"""

import math

import numpy as np
import pytest

from repro.spice.mosfet import MosfetModel
from repro.tech import NMOS_HVT, NMOS_LVT, PMOS_HVT, PMOS_LVT
from repro.units import nm, um

VDD = 1.2

_FLAVOURS = {
    "nmos_lvt": NMOS_LVT,
    "nmos_hvt": NMOS_HVT,
    "pmos_lvt": PMOS_LVT,
    "pmos_hvt": PMOS_HVT,
}


@pytest.fixture(params=sorted(_FLAVOURS))
def flavour(request):
    return request.param, _FLAVOURS[request.param]


def _random_models(params, rng, n):
    """n random legally-sized instances of one flavour."""
    w = rng.uniform(params.wmin, um(2.0), size=n)
    l = rng.uniform(params.lmin, nm(400), size=n)
    return [MosfetModel(params, w[i], l[i]) for i in range(n)]


def _sign(params):
    """Current sign in the conducting quadrant (NMOS +, PMOS -)."""
    return 1.0 if params.is_nmos else -1.0


def _bias(params, rng):
    """A random bias point in the flavour's conducting quadrant."""
    if params.is_nmos:
        vs = rng.uniform(0.0, 0.3)
        vd = rng.uniform(vs, VDD)
        vg = rng.uniform(0.0, VDD)
        vb = 0.0
    else:
        vs = rng.uniform(VDD - 0.3, VDD)
        vd = rng.uniform(0.0, vs)
        vg = rng.uniform(0.0, VDD)
        vb = VDD
    return vg, vd, vs, vb


class TestContinuity:
    def test_ids_continuous_across_region_boundaries(self, flavour):
        """Fine Vds sweep through triode->saturation and a Vgs sweep
        through subthreshold->inversion: adjacent samples never jump by
        more than the local scale times the step."""
        name, params = flavour
        rng = np.random.default_rng(0xC0FFEE)
        for model in _random_models(params, rng, 6):
            sgn = _sign(params)
            vg = params.vt0 + rng.uniform(0.1, 0.5)  # strong-ish inversion
            vds = np.linspace(0.0, VDD, 801)
            ids = np.array([model.ids(sgn * vg, sgn * v, 0.0 if sgn > 0
                                      else VDD * 0, 0.0)
                            for v in sgn * vds])
            steps = np.abs(np.diff(ids))
            scale = np.abs(ids).max() + 1e-15
            # 801 points over 1.2 V: a continuous curve moves < 2 % of
            # full scale per 1.5 mV step.
            assert steps.max() < 0.02 * scale, \
                f"{name}: Ids jump {steps.max():.3g} vs scale {scale:.3g}"

    def test_ids_continuous_in_vgs_through_subthreshold(self, flavour):
        name, params = flavour
        rng = np.random.default_rng(7)
        for model in _random_models(params, rng, 6):
            sgn = _sign(params)
            vgs = np.linspace(0.0, VDD, 801)
            ids = np.array([model.ids(sgn * v, sgn * VDD, 0.0, 0.0)
                            for v in vgs])
            log_ids = np.log(np.abs(ids) + 1e-30)
            # Subthreshold slope is bounded: per 1.5 mV step the log
            # current moves by at most step/(n*Ut) plus slack.
            dv = vgs[1] - vgs[0]
            bound = dv / (params.nsub * model.ut) * 1.5 + 1e-6
            assert np.diff(log_ids).max() < bound, name


class TestDerivatives:
    def test_gds_finite_and_nonnegative_everywhere(self, flavour):
        """Central-difference dIds/dVds on 200 random draws: finite and
        (for the channel current, drain sweep in the conducting
        direction) non-negative — Newton's Jacobian depends on it."""
        name, params = flavour
        rng = np.random.default_rng(0xD0A)
        models = _random_models(params, rng, 5)
        h = 1e-6
        for i in range(200):
            model = models[i % len(models)]
            vg, vd, vs, vb = _bias(params, rng)
            up = model.ids(vg, vd + h, vs, vb)
            dn = model.ids(vg, vd - h, vs, vb)
            g = (up - dn) / (2 * h) * _sign(params) * \
                (1.0 if params.is_nmos else -1.0)
            # For NMOS increasing vd increases ids; for PMOS decreasing
            # vd makes ids more negative: either way the conductance
            # d|Ids|/d|Vds| is >= 0.
            g_abs = (abs(up) - abs(dn)) / (2 * h) * _sign(params)
            assert math.isfinite(g), f"{name} draw {i}: non-finite gds"
            assert g_abs >= -1e-12, \
                f"{name} draw {i}: negative gds {g_abs:.3g} at " \
                f"vg={vg:.3f} vd={vd:.3f} vs={vs:.3f}"

    def test_builtin_gds_matches_finite_difference(self, flavour):
        name, params = flavour
        rng = np.random.default_rng(11)
        model = _random_models(params, rng, 1)[0]
        for i in range(50):
            vg, vd, vs, vb = _bias(params, rng)
            h = 1e-6
            fd = (model.ids(vg, vd + h, vs, vb) -
                  model.ids(vg, vd - h, vs, vb)) / (2 * h)
            assert model.gds(vg, vd, vs, vb) == \
                pytest.approx(fd, rel=1e-3, abs=1e-12), f"{name} draw {i}"


class TestMonotonicity:
    def test_ids_monotone_in_vgs(self, flavour):
        """|Ids| never decreases as the gate drives harder, at any of
        40 random (Vds, sizing) draws."""
        name, params = flavour
        rng = np.random.default_rng(0xBEEF)
        sgn = _sign(params)
        for i in range(40):
            model = _random_models(params, rng, 1)[0]
            _, vd, vs, vb = _bias(params, rng)
            vgs = np.linspace(0.0, VDD, 121)
            mags = np.array([abs(model.ids(
                vs + sgn * v, vd, vs, vb)) for v in vgs])
            drops = np.diff(mags)
            assert drops.min() >= -1e-18, \
                f"{name} draw {i}: |Ids| fell by {-drops.min():.3g}"


class TestZeroBias:
    def test_ids_vanishes_as_vds_to_zero(self, flavour):
        """Ids(Vds=0) == 0 exactly (xf == xr), and the limit is
        approached linearly from either side."""
        name, params = flavour
        rng = np.random.default_rng(21)
        for i in range(40):
            model = _random_models(params, rng, 1)[0]
            vg = rng.uniform(0.0, VDD) * _sign(params)
            vcm = rng.uniform(0.0, VDD) * _sign(params)
            assert model.ids(vg, vcm, vcm, 0.0) == pytest.approx(0.0,
                                                                abs=1e-18)
            small = abs(model.ids(vg, vcm + 1e-7 * _sign(params), vcm, 0.0))
            tiny = abs(model.ids(vg, vcm + 1e-9 * _sign(params), vcm, 0.0))
            assert small < 1e-3, f"{name} draw {i}"
            if small > 0.0:
                assert tiny < small, f"{name} draw {i}"

class TestSleepLeakage:
    """§4 of the paper: the power-gating device is high-Vt and is driven
    to negative VGS when asleep, buying orders of magnitude of leakage."""

    def test_hvt_leaks_less_than_lvt_at_zero_vgs(self):
        rng = np.random.default_rng(41)
        for _ in range(20):
            w = rng.uniform(NMOS_LVT.wmin, um(2.0))
            l = rng.uniform(NMOS_LVT.lmin, nm(400))
            lvt = MosfetModel(NMOS_LVT, w, l)
            hvt = MosfetModel(NMOS_HVT, w, l)
            leak_lvt = lvt.ids(0.0, VDD, 0.0)
            leak_hvt = hvt.ids(0.0, VDD, 0.0)
            assert 0.0 < leak_hvt < leak_lvt
            # The Vt gap at ~n*Ut*ln10 ≈ 80 mV/decade buys well over
            # an order of magnitude.
            assert leak_lvt / leak_hvt > 10.0

    def test_negative_vgs_cuts_leakage_further(self):
        model = MosfetModel(NMOS_HVT, um(1.0), nm(200))
        at_zero = model.ids(0.0, VDD, 0.0)
        at_neg = model.ids(-0.2, VDD, 0.0)
        assert 0.0 < at_neg < at_zero / 100.0
