"""Tests for the gate-level netlist graph."""

import pytest

from repro.cells import build_cmos_library, build_pg_mcml_library
from repro.errors import NetlistError
from repro.netlist import GateNetlist


@pytest.fixture(scope="module")
def lib():
    return build_cmos_library()


def small_netlist(lib):
    """a --INV--> n1 --INV--> y"""
    nl = GateNetlist("pair", lib)
    nl.add_primary_input("a")
    nl.add_instance("INV", {"A": "a", "Y": "n1"}, name="u1")
    nl.add_instance("INV", {"A": "n1", "Y": "y"}, name="u2")
    nl.add_primary_output("y")
    return nl


class TestConstruction:
    def test_basic(self, lib):
        nl = small_netlist(lib)
        nl.validate()
        assert nl.total_cells() == 2
        assert len(nl.nets) == 3

    def test_unconnected_pin_rejected(self, lib):
        nl = GateNetlist("bad", lib)
        nl.add_primary_input("a")
        with pytest.raises(NetlistError, match="unconnected"):
            nl.add_instance("NAND2", {"A": "a", "Y": "y"})

    def test_unknown_pin_rejected(self, lib):
        nl = GateNetlist("bad", lib)
        nl.add_primary_input("a")
        with pytest.raises(NetlistError, match="unknown pins"):
            nl.add_instance("INV", {"A": "a", "Q": "y", "Y": "y2"})

    def test_duplicate_instance_name(self, lib):
        nl = small_netlist(lib)
        with pytest.raises(NetlistError):
            nl.add_instance("INV", {"A": "a", "Y": "zz"}, name="u1")

    def test_multiple_drivers_rejected(self, lib):
        nl = small_netlist(lib)
        with pytest.raises(NetlistError, match="already driven"):
            nl.add_instance("INV", {"A": "a", "Y": "n1"})

    def test_driving_primary_input_rejected(self, lib):
        nl = small_netlist(lib)
        with pytest.raises(NetlistError):
            nl.add_instance("INV", {"A": "n1", "Y": "a"})

    def test_undriven_net_fails_validate(self, lib):
        nl = GateNetlist("bad", lib)
        nl.add_instance("INV", {"A": "mystery", "Y": "y"})
        with pytest.raises(NetlistError, match="no driver"):
            nl.validate()

    def test_auto_instance_names_unique(self, lib):
        nl = GateNetlist("auto", lib)
        nl.add_primary_input("a")
        i1 = nl.add_instance("INV", {"A": "a", "Y": "y1"})
        i2 = nl.add_instance("INV", {"A": "a", "Y": "y2"})
        assert i1.name != i2.name

    def test_new_net_unique(self, lib):
        nl = GateNetlist("nets", lib)
        names = {nl.new_net().name for _ in range(50)}
        assert len(names) == 50


class TestAnalysis:
    def test_histogram(self, lib):
        nl = small_netlist(lib)
        assert nl.cell_histogram() == {"INV": 2}

    def test_total_area(self, lib):
        nl = small_netlist(lib)
        assert nl.total_area_um2() == pytest.approx(
            2 * lib.cell("INV").area_um2)

    def test_load_cap_counts_sinks_and_wire(self, lib):
        nl = small_netlist(lib)
        cap = nl.load_cap("n1")
        assert cap > lib.cell("INV").input_cap  # + wire term

    def test_fanout(self, lib):
        nl = GateNetlist("fan", lib)
        nl.add_primary_input("a")
        for i in range(5):
            nl.add_instance("INV", {"A": "a", "Y": f"y{i}"})
        assert nl.nets["a"].fanout == 5

    def test_instance_delay_includes_load(self, lib):
        nl = small_netlist(lib)
        d1 = nl.instance_delay(nl.instances["u1"])
        d2 = nl.instance_delay(nl.instances["u2"])
        # u2 drives the unloaded primary output -> faster than u1.
        assert d2 < d1

    def test_levelize_orders_dependencies(self, lib):
        nl = small_netlist(lib)
        order = [i.name for i in nl.levelize()]
        assert order.index("u1") < order.index("u2")

    def test_levelize_detects_loop(self, lib):
        nl = GateNetlist("loop", lib)
        nl.add_instance("INV", {"A": "b", "Y": "a"}, name="u1")
        nl.add_instance("INV", {"A": "a", "Y": "b"}, name="u2")
        with pytest.raises(NetlistError, match="loop"):
            nl.levelize()

    def test_registers_break_loops(self, lib):
        nl = GateNetlist("ring", lib)
        nl.add_primary_input("ck")
        nl.add_instance("DFF", {"D": "n1", "CK": "ck", "Q": "q"}, name="ff")
        nl.add_instance("INV", {"A": "q", "Y": "n1"}, name="u1")
        order = nl.levelize()  # must not raise
        assert [i.name for i in order] == ["u1"]
        assert [i.name for i in nl.sequential_instances()] == ["ff"]

    def test_move_sink(self, lib):
        nl = small_netlist(lib)
        nl.add_primary_input("b")
        nl.move_sink("n1", ("u2", "A"), "b")
        assert nl.instances["u2"].pins["A"] == "b"
        assert nl.nets["n1"].fanout == 0
        with pytest.raises(NetlistError):
            nl.move_sink("n1", ("u2", "A"), "b")

    def test_stats(self, lib):
        stats = small_netlist(lib).stats()
        assert stats["cells"] == 2.0
        assert stats["sequential"] == 0.0

    def test_pseudo_cells_not_counted(self):
        pg = build_pg_mcml_library()
        nl = GateNetlist("swap", pg)
        nl.add_primary_input("a")
        nl.add_instance("RAILSWAP", {"A": "a", "Y": "y"})
        nl.add_instance("BUF", {"A": "y", "Y": "z"})
        assert nl.total_cells() == 1
        assert nl.cell_histogram() == {"BUF": 1}
        assert "RAILSWAP" in nl.cell_histogram(include_pseudo=True)
