"""Tests for the on-core key schedule and firmware internals."""

import pytest

from repro.aes import encrypt_block, expand_key
from repro.cpu import CPU, aes_firmware
from repro.cpu.programs import RCON_BYTES, ROUND_KEYS
from repro.errors import CPUError

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
PT = bytes.fromhex("3243f6a8885a308d313198a2e0370734")


class TestOnCoreKeySchedule:
    def test_software_variant_correct(self):
        fw = aes_firmware(n_blocks=1, use_ise=False, expand_key_on_core=True)
        cts, _ = fw.run(KEY, [PT])
        assert cts[0] == encrypt_block(PT, KEY)

    def test_ise_variant_correct(self):
        fw = aes_firmware(n_blocks=1, use_ise=True, expand_key_on_core=True)
        cts, _ = fw.run(KEY, [PT])
        assert cts[0] == encrypt_block(PT, KEY)

    def test_expanded_keys_in_memory_match_reference(self):
        fw = aes_firmware(n_blocks=1, use_ise=False, expand_key_on_core=True)
        cpu = CPU()
        fw.run(KEY, [PT], cpu=cpu)
        reference = [b for rk in expand_key(KEY) for b in rk]
        in_memory = [cpu.read_byte(ROUND_KEYS + i) for i in range(176)]
        assert in_memory == reference

    def test_ise_subword_counts_toward_duty(self):
        """The ISE build uses l.sbox for SubWord: 10 extra activations."""
        fw_host = aes_firmware(n_blocks=1, use_ise=True,
                               expand_key_on_core=False)
        fw_core = aes_firmware(n_blocks=1, use_ise=True,
                               expand_key_on_core=True)
        _, host = fw_host.run(KEY, [PT])
        _, core = fw_core.run(KEY, [PT])
        assert core.sbox_cycles == host.sbox_cycles + 10

    def test_key_schedule_adds_cycles_once(self):
        fw_host = aes_firmware(n_blocks=2, expand_key_on_core=False)
        fw_core = aes_firmware(n_blocks=2, expand_key_on_core=True)
        pts = [PT, bytes(16)]
        _, host = fw_host.run(KEY, pts)
        _, core = fw_core.run(KEY, pts)
        overhead = core.cycles - host.cycles
        assert 400 < overhead < 2000  # ~40 loop iterations of setup

    def test_rcon_constants(self):
        assert RCON_BYTES[0] == 0x01
        assert RCON_BYTES[8] == 0x1B  # the wrap through the polynomial

    def test_different_keys_different_schedules(self):
        fw = aes_firmware(n_blocks=1, expand_key_on_core=True)
        cts_a, _ = fw.run(KEY, [PT])
        fw2 = aes_firmware(n_blocks=1, expand_key_on_core=True)
        cts_b, _ = fw2.run(bytes(16), [PT])
        assert cts_a[0] != cts_b[0]


class TestFirmwareMetadata:
    def test_symbols_exposed(self):
        fw = aes_firmware(n_blocks=1)
        for name in ("STATE", "ROUND_KEYS", "SBOX_TABLE", "RCON_TABLE",
                     "PLAINTEXT", "CIPHERTEXT"):
            assert name in fw.symbols

    def test_block_count_validated(self):
        with pytest.raises(CPUError):
            aes_firmware(n_blocks=0)

    def test_source_is_reassemblable(self):
        from repro.cpu import assemble
        fw = aes_firmware(n_blocks=1, expand_key_on_core=True)
        image = assemble(fw.source)
        assert len(image) > 1000
