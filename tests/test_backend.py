"""Backend seam: supervision, rawfile validation, dispatch, fake ngspice.

None of these tests needs a real ngspice.  The subprocess layer is
exercised with tiny Python scripts standing in for the simulator —
well-behaved, flaky, hung, or lying — so every supervision and
validation path runs in CI on a bare machine.
"""

import io
import os
import sys
import textwrap

import numpy as np
import pytest

from repro.errors import (
    BackendError,
    BackendProtocolError,
    BackendTimeoutError,
    BackendUnavailableError,
    CircuitError,
)
from repro.obs import MemorySink, Telemetry
from repro.spice import Circuit, DC, GROUND, Pulse
from repro.spice.backend import (
    InternalBackend,
    NgspiceBackend,
    SupervisorPolicy,
    available_backends,
    get_backend,
    parse_ascii_rawfile,
    run_supervised,
)
from repro.spice.backend import dispatch
from repro.spice.backend.ngspice import NGSPICE_ENV


@pytest.fixture(autouse=True)
def _clean_dispatch(monkeypatch):
    """Every test starts and ends with a pristine backend selection."""
    monkeypatch.delenv(dispatch.BACKEND_ENV, raising=False)
    monkeypatch.delenv(dispatch.STRICT_ENV, raising=False)
    dispatch.reset_default_backend()
    yield
    dispatch.reset_default_backend()


def _divider() -> Circuit:
    ckt = Circuit("div")
    ckt.v("vs", "top", DC(1.0))
    ckt.resistor("r1", "top", "out", 1e3)
    ckt.resistor("r2", "out", GROUND, 1e3)
    return ckt


def _script(tmp_path, body, name="fake-ngspice"):
    """An executable Python script posing as a simulator binary."""
    path = tmp_path / name
    path.write_text("#!" + sys.executable + "\n"
                    + textwrap.dedent(body))
    path.chmod(0o755)
    return str(path)


# A fake that answers --version and otherwise writes a canned rawfile to
# the -r path (the {raw!r} placeholder) and a log to the -o path.
_FAKE_TEMPLATE = """\
import sys
args = sys.argv[1:]
if "--version" in args:
    print("ngspice-fake compiled from nothing")
    sys.exit(0)
with open(args[args.index("-o") + 1], "w") as log:
    log.write("fake ngspice log\\n")
with open(args[args.index("-r") + 1], "w") as out:
    out.write({raw!r})
"""

_OP_RAW = """\
Title: fake
Date: never
Plotname: Operating Point
Flags: real
No. Variables: 3
No. Points: 1
Variables:
\t0\tv(top)\tvoltage
\t1\tv(out)\tvoltage
\t2\ti(v1_vs)\tcurrent
Values:
0\t1.0
\t0.5
\t-0.0005
"""


def _tran_raw(n=5, tstop=4e-9):
    lines = ["Title: fake", "Date: never",
             "Plotname: Transient Analysis", "Flags: real",
             "No. Variables: 4", f"No. Points: {n}", "Variables:",
             "\t0\ttime\ttime", "\t1\tv(top)\tvoltage",
             "\t2\tv(out)\tvoltage", "\t3\ti(v1_vs)\tcurrent", "Values:"]
    for p in range(n):
        t = tstop * p / (n - 1)
        lines += [f"{p}\t{t:.6g}", "\t1.0", f"\t{0.5 * p / (n - 1):.6g}",
                  "\t-0.0005"]
    return "\n".join(lines) + "\n"


# -- supervised subprocess ----------------------------------------------------


class TestRunSupervised:
    def test_success_captures_output(self, tmp_path):
        binary = _script(tmp_path, """
            import sys
            print("hello from fake")
            sys.stderr.write("noise\\n")
        """)
        sink = MemorySink()
        run = run_supervised([binary], telemetry=Telemetry(sinks=[sink]))
        assert run.returncode == 0
        assert "hello from fake" in run.stdout
        assert run.retries_used == 0
        events = [r for r in sink.records
                  if r.get("name") == "spice.backend.subprocess"]
        assert len(events) == 1
        assert "hello from fake" in events[0]["attrs"]["stdout_tail"]

    def test_transient_failure_retried_with_backoff(self, tmp_path):
        marker = tmp_path / "second-run"
        binary = _script(tmp_path, f"""
            import os, sys
            marker = {str(marker)!r}
            if os.path.exists(marker):
                print("recovered")
                sys.exit(0)
            open(marker, "w").close()
            sys.stderr.write("flaky once\\n")
            sys.exit(1)
        """)
        delays = []
        run = run_supervised(
            [binary],
            policy=SupervisorPolicy(retries=2, backoff=0.25,
                                    backoff_factor=2.0),
            sleep=delays.append)
        assert run.retries_used == 1
        assert run.attempts[0].returncode == 1
        assert "flaky once" in run.attempts[0].stderr_tail
        assert delays == [0.25]  # injected sleep: the test runs instantly

    def test_exhausted_retries_raise_with_stderr_tail(self, tmp_path):
        binary = _script(tmp_path, """
            import sys
            sys.stderr.write("doom: singular matrix\\n")
            sys.exit(3)
        """)
        with pytest.raises(BackendError) as err:
            run_supervised([binary],
                           policy=SupervisorPolicy(retries=1, backoff=0.0))
        assert "singular matrix" in str(err.value)
        assert err.value.error_code == "E_BACKEND"
        attempts = err.value.context["attempts"]
        assert [a["returncode"] for a in attempts] == [3, 3]

    def test_missing_binary_is_structured(self, tmp_path):
        with pytest.raises(BackendUnavailableError) as err:
            run_supervised([str(tmp_path / "no-such-simulator")])
        assert err.value.error_code == "E_BACKEND_UNAVAILABLE"
        assert err.value.to_dict()["error_code"] == "E_BACKEND_UNAVAILABLE"

    def test_hang_is_reaped_and_raises_timeout(self, tmp_path):
        binary = _script(tmp_path, """
            import signal, time
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            time.sleep(60)
        """)
        with pytest.raises(BackendTimeoutError) as err:
            run_supervised(
                [binary],
                policy=SupervisorPolicy(timeout=0.3, term_grace=0.2,
                                        retries=2, backoff=0.0))
        assert err.value.error_code == "E_BACKEND_TIMEOUT"
        attempts = err.value.context["attempts"]
        assert len(attempts) == 1  # timeouts are not retried by default
        assert attempts[0]["timed_out"]
        assert attempts[0]["killed"]  # SIGTERM ignored -> SIGKILL escalation

    def test_policy_validation(self):
        with pytest.raises(BackendError):
            SupervisorPolicy(timeout=0.0)
        with pytest.raises(BackendError):
            SupervisorPolicy(retries=-1)
        with pytest.raises(BackendError):
            SupervisorPolicy(backoff_factor=0.5)


# -- rawfile parsing ----------------------------------------------------------


class TestRawfileParser:
    def test_op_plot(self):
        plots = parse_ascii_rawfile(_OP_RAW)
        assert len(plots) == 1
        plot = plots[0]
        assert plot.is_op() and not plot.is_transient()
        assert plot.n_points == 1
        assert plot.vector("out")[0] == pytest.approx(0.5)
        assert plot.vector("V(TOP)")[0] == pytest.approx(1.0)
        assert plot.index_of("nosuch") is None

    def test_transient_plot(self):
        plot = parse_ascii_rawfile(_tran_raw())[0]
        assert plot.is_transient()
        assert plot.n_points == 5
        time = plot.vector("time")
        assert np.all(np.diff(time) > 0)

    def test_missing_vector_is_loud(self):
        plot = parse_ascii_rawfile(_OP_RAW)[0]
        with pytest.raises(BackendProtocolError) as err:
            plot.vector("ghost")
        assert err.value.context["available"] == \
            ["v(top)", "v(out)", "i(v1_vs)"]

    @pytest.mark.parametrize("mutate, message", [
        (lambda t: t.replace("1.0", "nan", 1), "non-finite"),
        (lambda t: t.replace("No. Variables: 3", "No. Variables: 4"),
         "malformed"),
        (lambda t: t.replace("\t0.5\n", ""), "expected 3"),
        (lambda t: t.replace("0\t1.0", "7\t1.0"), "out of order"),
        (lambda t: t.replace("v(out)", "v(top)"), "duplicate"),
        (lambda t: t.replace("Flags: real", "Flags: complex"), "complex"),
        (lambda t: t.replace("Values:", "Garbage:"), "missing Values"),
        (lambda t: "", "no plots"),
    ])
    def test_malformed_rawfiles_rejected(self, mutate, message):
        with pytest.raises(BackendProtocolError, match=message):
            parse_ascii_rawfile(mutate(_OP_RAW))


# -- registry and dispatch ----------------------------------------------------


class TestDispatch:
    def test_registry(self):
        assert available_backends() == ("internal", "ngspice")
        assert isinstance(get_backend("internal"), InternalBackend)
        assert isinstance(get_backend("ngspice"), NgspiceBackend)
        with pytest.raises(BackendError, match="available"):
            get_backend("hspice")
        with pytest.raises(BackendError):
            dispatch.set_default_backend("hspice")  # typos fail fast

    def test_default_is_internal(self):
        assert dispatch.default_backend() is dispatch.default_backend()
        assert dispatch.default_backend().name == "internal"

    def test_dispatch_matches_internal_engine(self):
        from repro.spice import run_transient as internal_tran
        from repro.spice import solve_dc as internal_dc

        ckt = _divider()
        direct = internal_dc(ckt)
        routed = dispatch.solve_dc(ckt)
        assert routed.voltages == direct.voltages
        assert routed.source_currents == direct.source_currents

        ckt2 = Circuit("rc")
        ckt2.v("vin", "in", Pulse(0, 1.0, 1e-9, 1e-11, 1e-11, 2e-9))
        ckt2.resistor("r1", "in", "out", 1e3)
        ckt2.capacitor("c1", "out", GROUND, 1e-12)
        a = internal_tran(ckt2, tstop=4e-9, dt=1e-10)
        b = dispatch.run_transient(ckt2, tstop=4e-9, dt=1e-10)
        np.testing.assert_array_equal(a.time, b.time)
        np.testing.assert_array_equal(a.voltages["out"], b.voltages["out"])

    def test_unavailable_backend_degrades_with_telemetry(self, tmp_path,
                                                         monkeypatch):
        monkeypatch.setenv(dispatch.BACKEND_ENV, "ngspice")
        monkeypatch.setenv(NGSPICE_ENV, str(tmp_path / "not-installed"))
        dispatch.reset_default_backend()
        sink = MemorySink()
        backend = dispatch.default_backend(
            telemetry=Telemetry(sinks=[sink]))
        assert backend.name == "internal"
        events = [r for r in sink.records
                  if r.get("name") == "spice.backend.unavailable"]
        assert len(events) == 1
        assert events[0]["attrs"]["error"]["error_code"] == \
            "E_BACKEND_UNAVAILABLE"
        # The degradation is cached: no second probe, same answer.
        assert dispatch.default_backend().name == "internal"

    def test_strict_mode_propagates(self, tmp_path, monkeypatch):
        monkeypatch.setenv(dispatch.BACKEND_ENV, "ngspice")
        monkeypatch.setenv(NGSPICE_ENV, str(tmp_path / "not-installed"))
        monkeypatch.setenv(dispatch.STRICT_ENV, "1")
        dispatch.reset_default_backend()
        with pytest.raises(BackendUnavailableError):
            dispatch.default_backend()

    def test_explicit_backend_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(dispatch.BACKEND_ENV, "ngspice")
        dispatch.set_default_backend("internal")
        assert dispatch.default_backend().name == "internal"


# -- the ngspice backend against fake binaries --------------------------------


class TestNgspiceBackendFake:
    def test_probe_reports_version(self, tmp_path):
        binary = _script(tmp_path, _FAKE_TEMPLATE.format(raw=_OP_RAW))
        probe = NgspiceBackend(binary=binary).probe()
        assert probe.available
        assert "ngspice-fake" in probe.version
        assert probe.binary == binary

    def test_probe_missing_binary(self, tmp_path):
        backend = NgspiceBackend(binary=str(tmp_path / "missing"))
        with pytest.raises(BackendUnavailableError) as err:
            backend.probe()
        assert err.value.context["env"] == NGSPICE_ENV

    def test_solve_dc_translates_and_negates(self, tmp_path):
        binary = _script(tmp_path, _FAKE_TEMPLATE.format(raw=_OP_RAW))
        op = NgspiceBackend(binary=binary).solve_dc(_divider())
        assert op["top"] == pytest.approx(1.0)
        assert op["out"] == pytest.approx(0.5)
        assert op[GROUND] == 0.0
        # ngspice reports -0.5 mA into the + terminal; internally a
        # delivering source is positive.
        assert op.current("vs") == pytest.approx(0.5e-3)

    def test_solve_dc_ignores_internal_kwargs_but_rejects_typos(
            self, tmp_path):
        binary = _script(tmp_path, _FAKE_TEMPLATE.format(raw=_OP_RAW))
        backend = NgspiceBackend(binary=binary)
        backend.solve_dc(_divider(), guess=None, budget=None)  # ignored
        with pytest.raises(BackendError, match="unsupported"):
            backend.solve_dc(_divider(), gues=None)

    def test_run_transient_on_external_grid(self, tmp_path):
        binary = _script(tmp_path,
                         _FAKE_TEMPLATE.format(raw=_tran_raw()))
        result = NgspiceBackend(binary=binary).run_transient(
            _divider(), tstop=4e-9, dt=1e-9, record=["out"])
        assert result.stats.grid_points == 5
        assert result.time[-1] == pytest.approx(4e-9)
        assert result.voltages["out"][-1] == pytest.approx(0.5)
        assert "top" not in result.voltages  # record filter honoured
        assert result.current("vs").v[0] == pytest.approx(0.5e-3)

    def test_run_transient_unknown_record_name(self, tmp_path):
        binary = _script(tmp_path,
                         _FAKE_TEMPLATE.format(raw=_tran_raw()))
        with pytest.raises(CircuitError, match="not nodes"):
            NgspiceBackend(binary=binary).run_transient(
                _divider(), tstop=4e-9, dt=1e-9, record=["ghost"])

    def test_missing_node_in_rawfile(self, tmp_path):
        truncated = _OP_RAW.replace("v(out)", "v(unrelated)")
        binary = _script(tmp_path, _FAKE_TEMPLATE.format(raw=truncated))
        with pytest.raises(BackendProtocolError, match="missing node"):
            NgspiceBackend(binary=binary).solve_dc(_divider())

    def test_missing_branch_current(self, tmp_path):
        gutted = _OP_RAW.replace("i(v1_vs)", "i(v9_other)")
        binary = _script(tmp_path, _FAKE_TEMPLATE.format(raw=gutted))
        with pytest.raises(BackendProtocolError, match="branch current"):
            NgspiceBackend(binary=binary).solve_dc(_divider())

    def test_garbage_rawfile(self, tmp_path):
        binary = _script(
            tmp_path, _FAKE_TEMPLATE.format(raw="not a rawfile at all\n"))
        with pytest.raises(BackendProtocolError):
            NgspiceBackend(binary=binary).solve_dc(_divider())

    def test_no_rawfile_written(self, tmp_path):
        binary = _script(tmp_path, """
            import sys
            args = sys.argv[1:]
            if "--version" in args:
                print("ngspice-fake")
                sys.exit(0)
            with open(args[args.index("-o") + 1], "w") as log:
                log.write("Fatal error: deck exploded\\n")
            sys.exit(0)
        """)
        with pytest.raises(BackendProtocolError) as err:
            NgspiceBackend(binary=binary).solve_dc(_divider())
        assert "deck exploded" in err.value.context["log_tail"]

    def test_hung_simulator_times_out(self, tmp_path):
        binary = _script(tmp_path, """
            import sys, time
            if "--version" in sys.argv:
                print("ngspice-fake")
                sys.exit(0)
            time.sleep(60)
        """)
        backend = NgspiceBackend(
            binary=binary,
            policy=SupervisorPolicy(timeout=0.3, term_grace=0.2))
        with pytest.raises(BackendTimeoutError):
            backend.solve_dc(_divider())

    def test_dispatch_routes_to_fake(self, tmp_path, monkeypatch):
        binary = _script(tmp_path, _FAKE_TEMPLATE.format(raw=_OP_RAW))
        monkeypatch.setenv(dispatch.BACKEND_ENV, "ngspice")
        monkeypatch.setenv(NGSPICE_ENV, binary)
        dispatch.reset_default_backend()
        sink = MemorySink()
        tele = Telemetry(sinks=[sink])
        op = dispatch.solve_dc(_divider(), telemetry=tele)
        assert op["out"] == pytest.approx(0.5)
        selected = [r for r in sink.records
                    if r.get("name") == "spice.backend.selected"]
        assert selected and selected[0]["attrs"]["backend"] == "ngspice"
