"""Unit tests for the repro.obs observability layer.

Covers the metric primitives and their associative merge, the sinks
(including the append-only JSONL contract), span nesting and worker
reassembly on the Telemetry handle, and the record/stream schema
validation that CI runs against real traces.
"""

import io
import json
import threading

import numpy as np
import pytest

from repro.errors import ReproError
from repro.obs import (
    NULL_TELEMETRY,
    Counter,
    Gauge,
    Histogram,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NullTelemetry,
    SchemaError,
    Telemetry,
    muted_telemetry,
    read_jsonl,
    span_tree,
    validate_record,
    validate_stream,
)


# -- metrics ------------------------------------------------------------------

class TestMetrics:
    def test_counter_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == {"type": "counter", "value": 5}

    def test_gauge_keeps_latest(self):
        g = Gauge("g")
        assert g.snapshot()["value"] is None
        g.set(3)
        g.set(7)
        assert g.snapshot()["value"] == 7

    def test_histogram_aggregates(self):
        h = Histogram("h")
        for v in (2.0, 4.0, 6.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["total"] == pytest.approx(12.0)
        assert snap["min"] == 2.0 and snap["max"] == 6.0
        assert snap["mean"] == pytest.approx(4.0)

    def test_empty_histogram_snapshot_is_json_safe(self):
        snap = Histogram("h").snapshot()
        assert snap["min"] is None and snap["max"] is None
        assert snap["mean"] is None
        json.dumps(snap)

    def test_registry_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ReproError):
            reg.gauge("x")

    def test_merge_is_associative_over_chunks(self):
        """Merging worker snapshots chunk-by-chunk equals one big run."""
        whole = MetricsRegistry()
        for v in range(10):
            whole.counter("n").inc()
            whole.histogram("h").observe(float(v))
        merged = MetricsRegistry()
        for lo, hi in ((0, 3), (3, 7), (7, 10)):
            worker = MetricsRegistry()
            for v in range(lo, hi):
                worker.counter("n").inc()
                worker.histogram("h").observe(float(v))
            merged.merge(worker.snapshot())
        assert merged.snapshot() == whole.snapshot()

    def test_merge_unknown_type_raises(self):
        with pytest.raises(ReproError):
            MetricsRegistry().merge({"x": {"type": "exotic", "value": 1}})


# -- sinks --------------------------------------------------------------------

class TestSinks:
    def test_memory_sink_partitions_kinds(self):
        tele = Telemetry(sinks=[MemorySink()])
        with tele.span("a"):
            tele.event("e")
        sink = tele.sinks[0]
        assert [r["name"] for r in sink.spans()] == ["a"]
        assert [r["name"] for r in sink.events()] == ["e"]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tele = Telemetry(sinks=[JsonlSink(path)])
        with tele.span("solve", n=3):
            tele.event("attempt", strategy="newton")
        tele.emit_metrics()
        tele.close()
        records = read_jsonl(path, strict=True)
        assert [r["kind"] for r in records] == ["event", "span", "metrics"]
        validate_stream(records)

    def test_jsonl_appends_never_truncates(self, tmp_path):
        """A pre-existing (even corrupt) file is appended to, not parsed."""
        path = tmp_path / "trace.jsonl"
        path.write_text('{"torn": \n')  # torn line from a kill
        tele = Telemetry(sinks=[JsonlSink(path)])
        tele.event("after-resume")
        tele.close()
        raw = path.read_text().splitlines()
        assert raw[0] == '{"torn": '
        records = read_jsonl(path)  # lenient: skips the torn line
        assert [r["name"] for r in records if r.get("kind") == "event"] == \
            ["after-resume"]
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path, strict=True)

    def test_jsonl_serialises_numpy_scalars(self, tmp_path):
        path = tmp_path / "np.jsonl"
        tele = Telemetry(sinks=[JsonlSink(path)])
        tele.event("e", value=np.float64(1.5), count=np.int64(3))
        tele.close()
        (record,) = read_jsonl(path, strict=True)
        assert record["attrs"] == {"value": 1.5, "count": 3}

    def test_jsonl_accepts_file_object_without_closing_it(self):
        buf = io.StringIO()
        sink = JsonlSink(buf, flush_every=1)
        sink.emit({"kind": "event", "name": "x", "t": 0.0, "attrs": {},
                   "seq": 1})
        sink.close()
        assert not buf.closed
        assert json.loads(buf.getvalue())["name"] == "x"


# -- telemetry handle ---------------------------------------------------------

class TestTelemetry:
    def test_null_telemetry_is_inert_and_shared(self):
        assert NULL_TELEMETRY.enabled is False
        span = NULL_TELEMETRY.span("anything", x=1)
        with span as s:
            s.set("k", "v")
        NULL_TELEMETRY.counter("c").inc()
        NULL_TELEMETRY.histogram("h").observe(1.0)
        NULL_TELEMETRY.adopt([{"kind": "span"}])
        assert NULL_TELEMETRY.span("a") is NULL_TELEMETRY.span("b")
        assert isinstance(NULL_TELEMETRY, NullTelemetry)

    def test_span_nesting_and_tree(self):
        tele = Telemetry(sinks=[MemorySink()])
        with tele.span("outer", depth=0):
            with tele.span("inner", depth=1):
                pass
            with tele.span("inner2"):
                pass
        forest = span_tree(tele.sinks[0].records)
        assert len(forest) == 1
        assert forest[0]["name"] == "outer"
        assert [c["name"] for c in forest[0]["children"]] == \
            ["inner", "inner2"]

    def test_span_records_exception_and_propagates(self):
        tele = Telemetry(sinks=[MemorySink()])
        with pytest.raises(ValueError):
            with tele.span("bad"):
                raise ValueError("boom")
        (span,) = tele.sinks[0].spans()
        assert span["attrs"]["error"] == "ValueError"

    def test_threads_get_independent_span_stacks(self):
        tele = Telemetry(sinks=[MemorySink()])
        seen = {}

        def work(name):
            with tele.span(name):
                seen[name] = tele.current_span_id()

        with tele.span("root"):
            t = threading.Thread(target=work, args=("child-thread",))
            t.start()
            t.join()
        spans = {s["name"]: s for s in tele.sinks[0].spans()}
        # The other thread's span must NOT be parented to this thread's
        # root — each thread has its own stack.
        assert spans["child-thread"]["parent_id"] is None

    def test_collector_adopt_reassembles_deterministically(self):
        def make_chunk(i):
            collector = Telemetry(sinks=[MemorySink()])
            with collector.span("chunk.work", index=i):
                collector.counter("done").inc()
            collector.emit_metrics()
            return collector.sinks[0].records

        tele = Telemetry(sinks=[MemorySink()])
        with tele.span("parent"):
            # "Workers" finish out of order; parent adopts in chunk order.
            chunks = {i: make_chunk(i) for i in (2, 0, 1)}
            for i in (0, 1, 2):
                tele.adopt(chunks[i], extra_attrs={"chunk": i})
        forest = span_tree(tele.sinks[0].records)
        children = forest[0]["children"]
        assert [c["attrs"]["chunk"] for c in children] == [0, 1, 2]
        assert [c["attrs"]["index"] for c in children] == [0, 1, 2]
        assert tele.registry.counter("done").value == 3

    def test_adopt_remaps_event_span_refs(self):
        collector = Telemetry(sinks=[MemorySink()])
        with collector.span("w"):
            collector.event("ev")
        tele = Telemetry(sinks=[MemorySink()])
        tele.adopt(collector.sinks[0].records)
        records = tele.sinks[0].records
        ev = next(r for r in records if r["kind"] == "event")
        sp = next(r for r in records if r["kind"] == "span")
        assert ev["span_id"] == sp["span_id"]
        validate_stream(records)

    def test_timer_observes_into_histogram(self):
        tele = Telemetry()
        with tele.timer("t"):
            pass
        snap = tele.registry.histogram("t").snapshot()
        assert snap["count"] == 1
        assert snap["min"] >= 0.0

    def test_progress_renders_and_records(self):
        rendered = []
        tele = Telemetry(sinks=[MemorySink()], progress=rendered.append)
        tele.progress("halfway")
        assert rendered == ["halfway"]
        (record,) = tele.sinks[0].records
        assert record["kind"] == "progress" and record["text"] == "halfway"

    def test_muted_telemetry_records_but_never_renders(self, capsys):
        tele = muted_telemetry()
        tele.progress("silent")
        assert capsys.readouterr().out == ""
        assert tele.sinks[0].records[0]["text"] == "silent"


# -- schema -------------------------------------------------------------------

class TestSchema:
    def _span(self, **over):
        record = {"kind": "span", "name": "s", "span_id": 1,
                  "parent_id": None, "t_start": 0.0, "t_end": 1.0,
                  "attrs": {}, "seq": 1}
        record.update(over)
        return record

    def test_valid_records_pass(self):
        validate_record(self._span())
        validate_record({"kind": "event", "name": "e", "t": 0.0,
                         "attrs": {}, "seq": 1})
        validate_record({"kind": "progress", "text": "x", "t": 0.0,
                         "seq": 1})
        validate_record({"kind": "metrics", "t": 0.0, "seq": 1,
                         "registry": {"c": {"type": "counter", "value": 1}}})

    @pytest.mark.parametrize("mutation", [
        {"kind": "mystery"},
        {"name": 7},
        {"t_end": float("nan")},
        {"t_end": -1.0},
        {"parent_id": "three"},
        {"seq": None},
    ])
    def test_bad_span_shapes_raise(self, mutation):
        with pytest.raises(SchemaError):
            validate_record(self._span(**mutation))

    def test_metrics_entry_type_checked(self):
        with pytest.raises(SchemaError):
            validate_record({"kind": "metrics", "t": 0.0, "seq": 1,
                             "registry": {"bad": {"type": "nope"}}})

    def test_stream_rejects_duplicate_ids(self):
        with pytest.raises(SchemaError, match="duplicate"):
            validate_stream([self._span(seq=1),
                             self._span(seq=2)])

    def test_stream_rejects_nonincreasing_seq(self):
        with pytest.raises(SchemaError, match="seq"):
            validate_stream([self._span(seq=5),
                             self._span(span_id=2, seq=5)])

    def test_stream_rejects_missing_parent(self):
        with pytest.raises(SchemaError, match="missing parent"):
            validate_stream([self._span(parent_id=99)])

    def test_stream_rejects_escaping_child_window(self):
        child = self._span(span_id=2, parent_id=1, t_start=0.5,
                           t_end=2.0, seq=2)
        with pytest.raises(SchemaError, match="escapes"):
            validate_stream([self._span(), child])

    def test_stream_rejects_parent_cycles(self):
        a = self._span(span_id=1, parent_id=2, seq=1)
        b = self._span(span_id=2, parent_id=1, seq=2)
        with pytest.raises(SchemaError, match="cycle"):
            validate_stream([a, b])

    def test_real_telemetry_stream_validates(self):
        tele = Telemetry(sinks=[MemorySink()])
        with tele.span("a"):
            with tele.span("b"):
                tele.event("e")
            tele.progress("p")
        tele.emit_metrics()
        spans = validate_stream(tele.sinks[0].records)
        assert len(spans) == 2

    def test_heartbeat_record_shape(self):
        validate_record({"kind": "heartbeat", "worker": "w1", "t": 0.0,
                         "attrs": {"job": "job-x"}, "seq": 1})
        for bad in ({"kind": "heartbeat", "t": 0.0, "attrs": {}, "seq": 1},
                    {"kind": "heartbeat", "worker": 7, "t": 0.0,
                     "attrs": {}, "seq": 1},
                    {"kind": "heartbeat", "worker": "w1", "t": 0.0,
                     "attrs": None, "seq": 1}):
            with pytest.raises(SchemaError):
                validate_record(bad)

    def test_telemetry_emits_heartbeats(self):
        sink = MemorySink()
        tele = Telemetry(sinks=[sink], source="w1")
        tele.heartbeat("w1", job="job-x", chunk=3)
        beats = [r for r in sink.records if r["kind"] == "heartbeat"]
        assert len(beats) == 1
        assert beats[0]["worker"] == "w1"
        assert beats[0]["src"] == "w1"
        assert beats[0]["attrs"] == {"job": "job-x", "chunk": 3}
        validate_stream(sink.records)


class TestMultiSourceStreams:
    """Several emitters sharing one stream (the job service's shared
    events file), partitioned by ``src``."""

    def _worker_records(self, name, n_events=1):
        sink = MemorySink()
        tele = Telemetry(sinks=[sink], source=name)
        with tele.span("chunk", worker=name):
            for i in range(n_events):
                tele.event("step", i=i)
        tele.heartbeat(name, chunk=0)
        return sink.records

    def test_source_label_stamps_every_record(self):
        records = self._worker_records("w1", n_events=2)
        assert records and all(r["src"] == "w1" for r in records)

    def test_interleaved_sources_validate_independently(self):
        a = self._worker_records("a")
        b = self._worker_records("b")
        # Interleave: seq counters and span ids restart per emitter, so
        # a single-stream validation of the merge would reject it...
        merged = [r for pair in zip(a, b) for r in pair]
        spans = validate_stream(merged)
        # ...but partitioned validation passes, with qualified ids.
        assert set(spans) == {("a", 1), ("b", 1)}
        stripped = [{k: v for k, v in r.items() if k != "src"}
                    for r in merged]
        with pytest.raises(SchemaError):
            validate_stream(stripped)

    def test_non_string_src_rejected(self):
        with pytest.raises(SchemaError, match="src"):
            validate_stream([{"kind": "event", "name": "e", "t": 0.0,
                              "attrs": {}, "seq": 1, "src": 7}])

    def test_span_tree_forests_per_source(self):
        merged = self._worker_records("a") + self._worker_records("b")
        forest = span_tree(merged)
        assert [t["name"] for t in forest] == ["chunk", "chunk"]
        assert [t["attrs"]["worker"] for t in forest] == ["a", "b"]
