"""Tests for the dangling sweep and the command-line interface."""

import io
import sys

import pytest

from repro.cells import build_cmos_library, build_pg_mcml_library
from repro.netlist import GateNetlist, LogicSimulator
from repro.synth import sweep_dangling


@pytest.fixture(scope="module")
def cmos():
    return build_cmos_library()


class TestSweepDangling:
    def make(self, lib):
        nl = GateNetlist("mixed", lib)
        nl.add_primary_input("a")
        nl.add_instance("INV", {"A": "a", "Y": "live"}, name="u_live")
        nl.add_instance("INV", {"A": "live", "Y": "y"}, name="u_out")
        nl.add_primary_output("y")
        nl.add_instance("INV", {"A": "a", "Y": "dead1"}, name="u_dead1")
        nl.add_instance("INV", {"A": "dead1", "Y": "dead2"},
                        name="u_dead2")
        return nl

    def test_removes_dead_chain(self, cmos):
        nl = self.make(cmos)
        removed = sweep_dangling(nl)
        # u_dead2 drives nothing; once gone, u_dead1 is dead too.
        assert set(removed) == {"u_dead1", "u_dead2"}
        assert nl.total_cells() == 2
        nl.validate()

    def test_logic_unchanged(self, cmos):
        nl = self.make(cmos)
        sweep_dangling(nl)
        sim = LogicSimulator(nl)
        sim.initialize({"a": True})
        assert sim.values["y"] is True

    def test_keep_set_respected(self, cmos):
        nl = self.make(cmos)
        removed = sweep_dangling(nl, keep={"u_dead2"})
        assert removed == []  # the kept sink keeps its fan-in alive

    def test_sequential_never_swept(self, cmos):
        nl = GateNetlist("reg", cmos)
        nl.add_primary_input("d")
        nl.add_primary_input("ck")
        nl.add_instance("DFF", {"D": "d", "CK": "ck", "Q": "q"},
                        name="ff")
        assert sweep_dangling(nl) == []
        assert "ff" in nl.instances

    def test_clean_netlist_untouched(self, cmos):
        nl = GateNetlist("clean", cmos)
        nl.add_primary_input("a")
        nl.add_instance("INV", {"A": "a", "Y": "y"})
        nl.add_primary_output("y")
        assert sweep_dangling(nl) == []

    def test_pg_sleep_buffers_sweepable_without_keep(self):
        """Sleep buffers drive side-band loads the netlist cannot see;
        the insert/sweep contract is to pass them via ``keep``."""
        pg = build_pg_mcml_library()
        nl = GateNetlist("blk", pg)
        nl.add_primary_input("a")
        prev = "a"
        for i in range(20):
            nl.add_instance("BUF", {"A": prev, "Y": f"n{i}"}, name=f"u{i}")
            prev = f"n{i}"
        nl.add_primary_output(prev)
        from repro.synth import insert_sleep_tree
        tree = insert_sleep_tree(nl)
        removed = sweep_dangling(nl, keep=set(tree.buffer_instances))
        assert removed == []
        assert nl.total_cells() == 20 + tree.n_buffers


class TestCli:
    def run_cli(self, *argv):
        from repro.__main__ import main
        captured = io.StringIO()
        old = sys.stdout
        sys.stdout = captured
        try:
            code = main(list(argv))
        finally:
            sys.stdout = old
        return code, captured.getvalue()

    def test_list(self):
        code, out = self.run_cli("list")
        assert code == 0
        assert "table1" in out and "fig6" in out

    def test_table1(self):
        code, out = self.run_cli("table1")
        assert code == 0
        assert "7.4480" in out

    def test_csv_export(self, tmp_path):
        path = str(tmp_path / "fig5.csv")
        code, out = self.run_cli("fig5", "--csv", path)
        assert code == 0
        with open(path, encoding="utf-8") as stream:
            assert stream.readline().startswith("time_s,")

    def test_csv_unsupported_target(self, tmp_path):
        path = str(tmp_path / "t1.csv")
        code, _ = self.run_cli("table1", "--csv", path)
        assert code == 2

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            self.run_cli("fig99")
