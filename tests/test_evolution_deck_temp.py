"""Tests for CPA evolution, SPICE deck export, and the temperature study."""

import io

import numpy as np
import pytest

from repro.aes import SBOX
from repro.cells import McmlCellGenerator, function, solve_bias
from repro.errors import AttackError, CircuitError
from repro.experiments.ablation import run_temperature
from repro.sca import cpa_evolution
from repro.sca.leakage import hamming_weight
from repro.spice import Circuit, DC, Pulse, PWL, write_spice_deck
from repro.units import uA


def leaky_traces(key=0x3C, n=256, gain=1.5, noise=0.3, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.integers(0, 256, size=n)
    traces = rng.normal(0.0, noise, size=(n, 12))
    leak = np.array([hamming_weight(SBOX[p ^ key]) for p in pts])
    traces[:, 5] += gain * leak
    return traces, pts.tolist()


class TestCpaEvolution:
    def test_true_key_escapes_on_leaky_target(self):
        traces, pts = leaky_traces()
        evo = cpa_evolution(traces, pts, true_key=0x3C, step=32)
        assert evo.escape_count() is not None
        assert evo.final_rank() == 0

    def test_envelope_shrinks_with_traces(self):
        traces, pts = leaky_traces(gain=0.0)
        evo = cpa_evolution(traces, pts, true_key=0x3C, step=32)
        first, last = evo.points[0], evo.points[-1]
        assert last.wrong_envelope < first.wrong_envelope

    def test_no_escape_without_leak(self):
        traces, pts = leaky_traces(gain=0.0, seed=4)
        evo = cpa_evolution(traces, pts, true_key=0x3C, step=64)
        assert evo.escape_count() is None or evo.final_rank() > 0 or \
            evo.points[-1].true_peak <= 1.2 * evo.points[-1].wrong_envelope

    def test_series_export(self):
        traces, pts = leaky_traces()
        evo = cpa_evolution(traces, pts, true_key=0x3C, step=64)
        n, true, env = evo.series()
        assert n[-1] == len(pts)
        assert true.shape == env.shape == n.shape

    def test_validation(self):
        traces, pts = leaky_traces(n=64)
        with pytest.raises(AttackError):
            cpa_evolution(traces, pts[:10], true_key=0)
        with pytest.raises(AttackError):
            cpa_evolution(traces, pts, true_key=0, step=1)


class TestSpiceDeck:
    def test_rc_deck(self):
        ckt = Circuit("rc")
        ckt.v("vin", "in", Pulse(0, 1.2, 1e-9, 1e-11, 1e-11, 2e-9))
        ckt.resistor("r1", "in", "out", 1e3)
        ckt.capacitor("c1", "out", "0", 1e-12)
        buf = io.StringIO()
        write_spice_deck(buf, ckt, tran={"tstep": 1e-12, "tstop": 5e-9})
        deck = buf.getvalue()
        assert "R1_r1 in out 1000" in deck
        assert "C1_c1 out 0 1e-12" in deck
        assert "PULSE(0 1.2" in deck
        assert ".TRAN 1e-12 5e-09" in deck
        assert deck.strip().endswith(".END")

    def test_mcml_buffer_deck_has_models(self):
        bias = solve_bias(uA(50))
        cell = McmlCellGenerator(sizing=bias.sizing).build(function("BUF"))
        ckt = cell.circuit
        ckt.v("vdd", cell.vdd_net, 1.2)
        ckt.v("vvn", cell.vn_net, bias.sizing.vn)
        ckt.v("vvp", cell.vp_net, bias.sizing.vp)
        ckt.v("vin_p", cell.input_nets["A"][0], DC(1.2))
        ckt.v("vin_n", cell.input_nets["A"][1], DC(0.8))
        buf = io.StringIO()
        write_spice_deck(buf, ckt)
        deck = buf.getvalue()
        assert ".MODEL nmos_hvt NMOS" in deck
        assert ".MODEL pmos_lvt PMOS" in deck
        assert deck.count("\nM") == 5  # five transistors

    def test_pwl_export(self):
        ckt = Circuit()
        ckt.v("vin", "in", PWL([(0.0, 0.0), (1e-9, 1.0)]))
        ckt.resistor("r1", "in", "0", 1e3)
        buf = io.StringIO()
        write_spice_deck(buf, ckt)
        assert "PWL(0 0 1e-09 1)" in buf.getvalue()

    def test_tran_spec_validated(self):
        ckt = Circuit()
        ckt.v("vin", "in", 1.0)
        ckt.resistor("r1", "in", "0", 1e3)
        with pytest.raises(CircuitError):
            write_spice_deck(io.StringIO(), ckt, tran={"tstep": 1e-12})


class TestTemperature:
    @pytest.fixture(scope="class")
    def study(self):
        return run_temperature(temps_k=(300.0, 380.0))

    def test_leakage_grows_with_temperature(self, study):
        assert study.leakage_growth() > 10.0

    def test_gate_still_off_when_hot(self, study):
        hot = study.point(380.0)
        assert hot.on_off_ratio > 1e3

    def test_active_current_mild_dependence(self, study):
        cold = study.point(300.0)
        hot = study.point(380.0)
        # Tail current rises with falling Vt but stays the same order.
        assert hot.active_current < 2.5 * cold.active_current

    def test_unknown_temperature(self, study):
        with pytest.raises(KeyError):
            study.point(999.0)
