"""Tests for the cell-function registry."""

import itertools

import pytest

from repro.bdd import Manager
from repro.cells import FUNCTIONS, function
from repro.errors import CellError


def env(fn, bits):
    return dict(zip(fn.inputs, bits))


class TestRegistry:
    def test_unknown_function(self):
        with pytest.raises(CellError):
            function("FROB3")

    def test_paper_library_functions_present(self):
        for name in ("BUF", "DIFF2SINGLE", "AND2", "AND3", "AND4", "MUX2",
                     "MUX4", "MAJ32", "XOR2", "XOR3", "XOR4", "DLATCH",
                     "DFF", "DFFR", "EDFF", "FA"):
            assert function(name).name == name

    def test_cmos_helpers_present(self):
        for name in ("INV", "NAND2", "NOR2", "XNOR2", "TIEH", "TIEL",
                     "RAILSWAP", "SLEEPBUF"):
            assert function(name).name == name


class TestCombinational:
    def test_buf(self):
        fn = function("BUF")
        assert fn.evaluate({"A": True})["Y"] is True
        assert fn.evaluate({"A": False})["Y"] is False

    def test_inv_and_railswap(self):
        for name in ("INV", "RAILSWAP"):
            fn = function(name)
            assert fn.evaluate({"A": True})["Y"] is False

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_and_or_nand_nor(self, n):
        names = ["A", "B", "C", "D"][:n]
        for bits in itertools.product([False, True], repeat=n):
            e = dict(zip(names, bits))
            assert function(f"AND{n}").evaluate(e)["Y"] == all(bits)
            assert function(f"NAND{n}").evaluate(e)["Y"] == (not all(bits))
            assert function(f"OR{n}").evaluate(e)["Y"] == any(bits)
            assert function(f"NOR{n}").evaluate(e)["Y"] == (not any(bits))

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_xor(self, n):
        names = ["A", "B", "C", "D"][:n]
        for bits in itertools.product([False, True], repeat=n):
            e = dict(zip(names, bits))
            assert function(f"XOR{n}").evaluate(e)["Y"] == (sum(bits) % 2 == 1)

    def test_xnor2(self):
        fn = function("XNOR2")
        assert fn.evaluate({"A": True, "B": True})["Y"] is True
        assert fn.evaluate({"A": True, "B": False})["Y"] is False

    def test_mux2(self):
        fn = function("MUX2")
        assert fn.evaluate({"S": False, "D0": True, "D1": False})["Y"] is True
        assert fn.evaluate({"S": True, "D0": True, "D1": False})["Y"] is False

    def test_mux4_select_encoding(self):
        fn = function("MUX4")
        for sel in range(4):
            data = {f"D{i}": (i == sel) for i in range(4)}
            e = {"S0": bool(sel & 1), "S1": bool(sel & 2), **data}
            assert fn.evaluate(e)["Y"] is True

    def test_maj32(self):
        fn = function("MAJ32")
        assert fn.evaluate({"A": 1, "B": 1, "C": 0})["Y"] is True
        assert fn.evaluate({"A": 1, "B": 0, "C": 0})["Y"] is False

    def test_full_adder(self):
        fn = function("FA")
        for a, b, ci in itertools.product([0, 1], repeat=3):
            out = fn.evaluate({"A": a, "B": b, "CI": ci})
            total = a + b + ci
            assert out["S"] == bool(total % 2)
            assert out["CO"] == (total >= 2)

    def test_ties(self):
        assert function("TIEH").evaluate({"A": False})["Y"] is True
        assert function("TIEL").evaluate({"A": True})["Y"] is False

    def test_truth_table_msb_first(self):
        assert function("AND2").truth_table("Y") == [0, 0, 0, 1]
        assert function("OR2").truth_table("Y") == [0, 1, 1, 1]

    def test_truth_table_unknown_output(self):
        with pytest.raises(CellError):
            function("AND2").truth_table("Z")


class TestBdds:
    def test_and2_bdd(self):
        m = Manager()
        bdds = function("AND2").bdds(m)
        assert bdds["Y"].truth_table(["A", "B"]) == [0, 0, 0, 1]

    def test_fa_two_outputs(self):
        m = Manager()
        bdds = function("FA").bdds(m)
        assert set(bdds) == {"S", "CO"}
        assert bdds["S"].truth_table(["A", "B", "CI"]) == \
            function("FA").truth_table("S")

    def test_pin_renaming(self):
        m = Manager()
        bdds = function("XOR2").bdds(m, pin_map={"A": "net1", "B": "net2"})
        assert bdds["Y"].support() == {"net1", "net2"}

    def test_sequential_has_no_bdd(self):
        with pytest.raises(CellError):
            function("DFF").bdds(Manager())


class TestSequential:
    def test_dlatch_transparent(self):
        fn = function("DLATCH")
        assert fn.evaluate({"D": True, "EN": True})["Q"] is True
        state = fn.next_state({"D": True, "EN": True}, {"Q_state": False})
        assert state["Q_state"] is True

    def test_dlatch_holds(self):
        fn = function("DLATCH")
        out = fn.evaluate({"D": True, "EN": False, "Q_state": False})
        assert out["Q"] is False
        state = fn.next_state({"D": True, "EN": False}, {"Q_state": False})
        assert state["Q_state"] is False

    def test_dff_captures_d(self):
        fn = function("DFF")
        state = fn.next_state({"D": True, "CK": True}, {"Q_state": False})
        assert state["Q_state"] is True

    def test_dffr_async_reset(self):
        fn = function("DFFR")
        assert fn.evaluate({"D": True, "CK": False, "RN": False})["Q"] is False
        state = fn.next_state({"D": True, "CK": True, "RN": False},
                              {"Q_state": True})
        assert state["Q_state"] is False

    def test_edff_enable_gates_capture(self):
        fn = function("EDFF")
        hold = fn.next_state({"D": True, "CK": True, "E": False},
                             {"Q_state": False})
        assert hold["Q_state"] is False
        take = fn.next_state({"D": True, "CK": True, "E": True},
                             {"Q_state": False})
        assert take["Q_state"] is True

    def test_clock_pins(self):
        assert function("DFF").clock_pin == "CK"
        assert function("DLATCH").clock_pin == "EN"

    def test_state_pins_declared(self):
        for name in ("DLATCH", "DFF", "DFFR", "EDFF"):
            assert function(name).state_pins == ("Q_state",)
