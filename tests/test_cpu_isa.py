"""Tests for the ISA encoding/decoding and the assembler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import OPCODES, assemble, decode, disassemble, encode
from repro.cpu.isa import Instruction
from repro.errors import AssemblerError, CPUError


class TestEncodeDecode:
    @pytest.mark.parametrize("inst", [
        Instruction("l.add", rd=3, ra=4, rb=5),
        Instruction("l.sub", rd=31, ra=0, rb=1),
        Instruction("l.xor", rd=7, ra=7, rb=7),
        Instruction("l.addi", rd=3, ra=4, imm=-42),
        Instruction("l.andi", rd=3, ra=4, imm=0xFFFF),
        Instruction("l.movhi", rd=9, imm=0x8000),
        Instruction("l.lwz", rd=2, ra=1, imm=16),
        Instruction("l.lbz", rd=2, ra=1, imm=-1),
        Instruction("l.sw", ra=1, rb=2, imm=-4),
        Instruction("l.sb", ra=1, rb=2, imm=2047),
        Instruction("l.j", imm=-100),
        Instruction("l.bf", imm=5),
        Instruction("l.jr", rb=9),
        Instruction("l.sfeq", ra=3, rb=4),
        Instruction("l.sfltu", ra=3, rb=4),
        Instruction("l.slli", rd=1, ra=2, imm=31),
        Instruction("l.srai", rd=1, ra=2, imm=7),
        Instruction("l.sbox", rd=5, ra=6),
        Instruction("l.nop", imm=1),
    ])
    def test_roundtrip(self, inst):
        assert decode(encode(inst)) == inst

    def test_all_mnemonics_roundtrip_default_fields(self):
        for mnemonic in OPCODES:
            inst = Instruction(mnemonic, rd=1, ra=2, rb=3, imm=4)
            _, _, fmt = OPCODES[mnemonic]
            # Normalise fields the format does not carry.
            encoded = encode(inst)
            decoded = decode(encoded)
            assert decoded.mnemonic == mnemonic

    def test_store_offset_range(self):
        with pytest.raises(CPUError):
            encode(Instruction("l.sw", ra=1, rb=2, imm=1 << 15))

    def test_immediate_range(self):
        with pytest.raises(CPUError):
            encode(Instruction("l.addi", rd=1, ra=1, imm=1 << 15))

    def test_shift_range(self):
        with pytest.raises(CPUError):
            encode(Instruction("l.slli", rd=1, ra=1, imm=32))

    def test_register_range(self):
        with pytest.raises(CPUError):
            encode(Instruction("l.add", rd=32, ra=0, rb=0))

    def test_unknown_mnemonic(self):
        with pytest.raises(CPUError):
            encode(Instruction("l.frob"))

    def test_unknown_opcode_decode(self):
        with pytest.raises(CPUError):
            decode(0x3F << 26)

    def test_disassemble(self):
        word = encode(Instruction("l.addi", rd=3, ra=4, imm=-2))
        assert disassemble(word) == "l.addi r3, r4, -2"

    def test_disassemble_load(self):
        word = encode(Instruction("l.lwz", rd=3, ra=4, imm=8))
        assert disassemble(word) == "l.lwz r3, 8(r4)"

    @given(st.sampled_from(sorted(OPCODES)), st.integers(0, 31),
           st.integers(0, 31), st.integers(0, 31),
           st.integers(-2047, 2047))
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_property(self, mnemonic, rd, ra, rb, imm):
        _, _, fmt = OPCODES[mnemonic]
        if fmt in ("IU", "IH", "N"):
            imm = abs(imm)
        if fmt == "SHI":
            imm = imm % 32
        inst = Instruction(mnemonic, rd=rd, ra=ra, rb=rb, imm=imm)
        decoded = decode(encode(inst))
        assert decoded.mnemonic == mnemonic
        # Fields the format encodes must survive.
        if fmt == "IH":
            assert decoded.rd == rd and decoded.imm == imm
        elif fmt in ("I", "IU", "LD", "SHI"):
            assert decoded.rd == rd and decoded.ra == ra
            assert decoded.imm == imm
        elif fmt == "R":
            assert (decoded.rd, decoded.ra, decoded.rb) == (rd, ra, rb)
        elif fmt == "ST":
            assert (decoded.ra, decoded.rb, decoded.imm) == (ra, rb, imm)
        elif fmt == "SF":
            assert (decoded.ra, decoded.rb) == (ra, rb)
        elif fmt == "J":
            assert decoded.imm == imm
        elif fmt == "RA":
            assert (decoded.rd, decoded.ra) == (rd, ra)
        elif fmt == "RB":
            assert decoded.rb == rb


class TestAssembler:
    def test_simple_program(self):
        image = assemble("""
        start:
            l.movhi r1, 0x1234
            l.ori r1, r1, 0x5678
            l.nop 1
        """)
        # Words are big-endian at consecutive addresses.
        word0 = (image[0] << 24) | (image[1] << 16) | (image[2] << 8) | \
            image[3]
        assert decode(word0).mnemonic == "l.movhi"

    def test_label_branch_offsets(self):
        image = assemble("""
            l.j skip
            l.nop
        skip:
            l.nop 1
        """)
        word = (image[0] << 24) | (image[1] << 16) | (image[2] << 8) | \
            image[3]
        assert decode(word).imm == 2  # two words forward

    def test_backward_branch(self):
        image = assemble("""
        loop:
            l.nop
            l.j loop
        """)
        word = (image[4] << 24) | (image[5] << 16) | (image[6] << 8) | \
            image[7]
        assert decode(word).imm == -1

    def test_hi_lo_split(self):
        image = assemble("""
        .org 0x0
            l.movhi r1, hi(data)
            l.ori r1, r1, lo(data)
        .org 0x12340
        data:
            .word 7
        """)
        movhi = (image[0] << 24) | (image[1] << 16) | (image[2] << 8) | \
            image[3]
        assert decode(movhi).imm == 0x1
        ori = (image[4] << 24) | (image[5] << 16) | (image[6] << 8) | \
            image[7]
        assert decode(ori).imm == 0x2340

    def test_word_and_byte_directives(self):
        image = assemble("""
        .org 0x100
        .word 0xdeadbeef
        .byte 1, 2, 3
        .space 2
        """)
        assert image[0x100] == 0xDE and image[0x103] == 0xEF
        assert image[0x104] == 1 and image[0x105] == 2
        assert image[0x106] == 3
        assert image[0x107] == 0 and image[0x108] == 0

    def test_comments_ignored(self):
        image = assemble("l.nop  # comment\nl.nop ; another\n")
        assert len(image) == 8

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("x:\nl.nop\nx:\nl.nop\n")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblerError):
            assemble("l.j nowhere\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("l.frobnicate r1, r2\n")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("l.add r1, r2, r99\n")

    def test_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("l.add r1, r2\n")

    def test_memory_operand_syntax(self):
        with pytest.raises(AssemblerError):
            assemble("l.lwz r1, r2\n")

    def test_misaligned_word(self):
        with pytest.raises(AssemblerError):
            assemble(".org 0x1\n.word 5\n")

    def test_byte_range(self):
        with pytest.raises(AssemblerError):
            assemble(".byte 300\n")

    def test_multiple_labels_one_line(self):
        image = assemble("a: b: l.nop 1\n")
        assert len(image) == 4
