"""Tests for the order-independent parallel acquisition engine.

The contract under test: a campaign's trace matrix is a pure function
of (netlist, key, chain entropy, mismatch seed, plaintexts) — the same
bytes come out whether acquisition is serial, threaded, forked,
chunk-shuffled, or killed and resumed from a checkpoint.
"""

import numpy as np
import pytest

from repro.cells import (
    build_cmos_library,
    build_mcml_library,
    build_pg_mcml_library,
)
from repro.errors import AttackError, CheckpointError, TraceError
from repro.experiments.runner import CheckpointedRun
from repro.power import MeasurementChain, TraceGrid
from repro.sca import (
    AcquisitionPool,
    AttackCampaign,
    TraceAcquirer,
    acquire_traces,
    cpa_attack,
    resolve_backend,
    validate_plaintexts,
)
from repro.sca.acquisition import _fork_available
from repro.sca.attack import build_reduced_aes
from repro.units import ns, ps, uA

KEY = 0x2B
PTS = list(range(40))

_BUILDERS = {
    "cmos": build_cmos_library,
    "mcml": build_mcml_library,
    "pgmcml": build_pg_mcml_library,
}


@pytest.fixture(scope="module", params=sorted(_BUILDERS))
def style_setup(request):
    """(style, library, netlist, serial reference matrix) per style."""
    library = _BUILDERS[request.param]()
    netlist, _ = build_reduced_aes(library)
    serial = acquire_traces(netlist, KEY, PTS, workers=1)
    return request.param, library, netlist, serial


class _KillAfter(CheckpointedRun):
    """Checkpoint runner that dies after N successful chunk saves."""

    def __init__(self, *args, die_after=2, **kwargs):
        super().__init__(*args, **kwargs)
        self.die_after = die_after
        self._saves = 0

    def _save(self, blocks, n_done, fingerprint, state):
        super()._save(blocks, n_done, fingerprint, state)
        self._saves += 1
        if self._saves >= self.die_after:
            raise KeyboardInterrupt


class TestByteIdenticalAcrossExecution:
    """ISSUE acceptance: workers=1, workers=4, shuffled chunk order and
    kill-and-resume all produce byte-identical matrices, per style."""

    def test_thread_pool_matches_serial(self, style_setup):
        _, _, netlist, serial = style_setup
        threaded = acquire_traces(netlist, KEY, PTS, workers=4,
                                  backend="thread", chunk_size=8)
        assert np.array_equal(threaded, serial)

    @pytest.mark.skipif(not _fork_available(),
                        reason="fork start method unavailable")
    def test_process_pool_matches_serial(self, style_setup):
        _, _, netlist, serial = style_setup
        forked = acquire_traces(netlist, KEY, PTS, workers=4,
                                backend="process", chunk_size=8)
        assert np.array_equal(forked, serial)

    def test_shuffled_chunk_order_matches_serial(self, style_setup):
        _, _, netlist, serial = style_setup
        acquirer = TraceAcquirer(netlist, KEY)
        starts = list(range(0, len(PTS), 8))
        np.random.default_rng(3).shuffle(starts)
        rows = np.empty_like(serial)
        for begin in starts:
            chunk = PTS[begin:begin + 8]
            rows[begin:begin + len(chunk)] = acquirer.acquire(
                chunk, trace_offset=begin)
        assert np.array_equal(rows, serial)

    def test_chunk_size_does_not_matter(self, style_setup):
        _, _, netlist, serial = style_setup
        odd = acquire_traces(netlist, KEY, PTS, workers=2,
                             backend="thread", chunk_size=7)
        assert np.array_equal(odd, serial)

    def test_kill_and_resume_with_workers_matches_serial(self, style_setup,
                                                         tmp_path):
        _, library, _, serial = style_setup
        path = tmp_path / "campaign.npz"
        campaign = AttackCampaign(library, KEY)
        with pytest.raises(KeyboardInterrupt):
            campaign.run_checkpointed(
                _KillAfter(path, chunk_size=8, die_after=2), PTS,
                workers=2, backend="thread")

        runner = CheckpointedRun(path, chunk_size=8)
        resumed = AttackCampaign(library, KEY).run_checkpointed(
            runner, PTS, workers=4, backend="thread")
        assert runner.stats.chunks_resumed == 2
        assert np.array_equal(resumed.traces, serial)
        reference = cpa_attack(serial, PTS, true_key=KEY)
        assert resumed.cpa.rank_of_true_key() == \
            reference.rank_of_true_key()

    def test_campaign_api_rank_invariant_under_workers(self, style_setup):
        _, library, _, serial = style_setup
        result = AttackCampaign(library, KEY).run(PTS, workers=4,
                                                  backend="thread")
        assert np.array_equal(result.traces, serial)
        reference = cpa_attack(serial, PTS, true_key=KEY)
        assert result.cpa.rank_of_true_key() == \
            reference.rank_of_true_key()


class TestCounterBasedNoise:
    def test_indexed_measure_matches_sequential(self):
        chain_a = MeasurementChain(seed=9)
        chain_b = MeasurementChain(seed=9)
        x = np.linspace(0, uA(10), 50)
        sequential = [chain_a.measure(x) for _ in range(4)]
        indexed = [chain_b.measure(x, trace_index=i) for i in range(4)]
        for s, i in zip(sequential, indexed):
            assert np.array_equal(s, i)

    def test_indexed_measure_is_order_independent(self):
        chain = MeasurementChain(seed=9)
        x = np.linspace(0, uA(10), 50)
        forward = [chain.measure(x, trace_index=i) for i in range(4)]
        backward = [chain.measure(x, trace_index=i)
                    for i in reversed(range(4))]
        for i, row in enumerate(reversed(backward)):
            assert np.array_equal(row, forward[i])

    def test_indexed_measure_does_not_advance_counter(self):
        chain_a = MeasurementChain(seed=9)
        chain_b = MeasurementChain(seed=9)
        x = np.zeros(20)
        chain_a.measure(x, trace_index=17)  # a worker elsewhere
        assert np.array_equal(chain_a.measure(x), chain_b.measure(x))

    def test_negative_index_rejected(self):
        with pytest.raises(TraceError):
            MeasurementChain().measure(np.zeros(4), trace_index=-1)

    def test_fingerprint_names_scheme_and_entropy(self):
        fp = MeasurementChain(seed=42).fingerprint()
        assert fp["scheme"] == MeasurementChain.SCHEME
        assert fp["entropy"] == "42"

    def test_distinct_traces_get_distinct_noise(self):
        chain = MeasurementChain(noise_sigma=uA(0.5), resolution=0.0)
        x = np.zeros(100)
        assert not np.array_equal(chain.measure(x, trace_index=0),
                                  chain.measure(x, trace_index=1))


class TestValidation:
    def test_bad_plaintexts_listed(self):
        with pytest.raises(AttackError) as err:
            validate_plaintexts([0, -1, 256, "x"])
        message = str(err.value)
        assert "-1" in message and "256" in message and "'x'" in message

    def test_overflow_of_bad_values_is_summarised(self):
        with pytest.raises(AttackError, match=r"\+2 more"):
            validate_plaintexts(list(range(256, 266)))

    def test_valid_batch_coerced_to_ints(self):
        assert validate_plaintexts([0, np.int64(7), 255]) == [0, 7, 255]

    def test_whole_batch_checked_before_any_simulation(self):
        library = build_cmos_library()
        netlist, _ = build_reduced_aes(library)
        acquirer = TraceAcquirer(netlist, KEY)
        simulated = []
        acquirer.ideal_samples = lambda p: simulated.append(p)
        with pytest.raises(AttackError):
            acquirer.acquire([0, 1, 2, 999])
        assert simulated == []

    def test_t_apply_must_precede_window_end(self):
        library = build_cmos_library()
        netlist, _ = build_reduced_aes(library)
        grid = TraceGrid(0.0, ns(2.0), ps(25.0))
        with pytest.raises(AttackError, match="t_apply"):
            TraceAcquirer(netlist, KEY, grid=grid, t_apply=ns(2.0))

    def test_key_byte_checked(self):
        library = build_cmos_library()
        netlist, _ = build_reduced_aes(library)
        with pytest.raises(AttackError):
            TraceAcquirer(netlist, 0x100)


class TestBackendResolution:
    def test_workers_one_is_always_serial(self):
        for backend in ("auto", "serial", "thread", "process"):
            assert resolve_backend(backend, 1) == "serial"

    def test_serial_backend_wins_over_workers(self):
        assert resolve_backend("serial", 8) == "serial"

    def test_auto_picks_a_parallel_backend(self):
        assert resolve_backend("auto", 4) in ("process", "thread")

    def test_unknown_backend_rejected(self):
        with pytest.raises(AttackError, match="unknown"):
            resolve_backend("mpi", 4)

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(AttackError):
            resolve_backend("auto", 0)

    def test_pool_rejects_bad_chunk_size(self):
        with pytest.raises(AttackError):
            AcquisitionPool(lambda: None, workers=2, chunk_size=0)


class TestCheckpointScheme:
    def test_different_entropy_refuses_to_resume(self, tmp_path):
        library = build_cmos_library()
        pts = list(range(16))
        path = tmp_path / "fp.npz"
        first = AttackCampaign(library, KEY, chain=MeasurementChain(seed=1))
        with pytest.raises(KeyboardInterrupt):
            first.run_checkpointed(
                _KillAfter(path, chunk_size=8, die_after=1), pts)
        second = AttackCampaign(library, KEY,
                                chain=MeasurementChain(seed=2))
        with pytest.raises(CheckpointError, match="different"):
            second.run_checkpointed(CheckpointedRun(path, chunk_size=8),
                                    pts)

    def test_empty_plaintext_list_yields_empty_matrix(self):
        library = build_cmos_library()
        netlist, _ = build_reduced_aes(library)
        out = acquire_traces(netlist, KEY, [])
        assert out.shape[0] == 0 and out.shape[1] > 0


class TestConvergenceFailureContext:
    """A failed solve inside a campaign must be locatable from the JSONL
    telemetry alone: trace index, chunk, plaintext, key (PR 6)."""

    def _failing_pool(self, telemetry=None, fail_at=11):
        from repro.errors import ConvergenceError
        from repro.sca.acquisition import TraceAcquirer

        library = build_cmos_library()
        netlist, _ = build_reduced_aes(library)

        class _Flaky(TraceAcquirer):
            def ideal_samples(self, plaintext):
                if plaintext == fail_at:
                    raise ConvergenceError("newton diverged")
                return super().ideal_samples(plaintext)

        return AcquisitionPool(lambda: _Flaky(netlist, KEY), workers=1,
                               chunk_size=4, telemetry=telemetry)

    def test_error_context_names_the_trace(self):
        from repro.errors import ConvergenceError

        with self._failing_pool() as pool:
            with pytest.raises(ConvergenceError) as err:
                pool.acquire(list(range(16)), trace_offset=100)
        ctx = err.value.context
        assert ctx["trace_index"] == 111  # offset 100 + position 11
        assert ctx["plaintext"] == 11
        assert ctx["key"] == KEY
        assert ctx["chunk"] == 2  # chunk_size=4 -> plaintext 11 in chunk 2
        assert err.value.to_dict()["context"]["trace_index"] == 111

    def test_trace_failed_event_carries_the_post_mortem(self):
        from repro.errors import ConvergenceError
        from repro.obs import MemorySink, Telemetry

        sink = MemorySink()
        tele = Telemetry(sinks=[sink])
        with self._failing_pool(telemetry=tele) as pool:
            with pytest.raises(ConvergenceError):
                pool.acquire(list(range(16)))
        failed = [r for r in sink.records
                  if r.get("name") == "sca.acquisition.trace_failed"]
        assert len(failed) == 1
        error = failed[0]["attrs"]["error"]
        assert error["error_code"] == "E_CONVERGENCE"
        assert error["context"]["trace_index"] == 11
        assert error["context"]["plaintext"] == 11
        assert error["context"]["chunk"] == 2


class TestBlockedMeasurement:
    """measure_block is the serial measure applied row by row (PR 7)."""

    def test_block_matches_indexed_rows_bitwise(self):
        chain_a = MeasurementChain(seed=9)
        chain_b = MeasurementChain(seed=9)
        rng = np.random.default_rng(5)
        samples = rng.uniform(0.0, uA(30), size=(7, 40))
        block = chain_a.measure_block(samples, first_index=13)
        for i in range(samples.shape[0]):
            assert np.array_equal(block[i],
                                  chain_b.measure(samples[i],
                                                  trace_index=13 + i))

    def test_block_does_not_advance_counter(self):
        chain_a = MeasurementChain(seed=9)
        chain_b = MeasurementChain(seed=9)
        x = np.zeros(20)
        chain_a.measure_block(np.zeros((3, 20)), first_index=40)
        assert np.array_equal(chain_a.measure(x), chain_b.measure(x))

    def test_block_validation(self):
        chain = MeasurementChain()
        with pytest.raises(TraceError):
            chain.measure_block(np.zeros(8))
        with pytest.raises(TraceError):
            chain.measure_block(np.zeros((2, 8)), first_index=-1)
        empty = chain.measure_block(np.zeros((0, 8)))
        assert empty.shape == (0, 8)


class TestBatchedAcquisition:
    """The acquirer's batch knob must never change a byte (PR 7)."""

    @pytest.mark.parametrize("batch", [1, 3, 16, 64])
    def test_batch_sizes_byte_identical(self, style_setup, batch):
        # 40 traces: batch=3 and 16 leave ragged final blocks, 64
        # exceeds the trace count entirely.
        _, _, netlist, serial = style_setup
        out = acquire_traces(netlist, KEY, PTS, batch=batch)
        assert out.tobytes() == serial.tobytes()

    def test_env_var_sets_default_batch(self, monkeypatch):
        from repro.spice.batch import BATCH_ENV
        library = build_cmos_library()
        netlist, _ = build_reduced_aes(library)
        monkeypatch.setenv(BATCH_ENV, "6")
        acquirer = TraceAcquirer(netlist, KEY)
        assert acquirer.batch == 6
        monkeypatch.delenv(BATCH_ENV)
        assert TraceAcquirer(netlist, KEY).batch == 1

    def test_pool_batch_overrides_factory(self):
        library = build_cmos_library()
        netlist, _ = build_reduced_aes(library)
        pool = AcquisitionPool(lambda: TraceAcquirer(netlist, KEY),
                               workers=1, batch=5)
        pool._ensure_started()
        assert pool._serial.batch == 5
        with pytest.raises(AttackError):
            AcquisitionPool(lambda: TraceAcquirer(netlist, KEY), batch=0)

    def test_invalid_batch_rejected(self):
        library = build_cmos_library()
        netlist, _ = build_reduced_aes(library)
        with pytest.raises(AttackError):
            TraceAcquirer(netlist, KEY, batch=0)

    def test_campaign_batch_knob_byte_identical(self):
        library = build_cmos_library()
        pts = list(range(24))
        base = AttackCampaign(library, KEY).run(pts)
        batched = AttackCampaign(library, KEY).run(pts, batch=8)
        assert np.array_equal(base.traces, batched.traces)
        assert base.rank == batched.rank

    def test_kill_and_resume_under_batch_matches_serial(self, tmp_path):
        library = build_cmos_library()
        serial = AttackCampaign(library, KEY).run(PTS).traces
        path = tmp_path / "campaign.npz"
        campaign = AttackCampaign(library, KEY)
        with pytest.raises(KeyboardInterrupt):
            campaign.run_checkpointed(
                _KillAfter(path, chunk_size=8, die_after=2), PTS, batch=4)
        runner = CheckpointedRun(path, chunk_size=8)
        resumed = AttackCampaign(library, KEY).run_checkpointed(
            runner, PTS, batch=4)
        assert runner.stats.chunks_resumed == 2
        assert np.array_equal(resumed.traces, serial)


class _TransientlyFlaky(TraceAcquirer):
    """Fails each listed plaintext once, then recovers — the shape of a
    marginal Newton solve that converges on the serial retry."""

    def __init__(self, *args, fail_once=(), **kwargs):
        super().__init__(*args, **kwargs)
        self._remaining = set(fail_once)

    def ideal_samples(self, plaintext):
        if plaintext in self._remaining:
            self._remaining.discard(plaintext)
            from repro.errors import ConvergenceError
            raise ConvergenceError("transient newton blowup")
        return super().ideal_samples(plaintext)


class TestTraceIsolation:
    """A ConvergenceError on one trace no longer fails its whole chunk:
    the trace is retried serially, the chunk's other traces survive,
    and the isolation is a `trace_failed` event with the index (PR 7)."""

    def _run(self, batch, fail_once=(5,)):
        from repro.obs import MemorySink, Telemetry
        library = build_cmos_library()
        netlist, _ = build_reduced_aes(library)
        serial = acquire_traces(netlist, KEY, PTS)
        sink = MemorySink()
        tele = Telemetry(sinks=[sink])
        with AcquisitionPool(
                lambda: _TransientlyFlaky(netlist, KEY,
                                          fail_once=fail_once),
                workers=1, chunk_size=8, telemetry=tele,
                batch=batch) as pool:
            out = pool.acquire(PTS)
        events = [r for r in sink.records
                  if r.get("name") == "sca.acquisition.trace_failed"]
        return serial, out, events

    @pytest.mark.parametrize("batch", [1, 4])
    def test_recovered_trace_is_byte_identical(self, batch):
        serial, out, events = self._run(batch)
        assert out.tobytes() == serial.tobytes()
        assert len(events) == 1
        attrs = events[0]["attrs"]
        assert attrs["trace_index"] == 5
        assert attrs["recovered"] is True
        assert attrs["error"]["error_code"] == "E_CONVERGENCE"

    def test_multiple_isolations_across_chunks(self):
        serial, out, events = self._run(batch=4, fail_once=(2, 11, 30))
        assert out.tobytes() == serial.tobytes()
        assert sorted(e["attrs"]["trace_index"] for e in events) == \
            [2, 11, 30]

    def test_persistent_failure_still_raises_with_context(self):
        from repro.errors import ConvergenceError

        library = build_cmos_library()
        netlist, _ = build_reduced_aes(library)

        class _Dead(TraceAcquirer):
            def ideal_samples(self, plaintext):
                if plaintext == 7:
                    raise ConvergenceError("never converges")
                return super().ideal_samples(plaintext)

        with AcquisitionPool(lambda: _Dead(netlist, KEY, batch=4),
                             workers=1, chunk_size=8) as pool:
            with pytest.raises(ConvergenceError) as err:
                pool.acquire(PTS)
        assert err.value.context["trace_index"] == 7
        assert err.value.context["plaintext"] == 7
