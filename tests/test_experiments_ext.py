"""Tests for the extension experiments: TVLA, related work, ablations."""

import pytest

from repro.cells import PowerGateTopology
from repro.experiments import ablation, related, tvla


class TestTvlaExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return tvla.run(n_traces=64)

    def test_all_styles_present(self, result):
        assert {r.style for r in result.rows} == {"cmos", "mcml", "pgmcml"}

    def test_cmos_detected(self, result):
        assert result.row("cmos").leaks

    def test_amplitude_hierarchy(self, result):
        assert result.cmos_margin_over_mcml() > 10.0

    def test_detection_threshold_cmos_small(self):
        from repro.cells import build_cmos_library
        n = tvla.detection_threshold(build_cmos_library,
                                     counts=(16, 32, 64))
        assert n is not None and n <= 64


class TestRelatedWork:
    @pytest.fixture(scope="class")
    def result(self):
        return related.run()

    def test_six_styles(self, result):
        assert len(result.rows) == 6

    def test_cmos_not_resistant(self, result):
        assert not result.row("cmos").dpa_resistant

    def test_pg_idle_is_lowest_among_resistant(self, result):
        pg_idle = result.row("pgmcml").idle_power_w
        for row in result.rows:
            if row.dpa_resistant and row.style != "pgmcml":
                assert pg_idle < row.idle_power_w

    def test_precharge_styles_burn_clock_power(self, result):
        assert result.row("sabl").power_at_duty_w > 1e-3
        assert result.row("mdpl").power_at_duty_w > 1e-3

    def test_dycml_power_competitive_but_flow_hostile(self, result):
        dycml = result.row("dycml")
        assert dycml.power_at_duty_w < result.row("mcml").power_at_duty_w
        assert not dycml.commodity_eda

    def test_pg_wins_both_axes(self, result):
        assert set(result.pg_wins_on()) == {"idle power",
                                            "flow practicality"}

    def test_unknown_style(self, result):
        with pytest.raises(KeyError):
            result.row("ttl")


class TestTopologyAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation.run_topologies()

    def test_all_four_topologies(self, result):
        assert len(result.points) == 4

    def test_series_sleep_hits_current_target(self, result):
        d = result.point(PowerGateTopology.SERIES_SLEEP)
        assert d.active_current == pytest.approx(50e-6, rel=0.1)

    def test_series_sleep_wakes_fast(self, result):
        d = result.point(PowerGateTopology.SERIES_SLEEP)
        assert d.wake_time is not None and d.wake_time < 0.5e-9

    def test_bias_topologies_wake_slowly(self, result):
        a = result.point(PowerGateTopology.BIAS_PULLDOWN)
        d = result.point(PowerGateTopology.SERIES_SLEEP)
        assert a.wake_time is None or a.wake_time > 2 * d.wake_time

    def test_body_bias_misses_target(self, result):
        c = result.point(PowerGateTopology.BODY_BIAS)
        assert abs(c.active_current - 50e-6) > 0.3 * 50e-6

    def test_all_sleep_currents_tiny(self, result):
        for p in result.points:
            assert p.sleep_current < 5e-9

    def test_chosen_is_best(self, result):
        assert result.chosen_is_best()


class TestGranularity:
    @pytest.fixture(scope="class")
    def study(self):
        return ablation.run_granularity()

    def test_two_options(self, study):
        assert len(study.points) == 2

    def test_fine_area_matches_table1(self, study):
        fine = study.point("fine (per cell)")
        assert fine.area_overhead_pct == pytest.approx(5.56, abs=0.1)

    def test_coarse_switch_is_enormous(self, study):
        """MCML draws its current constantly, so the coarse switch must
        be IR-sized for the full 110 mA — prohibitive, which is why
        fine grain 'suits better the needs of MCML cells' (§4)."""
        coarse = study.point("coarse (per block)")
        assert coarse.area_overhead_pct > 30.0

    def test_fine_wakes_much_faster(self, study):
        fine = study.point("fine (per cell)")
        coarse = study.point("coarse (per block)")
        assert fine.wake_time < coarse.wake_time / 10.0

    def test_selectivity(self, study):
        assert not study.point("fine (per cell)").wakes_whole_block
        assert study.point("coarse (per block)").wakes_whole_block

    def test_scales_with_block(self):
        small = ablation.run_granularity(n_cells=100)
        large = ablation.run_granularity(n_cells=3000)
        assert large.point("coarse (per block)").wake_time > \
            small.point("coarse (per block)").wake_time
        assert small.point("fine (per cell)").wake_time == \
            large.point("fine (per cell)").wake_time


class TestVtAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation.run_vt_flavors()

    def test_three_variants(self, result):
        assert len(result.points) == 3

    def test_lvt_leaks_more(self, result):
        mix = result.point("paper mix (hvt core, lvt loads)")
        lvt = result.point("all low-Vt")
        assert lvt.sleep_current > 10 * mix.sleep_current

    def test_hvt_loads_slow(self, result):
        mix = result.point("paper mix (hvt core, lvt loads)")
        hvt = result.point("all high-Vt")
        assert hvt.delay > 1.5 * mix.delay


class TestNoStrayPrints:
    """Driver output flows through the telemetry progress sink: with a
    muted handle the mains must write nothing to stdout (a bare print()
    anywhere in the driver path fails this)."""

    @pytest.mark.parametrize("target", ["table1", "table2", "table3",
                                        "related"])
    def test_driver_main_is_silent_when_muted(self, target, capsys):
        from repro import experiments
        from repro.obs import muted_telemetry

        tele = muted_telemetry()
        getattr(experiments, target).main(telemetry=tele)
        captured = capsys.readouterr()
        assert captured.out == "", f"{target} printed: {captured.out[:200]}"
        assert captured.err == ""
        # The output is not lost — it lives in the trace as progress
        # records.
        assert any(r["kind"] == "progress"
                   for r in tele.sinks[0].records), target

    def test_muted_run_matches_default_output(self, capsys):
        """Progress records carry exactly what print would have shown."""
        from repro import experiments
        from repro.obs import muted_telemetry

        tele = muted_telemetry()
        experiments.table1.main(telemetry=tele)
        capsys.readouterr()
        lines = [r["text"] for r in tele.sinks[0].records
                 if r["kind"] == "progress"]
        assert any("Table 1" in line or "area" in line.lower()
                   for line in lines)
