"""Differential oracle: internal EKV engine vs a real ngspice.

Skipped cleanly when no ngspice binary is installed (the tier-1 suite
never needs one); the opt-in ``backend-oracle`` CI job installs ngspice
and runs exactly this file.  Set ``REPRO_ORACLE_REPORT=/path.json`` to
get a machine-readable comparison report (the CI job uploads it as an
artifact).

Tolerances — documented, not incidental:

* **Linear circuits (R, C, sources)** export exactly — same element
  values, same topology — so the two engines solve the *same* circuit
  and must agree tightly: relative error < 1e-3 on DC, < 1 % of the
  rail on transient waveforms (residual: grid/integration differences).
* **MOS circuits** export as a LEVEL=1 approximation of the internal
  EKV model (square-law, no subthreshold, no smooth moderate
  inversion).  Agreement there is a *model-mapping* check, not a
  solver check: biases and swings must land in the same operating
  region (loose windows below), and delays must agree within a small
  factor.  Tightening these bounds means improving the LEVEL=1
  parameter mapping in ``repro.spice.deck``, not fixing a solver.
* **Sleep leakage** cannot be compared at all: LEVEL=1 turns a gated
  tail fully off (exactly 0 A) where EKV leaks nanoamps.  The test
  only asserts both engines call the sleeping cell "off" (< 1 uA).
"""

import json
import os
import shutil

import numpy as np
import pytest

from repro.cells import (
    CmosCellGenerator,
    McmlCellGenerator,
    PgMcmlCellGenerator,
    function,
    solve_bias,
)
from repro.cells.characterize import characterize_mcml_cell, measure_leakage
from repro.spice import Circuit, DC, GROUND, Pulse
from repro.spice.backend import InternalBackend, NgspiceBackend, dispatch
from repro.spice.backend.ngspice import NGSPICE_ENV
from repro.tech import TECH90
from repro.units import uA

REPORT_ENV = "REPRO_ORACLE_REPORT"

_BINARY = os.environ.get(NGSPICE_ENV) or "ngspice"
pytestmark = pytest.mark.skipif(
    shutil.which(_BINARY) is None,
    reason=f"ngspice binary {_BINARY!r} not installed "
           f"(opt-in oracle suite; see EXPERIMENTS.md)")


@pytest.fixture(scope="module")
def report():
    """Comparison records, dumped to $REPRO_ORACLE_REPORT when set."""
    records = []
    yield records
    path = os.environ.get(REPORT_ENV)
    if path:
        with open(path, "w", encoding="utf-8") as stream:
            json.dump({"suite": "backend-oracle", "binary": _BINARY,
                       "comparisons": records}, stream, indent=2,
                      sort_keys=True)


@pytest.fixture(scope="module")
def engines():
    internal = InternalBackend()
    ngspice = NgspiceBackend()
    ngspice.probe()  # fail loudly here, not inside the first test
    return internal, ngspice


def _record(report, name, internal, external, bound, kind):
    """Append one comparison; returns the measured discrepancy."""
    scale = max(abs(internal), abs(external), 1e-30)
    rel = abs(internal - external) / scale
    report.append({"name": name, "internal": float(internal),
                   "external": float(external), "relative_error": rel,
                   "bound": bound, "kind": kind, "ok": rel <= bound})
    return rel


class TestLinearCircuits:
    """Exact card mapping: the engines must agree tightly."""

    def test_dc_divider(self, engines, report):
        internal, ngspice = engines
        ckt = Circuit("div")
        ckt.v("vs", "top", DC(1.2))
        ckt.resistor("r1", "top", "out", 2.2e3)
        ckt.resistor("r2", "out", GROUND, 1e3)
        a = internal.solve_dc(ckt)
        b = ngspice.solve_dc(ckt)
        assert _record(report, "divider v(out)", a["out"], b["out"],
                       1e-3, "linear-dc") <= 1e-3
        assert _record(report, "divider i(vs)", a.current("vs"),
                       b.current("vs"), 1e-3, "linear-dc") <= 1e-3

    def test_rc_lowpass_transient(self, engines, report):
        internal, ngspice = engines
        ckt = Circuit("rc")
        ckt.v("vin", "in", Pulse(0.0, 1.2, 1e-9, 1e-11, 1e-11, 4e-9, 8e-9))
        ckt.resistor("r1", "in", "out", 1e3)
        ckt.capacitor("c1", "out", GROUND, 1e-12)
        a = internal.run_transient(ckt, tstop=6e-9, dt=5e-12)
        b = ngspice.run_transient(ckt, tstop=6e-9, dt=5e-12)
        resampled = np.interp(a.time, b.time, b.voltages["out"])
        worst = float(np.max(np.abs(resampled - a.voltages["out"])))
        report.append({"name": "rc v(out) worst-case", "internal": 0.0,
                       "external": worst, "relative_error": worst / 1.2,
                       "bound": 0.01, "kind": "linear-tran",
                       "ok": worst <= 0.012})
        assert worst <= 0.012  # 1 % of the 1.2 V rail


class TestMosCircuits:
    """LEVEL=1 vs EKV: same operating region, loose windows."""

    def test_cmos_inverter_rails(self, engines, report):
        internal, ngspice = engines
        vdd = TECH90.vdd
        for vin, name in ((0.0, "low"), (vdd, "high")):
            cell = CmosCellGenerator().build("INV")
            ckt = cell.circuit
            ckt.v("vdd", cell.vdd_net, DC(vdd))
            ckt.v("vin", cell.input_nets["A"], DC(vin))
            out = cell.output_nets["Y"]
            a = internal.solve_dc(ckt)[out]
            b = ngspice.solve_dc(ckt)[out]
            _record(report, f"cmos inv out (in={name})", a, b,
                    0.1, "mos-dc")
            # Both engines must put the output hard at the right rail.
            target = vdd if vin == 0.0 else 0.0
            assert abs(a - target) < 0.1 * vdd
            assert abs(b - target) < 0.1 * vdd

    def test_mcml_buffer_characterization(self, report):
        bias = solve_bias(uA(50))
        gen = McmlCellGenerator(sizing=bias.sizing)
        fn = function("BUF")
        ref = characterize_mcml_cell(fn, gen)
        dispatch.set_default_backend(NgspiceBackend())
        try:
            ext = characterize_mcml_cell(fn, gen)
        finally:
            dispatch.reset_default_backend()
        # Delay: within a factor of 4 (square-law vs EKV mobility and
        # capacitance mapping dominate); swing/Iss within 50 %.
        ratio = ext.delay / ref.delay
        report.append({"name": "mcml buf delay ratio", "internal":
                       ref.delay, "external": ext.delay,
                       "relative_error": abs(ratio - 1.0), "bound": 3.0,
                       "kind": "mos-tran", "ok": 0.25 <= ratio <= 4.0})
        assert 0.25 <= ratio <= 4.0
        assert _record(report, "mcml buf swing", ref.swing, ext.swing,
                       0.5, "mos-tran") <= 0.5
        assert _record(report, "mcml buf iss", ref.iss, ext.iss,
                       0.5, "mos-tran") <= 0.5

    def test_pgmcml_sleep_mode_is_off_in_both(self, report):
        bias = solve_bias(uA(50))
        gen = PgMcmlCellGenerator(sizing=bias.sizing)
        fn = function("BUF")
        ref = measure_leakage(fn, gen, asleep=True)
        dispatch.set_default_backend(NgspiceBackend())
        try:
            ext = measure_leakage(fn, gen, asleep=True)
        finally:
            dispatch.reset_default_backend()
        report.append({"name": "pgmcml sleep leakage", "internal":
                       float(ref), "external": float(ext),
                       "relative_error": float("nan"), "bound": 1e-6,
                       "kind": "mos-leak",
                       "ok": abs(ref) < 1e-6 and abs(ext) < 1e-6})
        # LEVEL=1 has no subthreshold conduction, so only the *claim*
        # "the gated cell is off" is comparable — not the nanoamps.
        assert abs(ref) < 1e-6
        assert abs(ext) < 1e-6
