"""Tests for block power models, trace synthesis, gating, and the probe."""

import numpy as np
import pytest

from repro.cells import build_cmos_library, build_mcml_library, \
    build_pg_mcml_library
from repro.errors import TraceError
from repro.netlist import GateNetlist, LogicSimulator
from repro.power import (
    BlockPowerModel,
    GatingSchedule,
    MeasurementChain,
    TraceGrid,
    activity_current,
    gated_block_current,
    schedule_from_sbox_events,
    trace_matrix,
    ungated_block_current,
)
from repro.units import nA, ns, uA


@pytest.fixture(scope="module")
def cmos():
    return build_cmos_library()


@pytest.fixture(scope="module")
def mcml():
    return build_mcml_library()


@pytest.fixture(scope="module")
def pg():
    return build_pg_mcml_library()


def buffer_block(lib, n=4, cell="BUF"):
    nl = GateNetlist("blk", lib)
    nl.add_primary_input("a")
    prev = "a"
    for i in range(n):
        nl.add_instance(cell, {"A": prev, "Y": f"n{i}"}, name=f"u{i}")
        prev = f"n{i}"
    return nl


class TestTraceGrid:
    def test_sample_count(self):
        grid = TraceGrid(0.0, 1e-9, 0.1e-9)
        assert grid.n == 11
        assert grid.times()[-1] == pytest.approx(1e-9)

    def test_validation(self):
        with pytest.raises(TraceError):
            TraceGrid(0.0, 0.0, 1e-12)
        with pytest.raises(TraceError):
            TraceGrid(0.0, 1e-9, -1.0)


class TestStaticCurrents:
    def test_mcml_block_sums_tails(self, mcml):
        model = BlockPowerModel(buffer_block(mcml, 10))
        assert model.static_current() == pytest.approx(10 * uA(50), rel=1e-6)

    def test_mcml_cannot_sleep(self, mcml):
        model = BlockPowerModel(buffer_block(mcml, 2))
        with pytest.raises(TraceError):
            model.static_current(asleep=True)

    def test_pg_block_sleeps(self, pg):
        model = BlockPowerModel(buffer_block(pg, 10))
        awake = model.static_current(asleep=False)
        asleep = model.static_current(asleep=True)
        assert awake == pytest.approx(10 * uA(50), rel=1e-6)
        assert asleep == pytest.approx(10 * nA(0.1), rel=1e-6)

    def test_cmos_block_leaks_only(self, cmos):
        model = BlockPowerModel(buffer_block(cmos, 10, cell="INV"))
        leak = model.static_current()
        assert 0.0 < leak < uA(1)

    def test_average_power_duty_scaling(self, pg):
        model = BlockPowerModel(buffer_block(pg, 10))
        full = model.average_power(awake_fraction=1.0)
        tiny = model.average_power(awake_fraction=1e-4)
        assert full / tiny > 1e3

    def test_average_power_validates_fraction(self, pg):
        model = BlockPowerModel(buffer_block(pg, 2))
        with pytest.raises(TraceError):
            model.average_power(awake_fraction=1.5)

    def test_mismatch_residuals_reproducible(self, mcml):
        nl = buffer_block(mcml, 5)
        a = BlockPowerModel(nl, seed=11)
        b = BlockPowerModel(nl, seed=11)
        c = BlockPowerModel(nl, seed=12)
        assert a.residual_for("u0") == b.residual_for("u0")
        assert a.residual_for("u0") != c.residual_for("u0")

    def test_residual_magnitude(self, mcml):
        model = BlockPowerModel(buffer_block(mcml, 50), seed=0)
        residuals = [abs(model.residual_for(f"u{i}")) for i in range(50)]
        assert max(residuals) < uA(0.5)
        assert np.std(residuals) > 0.0


class TestActivityCurrent:
    def grid(self):
        return TraceGrid(0.0, ns(3), 25e-12)

    def run_block(self, lib, value=True):
        nl = buffer_block(lib, 4)
        sim = LogicSimulator(nl)
        sim.reset()
        trace = sim.run([(ns(0.5), "a", value)], duration=ns(3))
        return nl, trace

    def test_cmos_transitions_draw_charge(self, cmos):
        nl, trace = self.run_block(cmos)
        model = BlockPowerModel(nl)
        samples = activity_current(model, trace, self.grid())
        static = model.static_current()
        assert samples.max() > static * 5
        # Charge above static equals the toggled energy / vdd, roughly.
        assert samples.min() >= 0.0

    def test_cmos_no_activity_no_pulse(self, cmos):
        nl = buffer_block(cmos, 4)
        sim = LogicSimulator(nl)
        sim.reset()
        trace = sim.run([], duration=ns(3))
        model = BlockPowerModel(nl)
        samples = activity_current(model, trace, self.grid())
        assert samples.max() == pytest.approx(model.static_current())

    def test_mcml_current_nearly_flat(self, mcml):
        nl, trace = self.run_block(mcml)
        model = BlockPowerModel(nl)
        samples = activity_current(model, trace, self.grid())
        static = model.static_current()
        # Fluctuation well under 5 % of the static level.
        assert np.abs(samples - static).max() < 0.05 * static

    def test_mcml_hum_is_data_independent(self, mcml):
        """Toggling vs not toggling must produce nearly identical MCML
        traces — the DPA-resistance property."""
        nl = buffer_block(mcml, 4)
        model = BlockPowerModel(nl, seed=0)
        sim = LogicSimulator(nl)
        sim.reset()
        t_active = sim.run([(ns(0.5), "a", True)], duration=ns(3))
        sim.reset()
        t_idle = sim.run([], duration=ns(3))
        s_active = activity_current(model, t_active, self.grid())
        s_idle = activity_current(model, t_idle, self.grid())
        diff = np.abs(s_active - s_idle).max()
        assert diff < uA(1.0)  # residuals only, far below Iss

    def test_include_static_flag(self, mcml):
        nl, trace = self.run_block(mcml)
        model = BlockPowerModel(nl)
        with_static = activity_current(model, trace, self.grid())
        without = activity_current(model, trace, self.grid(),
                                   include_static=False)
        delta = with_static - without
        assert np.allclose(delta, model.static_current(), rtol=1e-9)

    def test_trace_matrix_stacks(self, cmos):
        nl, trace = self.run_block(cmos)
        model = BlockPowerModel(nl)
        matrix = trace_matrix(model, [trace, trace], self.grid())
        assert matrix.shape == (2, self.grid().n)
        with pytest.raises(TraceError):
            trace_matrix(model, [], self.grid())

    def test_arrival_times_monotone_along_chain(self, mcml):
        model = BlockPowerModel(buffer_block(mcml, 4))
        arrivals = model.arrival_times()
        assert arrivals["u0"] < arrivals["u1"] < arrivals["u3"]


class TestGating:
    def test_schedule_windows_merge(self):
        schedule = schedule_from_sbox_events(
            [10, 11, 13, 100], period=ns(2.5), insertion_delay=ns(1))
        assert len(schedule.windows) == 2

    def test_schedule_opens_early(self):
        schedule = schedule_from_sbox_events(
            [10], period=ns(2.5), insertion_delay=ns(1), guard_cycles=1)
        t_on, t_off = schedule.windows[0]
        assert t_on < 10 * ns(2.5)
        assert t_off == pytest.approx(11 * ns(2.5))

    def test_awake_fraction(self):
        schedule = GatingSchedule([(ns(1), ns(2))])
        assert schedule.awake_fraction(0.0, ns(10)) == pytest.approx(0.1)

    def test_awake_query(self):
        schedule = GatingSchedule([(ns(1), ns(2))])
        assert schedule.awake(ns(1.5))
        assert not schedule.awake(ns(3))

    def test_windows_must_be_disjoint(self):
        with pytest.raises(TraceError):
            GatingSchedule([(0.0, ns(2)), (ns(1), ns(3))])

    def test_empty_schedule(self):
        schedule = schedule_from_sbox_events([], ns(2.5), ns(1))
        assert schedule.windows == []

    def test_signal_waveform(self):
        schedule = GatingSchedule([(ns(1), ns(2))])
        times = np.linspace(0, ns(3), 31)
        sig = schedule.signal(times)
        assert sig.peak() == pytest.approx(1.2)
        assert sig.value_at(ns(0.5)) == 0.0

    def test_gated_current_rises_and_falls(self, pg):
        nl = buffer_block(pg, 10)
        model = BlockPowerModel(nl)
        schedule = GatingSchedule([(ns(5), ns(15))])
        times = np.linspace(0, ns(25), 500)
        wave = gated_block_current(model, schedule, times)
        on = model.static_current(asleep=False)
        off = model.static_current(asleep=True)
        assert wave.value_at(ns(2)) < 10 * off + 1e-9
        assert wave.value_at(ns(14)) == pytest.approx(on, rel=0.05)
        assert wave.value_at(ns(24)) < 0.05 * on

    def test_gated_requires_pg(self, mcml):
        model = BlockPowerModel(buffer_block(mcml, 2))
        with pytest.raises(TraceError):
            gated_block_current(model, GatingSchedule([(0, ns(1))]),
                                np.linspace(0, ns(2), 10))

    def test_ungated_is_flat(self, mcml):
        model = BlockPowerModel(buffer_block(mcml, 3))
        wave = ungated_block_current(model, np.linspace(0, ns(5), 50))
        assert wave.swing() == 0.0
        assert wave.peak() == pytest.approx(3 * uA(50))


class TestMeasurementChain:
    def test_quantisation(self):
        chain = MeasurementChain(noise_sigma=0.0, resolution=uA(1))
        out = chain.measure(np.array([1.4e-6, 1.6e-6]))
        assert out[0] == pytest.approx(1e-6)
        assert out[1] == pytest.approx(2e-6)

    def test_noise_is_reproducible(self):
        a = MeasurementChain(seed=5).measure(np.zeros(100))
        b = MeasurementChain(seed=5).measure(np.zeros(100))
        assert np.array_equal(a, b)

    def test_noise_magnitude(self):
        chain = MeasurementChain(noise_sigma=uA(0.5), resolution=0.0,
                                 seed=1)
        out = chain.measure(np.zeros(5000))
        assert np.std(out) == pytest.approx(uA(0.5), rel=0.1)

    def test_ideal_probe(self):
        chain = MeasurementChain().ideal()
        x = np.array([1.234e-7])
        assert chain.measure(x)[0] == pytest.approx(1.234e-7)

    def test_validation(self):
        with pytest.raises(TraceError):
            MeasurementChain(noise_sigma=-1.0)
