"""Tests for Monte-Carlo mismatch analysis of MCML cells."""

import pytest

from repro.cells import (
    McmlCellGenerator,
    function,
    mc_buffer_residual,
    mc_input_offset,
    solve_bias,
)
from repro.cells.library import RESIDUAL_SIGMA_PER_TAIL
from repro.errors import CharacterizationError
from repro.tech import MismatchModel
from repro.units import uA


@pytest.fixture(scope="module")
def sizing():
    return solve_bias(uA(50)).sizing


class TestMismatchGeneration:
    def test_devices_get_individual_parameters(self, sizing):
        gen = McmlCellGenerator(sizing=sizing,
                                mismatch=MismatchModel(seed=3))
        cell = gen.build(function("AND2"))
        vts = {d.model.params.vt0 for d in cell.circuit.devices
               if type(d).__name__ == "Mosfet"}
        assert len(vts) > 3  # pairs, loads, tail all deviate

    def test_no_mismatch_means_identical_devices(self, sizing):
        gen = McmlCellGenerator(sizing=sizing)
        cell = gen.build(function("AND2"))
        vts = {d.model.params.vt0 for d in cell.circuit.devices
               if type(d).__name__ == "Mosfet"
               and d.model.params.is_nmos}
        # Pairs and tail share the same high-Vt flavour: 1 distinct value.
        assert len(vts) == 1

    def test_reproducible_sampling(self, sizing):
        def build(seed):
            gen = McmlCellGenerator(sizing=sizing,
                                    mismatch=MismatchModel(seed=seed))
            cell = gen.build(function("BUF"))
            return sorted(d.model.params.vt0
                          for d in cell.circuit.devices
                          if type(d).__name__ == "Mosfet")
        assert build(7) == build(7)
        assert build(7) != build(8)


class TestResidualCurrent:
    def test_rms_order_matches_library_constant(self, sizing):
        result = mc_buffer_residual(n_samples=16, sizing=sizing)
        # The datasheet constant must be within ~3x of the MC-derived
        # value (it is literally where the constant came from).
        assert result.residual_sigma == pytest.approx(
            RESIDUAL_SIGMA_PER_TAIL, rel=2.0)
        assert result.residual_sigma < 1e-6  # far below the 50 uA tail

    def test_zero_mismatch_zero_residual(self, sizing):
        result = mc_buffer_residual(n_samples=3, sizing=sizing,
                                    avt=0.0, akp=0.0)
        assert result.residual_max < 1e-10

    def test_residual_grows_with_avt(self, sizing):
        small = mc_buffer_residual(n_samples=8, sizing=sizing, avt=1e-9)
        large = mc_buffer_residual(n_samples=8, sizing=sizing, avt=6e-9)
        assert large.residual_sigma > small.residual_sigma

    def test_mean_current_near_target(self, sizing):
        result = mc_buffer_residual(n_samples=8, sizing=sizing)
        mean = sum(result.mean_currents) / len(result.mean_currents)
        assert mean == pytest.approx(uA(50), rel=0.15)

    def test_iss_spread_recorded(self, sizing):
        result = mc_buffer_residual(n_samples=8, sizing=sizing)
        assert 0.0 < result.iss_sigma < uA(10)

    def test_sample_count_validated(self, sizing):
        with pytest.raises(CharacterizationError):
            mc_buffer_residual(n_samples=1, sizing=sizing)

    def test_repr(self, sizing):
        result = mc_buffer_residual(n_samples=4, sizing=sizing)
        assert "residual" in repr(result)


class TestInputOffset:
    def test_offsets_are_millivolt_scale(self, sizing):
        offsets = mc_input_offset(n_samples=6, sizing=sizing)
        assert all(abs(o) < 0.05 for o in offsets)
        assert any(abs(o) > 1e-4 for o in offsets)

    def test_zero_mismatch_zero_offset(self, sizing):
        offsets = mc_input_offset(n_samples=2, sizing=sizing, avt=0.0,
                                  akp=0.0)
        assert all(abs(o) < 2e-3 for o in offsets)
