"""Property-based tests of the analog engine's physical invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import Circuit, solve_dc
from repro.spice.dc import System
from repro.tech import NMOS_HVT, NMOS_LVT, PMOS_LVT
from repro.units import um


@st.composite
def ladder_values(draw):
    """Resistor ladder parameters: supply + 3-8 segment resistances."""
    vdd = draw(st.floats(0.5, 3.0))
    resistors = draw(st.lists(st.floats(100.0, 1e5), min_size=3,
                              max_size=8))
    return vdd, resistors


class TestKirchhoff:
    @given(ladder_values())
    @settings(max_examples=30, deadline=None)
    def test_ladder_current_conservation(self, params):
        """Series ladder: the same current flows through every segment
        and matches V/R_total exactly."""
        vdd, resistors = params
        ckt = Circuit()
        ckt.v("vdd", "vdd", vdd)
        prev = "vdd"
        for i, r in enumerate(resistors):
            nxt = "0" if i == len(resistors) - 1 else f"n{i}"
            ckt.resistor(f"r{i}", prev, nxt, r)
            prev = nxt
        op = solve_dc(ckt)
        expected = vdd / sum(resistors)
        assert op.current("vdd") == pytest.approx(expected, rel=1e-6)

    @given(ladder_values())
    @settings(max_examples=30, deadline=None)
    def test_ladder_voltages_monotone(self, params):
        vdd, resistors = params
        ckt = Circuit()
        ckt.v("vdd", "vdd", vdd)
        prev = "vdd"
        for i, r in enumerate(resistors):
            nxt = "0" if i == len(resistors) - 1 else f"n{i}"
            ckt.resistor(f"r{i}", prev, nxt, r)
            prev = nxt
        op = solve_dc(ckt)
        levels = [vdd] + [op[f"n{i}"] for i in range(len(resistors) - 1)] \
            + [0.0]
        assert all(a >= b - 1e-9 for a, b in zip(levels, levels[1:]))

    @given(st.floats(0.1, 1.2), st.floats(0.1, 1.2))
    @settings(max_examples=25, deadline=None)
    def test_kcl_residual_vanishes_at_solution(self, v1, v2):
        """Whatever the bias, the solved operating point's KCL residual
        is numerically zero at every internal node."""
        ckt = Circuit()
        ckt.v("va", "a", v1)
        ckt.v("vb", "b", v2)
        ckt.resistor("r1", "a", "mid", 2e3)
        ckt.resistor("r2", "b", "mid", 3e3)
        ckt.mosfet("m1", "mid", "a", "0", "0", NMOS_LVT, w=um(0.5),
                   l=um(0.1))
        op = solve_dc(ckt)
        system = System(ckt)
        x = np.array([op.voltages[n] for n in system.unknowns])
        residual = system.residual_only(x, ckt.fixed_nodes(0.0), 0.0)
        assert np.max(np.abs(residual)) < 1e-9

    @given(st.floats(0.0, 1.2))
    @settings(max_examples=20, deadline=None)
    def test_device_currents_conserve(self, vg):
        """Current into the drain equals current out of the source for
        the channel, at any gate bias (charge conservation)."""
        from repro.spice.devices import Mosfet
        from repro.spice.mosfet import MosfetModel
        model = MosfetModel(NMOS_HVT, um(1.0), um(0.1))
        device = Mosfet("m", "d", "g", "s", "b", model)
        currents = device.currents([1.2, vg, 0.0, 0.0])
        assert sum(currents) == pytest.approx(0.0, abs=1e-18)

    @given(st.floats(0.05, 1.15), st.floats(0.05, 1.15))
    @settings(max_examples=20, deadline=None)
    def test_inverter_output_within_rails(self, vin, vdd_scale):
        ckt = Circuit()
        vdd = 1.2 * vdd_scale if vdd_scale > 0.4 else 1.2
        ckt.v("vdd", "vdd", vdd)
        ckt.v("vin", "in", min(vin, vdd))
        ckt.mosfet("mn", "out", "in", "0", "0", NMOS_LVT, w=um(0.3),
                   l=um(0.1))
        ckt.mosfet("mp", "out", "in", "vdd", "vdd", PMOS_LVT, w=um(0.6),
                   l=um(0.1))
        op = solve_dc(ckt)
        assert -0.01 <= op["out"] <= vdd + 0.01


class TestMosfetMonotonicity:
    @given(st.floats(0.3, 1.2), st.floats(0.3, 1.2))
    @settings(max_examples=30, deadline=None)
    def test_ids_monotone_in_vgs(self, va, vb):
        from repro.spice.mosfet import MosfetModel
        m = MosfetModel(NMOS_HVT, um(1.0), um(0.1))
        lo, hi = sorted((va, vb))
        assert m.ids(lo, 1.2, 0.0) <= m.ids(hi, 1.2, 0.0) + 1e-15

    @given(st.floats(0.0, 1.2), st.floats(0.0, 1.2))
    @settings(max_examples=30, deadline=None)
    def test_ids_monotone_in_vds(self, va, vb):
        from repro.spice.mosfet import MosfetModel
        m = MosfetModel(NMOS_HVT, um(1.0), um(0.1))
        lo, hi = sorted((va, vb))
        assert m.ids(0.9, lo, 0.0) <= m.ids(0.9, hi, 0.0) + 1e-15

    @given(st.floats(0.0, 1.2))
    @settings(max_examples=20, deadline=None)
    def test_ids_finite_everywhere(self, v):
        import math
        from repro.spice.mosfet import MosfetModel
        m = MosfetModel(NMOS_HVT, um(1.0), um(0.1))
        for vg in (0.0, v, 1.2):
            for vd in (0.0, v, 1.2):
                for vs in (0.0, v):
                    assert math.isfinite(m.ids(vg, vd, vs))
