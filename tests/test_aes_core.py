"""Tests for the full round-based AES-128 hardware core."""

import pytest

from repro.aes import encrypt_block
from repro.aes.linear import (
    bits_to_state,
    mix_columns_bit_map,
    shift_rows_bit_map,
    state_to_bits,
)
from repro.cells import build_cmos_library, build_mcml_library, \
    build_pg_mcml_library
from repro.errors import SynthesisError
from repro.netlist import LogicSimulator
from repro.synth import build_aes_core, encrypt_with_core

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
PT = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
CT = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")


class TestLinearHelpers:
    def test_bit_roundtrip(self):
        block = bytes(range(16))
        assert bits_to_state(state_to_bits(block)) == block

    def test_shift_rows_map_is_permutation(self):
        m = shift_rows_bit_map()
        assert sorted(m) == list(range(128))

    def test_shift_rows_row0_untouched(self):
        m = shift_rows_bit_map()
        for col in range(4):
            byte = 4 * col  # row 0
            for b in range(8):
                assert m[8 * byte + b] == 8 * byte + b

    def test_mix_columns_rows_shape(self):
        rows = mix_columns_bit_map()
        assert len(rows) == 128
        assert all(3 <= len(r) <= 11 for r in rows)


@pytest.fixture(scope="module")
def cmos_core():
    core = build_aes_core(build_cmos_library())
    return core, LogicSimulator(core.netlist)


class TestCmosCore:
    def test_fips_vector(self, cmos_core):
        core, sim = cmos_core
        assert encrypt_with_core(core, sim, PT, KEY) == CT

    def test_back_to_back_blocks(self, cmos_core):
        core, sim = cmos_core
        for pt in (bytes(16), bytes(range(16))):
            assert encrypt_with_core(core, sim, pt, KEY) == \
                encrypt_block(pt, KEY)

    def test_key_change_between_blocks(self, cmos_core):
        core, sim = cmos_core
        other_key = bytes(range(16))
        assert encrypt_with_core(core, sim, PT, other_key) == \
            encrypt_block(PT, other_key)

    def test_structure(self, cmos_core):
        core, _ = cmos_core
        hist = core.netlist.cell_histogram()
        # 128 state + 128 key + 4 counter registers.
        assert hist["DFF"] == 260
        assert core.cells() > 10000

    def test_input_validation(self, cmos_core):
        core, sim = cmos_core
        with pytest.raises(SynthesisError):
            encrypt_with_core(core, sim, b"short", KEY)


class TestDifferentialCores:
    def test_mcml_core_correct(self):
        core = build_aes_core(build_mcml_library())
        sim = LogicSimulator(core.netlist)
        assert encrypt_with_core(core, sim, PT, KEY) == CT

    def test_pg_core_correct_and_gated(self):
        core = build_aes_core(build_pg_mcml_library())
        assert core.sleep_tree is not None
        assert core.sleep_tree.n_gated_cells > 10000
        sim = LogicSimulator(core.netlist)
        assert encrypt_with_core(core, sim, PT, KEY) == CT

    def test_mcml_needs_fewer_cells_than_cmos(self, cmos_core):
        cmos_cells = cmos_core[0].cells()
        mcml_cells = build_aes_core(build_mcml_library()).cells()
        assert mcml_cells < cmos_cells


class TestScopeStudy:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import scope
        return scope.run()

    def test_full_core_larger(self, result):
        assert result.area_ratio() > 3.0

    def test_both_micro_watt_class(self, result):
        for row in result.rows:
            assert row.avg_power_w < 200e-6

    def test_full_core_slower(self, result):
        assert result.row("full PG-MCML core").delay_ns > \
            result.row("PG-MCML S-box ISE").delay_ns

    def test_unknown_approach(self, result):
        with pytest.raises(KeyError):
            result.row("nope")
