"""Operator tooling for the campaign job ledger.

Inspect and repair a service directory without the HTTP API — the queue
is just files, so this talks to them directly (same locked transactions
as the workers, so it is safe against a live deployment).

Usage::

    PYTHONPATH=src python tools/ledgerctl.py list     --dir runs/svc
    PYTHONPATH=src python tools/ledgerctl.py chunks   --dir runs/svc JOB
    PYTHONPATH=src python tools/ledgerctl.py inspect  --dir runs/svc
    PYTHONPATH=src python tools/ledgerctl.py requeue  --dir runs/svc \
        JOB --chunk 3 [--force]

``inspect`` audits the raw ledger: record counts per kind, corrupt
lines, and every quarantined chunk with its last recorded error —
the triage view for a poisoned campaign.  ``requeue`` resets a chunk's
state and attempt budget (``--force`` recomputes even a done chunk;
safe, the bytes are deterministic).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.errors import ReproError  # noqa: E402
from repro.service.ledger import JobLedger  # noqa: E402
from repro.service.queue import JobQueue  # noqa: E402
from repro.service.store import ResultStore  # noqa: E402


def _open_queue(directory: str) -> JobQueue:
    ledger_path = os.path.join(directory, "ledger.jsonl")
    if not os.path.exists(ledger_path):
        raise ReproError(f"no ledger at {ledger_path}")
    return JobQueue(JobLedger(ledger_path),
                    ResultStore(os.path.join(directory, "store")))


def cmd_list(queue: JobQueue, args) -> int:
    print(json.dumps({"jobs": queue.jobs()}, sort_keys=True, indent=2))
    return 0


def cmd_chunks(queue: JobQueue, args) -> int:
    print(json.dumps(queue.status(args.job_id), sort_keys=True, indent=2))
    return 0


def cmd_requeue(queue: JobQueue, args) -> int:
    queue.requeue(args.job_id, args.chunk, force=args.force)
    state = queue.status(args.job_id)["chunks"][str(args.chunk)]
    print(f"requeued chunk {args.chunk} of {args.job_id}: "
          f"{json.dumps(state, sort_keys=True)}")
    return 0


def cmd_inspect(queue: JobQueue, args) -> int:
    records, corrupt = queue.ledger.records()
    kinds = {}
    for record in records:
        kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
    quarantined = []
    for job in queue.jobs():
        if not job["counts"]["quarantined"]:
            continue
        detail = queue.status(job["job"])
        for index, chunk in sorted(detail["chunks"].items(),
                                   key=lambda kv: int(kv[0])):
            if chunk["state"] == "quarantined":
                quarantined.append({"job": job["job"],
                                    "chunk": int(index),
                                    "attempt": chunk["attempt"],
                                    "error": chunk["error"]})
    report = {"records": kinds, "corrupt_lines": corrupt,
              "quarantined": quarantined}
    print(json.dumps(report, sort_keys=True, indent=2))
    return 1 if (corrupt or quarantined) else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="ledgerctl",
        description="Inspect and repair a campaign job ledger.")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--dir", required=True, metavar="DIR",
                       help="service directory (holding ledger.jsonl)")

    p = sub.add_parser("list", help="summarise every job")
    common(p)
    p = sub.add_parser("chunks", help="per-chunk state of one job")
    common(p)
    p.add_argument("job_id")
    p = sub.add_parser("requeue", help="reset a chunk to pending")
    common(p)
    p.add_argument("job_id")
    p.add_argument("--chunk", type=int, required=True)
    p.add_argument("--force", action="store_true",
                   help="requeue even a done chunk (recompute)")
    p = sub.add_parser("inspect",
                       help="audit the raw ledger; exit 1 if corrupt "
                            "lines or quarantined chunks exist")
    common(p)

    args = parser.parse_args(argv)
    handlers = {"list": cmd_list, "chunks": cmd_chunks,
                "requeue": cmd_requeue, "inspect": cmd_inspect}
    try:
        queue = _open_queue(args.dir)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    try:
        return handlers[args.command](queue, args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    finally:
        queue.ledger.close()


if __name__ == "__main__":
    sys.exit(main())
