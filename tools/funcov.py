"""Function-level coverage with zero dependencies.

The container has no ``coverage``/``pytest-cov``, so CI measures
coverage with the standard library: a ``sys.settrace`` hook that records
only ``call`` events (cheap — line tracing is never enabled) while the
test suite runs in-process, then matches the called code objects against
every ``def`` found by parsing the source tree with ``ast``.

Usage::

    PYTHONPATH=src python tools/funcov.py --floor 70 -- -x -q tests/

Everything after ``--`` is passed to pytest verbatim.  Writes a
``COVERAGE.json`` report next to this repo's root listing per-module
function counts and the never-called functions, and exits non-zero when
the measured percentage falls below ``--floor`` (the CI regression
gate — raise the floor when coverage improves, never lower it).
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
import threading

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_SRC = os.path.join(REPO_ROOT, "src", "repro")
DEFAULT_REPORT = os.path.join(REPO_ROOT, "COVERAGE.json")


def defined_functions(src_root):
    """(relpath, name, lineno) of every def/async def under src_root."""
    defs = set()
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, src_root)
            with open(path, "r", encoding="utf-8") as fh:
                try:
                    tree = ast.parse(fh.read(), filename=path)
                except SyntaxError as err:  # pragma: no cover
                    raise SystemExit(f"funcov: cannot parse {path}: {err}")
            for node in ast.walk(tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    defs.add((rel, node.name, node.lineno))
    return defs


class CallRecorder:
    """settrace hook that records called code objects under one root."""

    def __init__(self, src_root):
        self.src_root = os.path.abspath(src_root) + os.sep
        self.called = set()

    def __call__(self, frame, event, arg):
        if event == "call":
            code = frame.f_code
            filename = code.co_filename
            if filename.startswith(self.src_root):
                self.called.add((os.path.relpath(filename, self.src_root),
                                 code.co_name, code.co_firstlineno))
        # Returning None disables line tracing inside the frame: we pay
        # one hook hit per call, not per line.
        return None

    def install(self):
        threading.settrace(self)
        sys.settrace(self)

    def uninstall(self):
        sys.settrace(None)
        threading.settrace(None)


def measure(src_root, pytest_args):
    import pytest

    recorder = CallRecorder(src_root)
    recorder.install()
    try:
        exit_code = pytest.main(list(pytest_args))
    finally:
        recorder.uninstall()
    return recorder.called, int(exit_code)


def build_report(defs, called):
    # Decorated defs report the decorator's line in some versions;
    # match on (file, name) with a +/-5 line tolerance.
    called_keys = {}
    for rel, name, lineno in called:
        called_keys.setdefault((rel, name), []).append(lineno)
    covered, missed = set(), []
    for rel, name, lineno in sorted(defs):
        hits = called_keys.get((rel, name), [])
        if any(abs(h - lineno) <= 5 for h in hits):
            covered.add((rel, name, lineno))
        else:
            missed.append(f"{rel}:{lineno} {name}")
    per_module = {}
    for rel, name, lineno in defs:
        entry = per_module.setdefault(rel, {"functions": 0, "covered": 0})
        entry["functions"] += 1
        if (rel, name, lineno) in covered:
            entry["covered"] += 1
    pct = 100.0 * len(covered) / len(defs) if defs else 100.0
    return {
        "granularity": "function",
        "functions_defined": len(defs),
        "functions_called": len(covered),
        "percent": round(pct, 2),
        "per_module": {k: per_module[k] for k in sorted(per_module)},
        "missed": missed,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="function coverage via sys.settrace (no dependencies)")
    parser.add_argument("--src", default=DEFAULT_SRC,
                        help="source root to measure (default src/repro)")
    parser.add_argument("--report", default=DEFAULT_REPORT,
                        help="where to write the JSON report")
    parser.add_argument("--floor", type=float, default=None,
                        help="fail if covered %% drops below this")
    parser.add_argument("pytest_args", nargs="*",
                        help="arguments forwarded to pytest (after --)")
    args = parser.parse_args(argv)

    defs = defined_functions(args.src)
    called, test_exit = measure(args.src, args.pytest_args or
                                ["-x", "-q", "tests/"])
    report = build_report(defs, called)
    with open(args.report, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(f"funcov: {report['functions_called']}/"
          f"{report['functions_defined']} functions called "
          f"({report['percent']}%) -> {args.report}")
    if test_exit != 0:
        print(f"funcov: test run failed (exit {test_exit})",
              file=sys.stderr)
        return test_exit
    if args.floor is not None and report["percent"] < args.floor:
        print(f"funcov: coverage {report['percent']}% fell below the "
              f"floor of {args.floor}%", file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
