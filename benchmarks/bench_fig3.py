"""Benchmark F3: regenerate Fig. 3 (delay / area-delay vs tail current).

Transistor-level sweep of the MCML buffer across the Iss design space:
(a) FO1/FO4 delay curves, (b) power-delay and area-delay products.
"""

import pytest
from conftest import run_once

from repro.experiments import fig3
from repro.units import uA


def test_fig3_design_space(benchmark):
    result = run_once(benchmark, fig3.main)

    # (a) delay falls monotonically with Iss and saturates up high.
    points = sorted(result.points, key=lambda p: p.iss)
    delays = [p.delay_fo4 for p in points]
    assert all(d1 >= d2 * 0.99 for d1, d2 in zip(delays, delays[1:]))
    assert result.delay_saturation_ratio() < 1.10  # <10 % left past 250 uA

    # FO4 slower than FO1 everywhere.
    assert all(p.delay_fo4 > p.delay_fo1 for p in points)

    # (b) the area-delay optimum sits at the paper's 50 uA bias point.
    assert result.optimum_iss() == pytest.approx(uA(50), rel=0.6)

    # Power-delay product grows monotonically: speed is bought linearly
    # with current while delay saturates.
    pdps = [p.pdp_fo4 for p in points]
    assert pdps[-1] > pdps[0]

    benchmark.extra_info["optimum_iss_ua"] = result.optimum_iss() * 1e6
    benchmark.extra_info["fo1_delay_at_50ua_ps"] = round(
        min(points, key=lambda p: abs(p.iss - uA(50))).delay_fo1 * 1e12, 2)
    benchmark.extra_info["paper_fo1_delay_ps"] = 23.97
