"""Benchmark (extension): the system-level software attack study.

Instruction-level CPA on the firmware around the ISE: the protected
unit's own cycles resist, everything the software touches in CMOS
breaks — the precise boundary of the paper's block-level security
claim, and the motivation for the full-core study (bench_scope.py).
"""

from conftest import run_once

from repro.experiments import software_attack


def test_system_level_attack_matrix(benchmark):
    result = run_once(benchmark, software_attack.main)

    assert result.matches_expectation()
    sw = result.scenario("software lookup", "full")
    protected = result.scenario("ISE, protected path", "sbox")
    leak_back = result.scenario("ISE, protected path", "full")

    assert sw.broken and sw.peak_rho > 0.8
    assert not protected.broken and protected.rank > 10
    assert leak_back.broken  # state moves through CMOS memory

    benchmark.extra_info["ranks"] = {
        f"{s.name}/{s.window}": s.rank for s in result.scenarios}
