"""Shared benchmark plumbing.

Every benchmark regenerates one table or figure of the paper and prints
the paper-vs-measured rows (captured with ``pytest benchmarks/
--benchmark-only -s``).  Experiments run once per benchmark (rounds=1):
the quantity of interest is the experimental result, the timing is a
bonus.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
