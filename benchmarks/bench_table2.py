"""Benchmark T2: regenerate Table 2 (PG-MCML library area/delay).

Areas are reproduced exactly from the layout model; delays are
re-characterised at transistor level for a representative subset
(full-library characterisation is the slow variant below).
"""

import pytest
from conftest import run_once

from repro.experiments import table2


def test_table2_datasheet_and_spice_subset(benchmark):
    result = run_once(benchmark, table2.main)
    assert result.mean_ratio == pytest.approx(1.6, abs=0.05)
    buf = result.row_for("BUF")
    # Our generic 90 nm process is faster than the authors' PDK, but the
    # characterised delay must be the right order of magnitude.
    assert 0.3 < buf.spice_delay_ps / buf.paper_delay_ps < 3.0
    benchmark.extra_info["mean_area_ratio"] = result.mean_ratio
    benchmark.extra_info["buf_delay_ps"] = buf.spice_delay_ps


def test_table2_spice_ordering(benchmark):
    """Characterised delays must order like the paper's column."""
    cells = ("BUF", "AND2", "AND3", "MUX2", "XOR2")
    result = run_once(benchmark, table2.run, cells)
    measured = {r.cell: r.spice_delay_ps for r in result.rows
                if r.spice_delay_ps is not None}
    assert measured["BUF"] < measured["AND2"]
    assert measured["AND2"] < measured["AND3"]
    benchmark.extra_info["delays_ps"] = {
        k: round(v, 2) for k, v in measured.items()}
