"""Benchmark (extension): protection scope — S-box ISE vs full AES core.

Quantifies the §2 trade the paper takes for granted: protecting only the
critical operation (the ISE) vs moving the whole cipher into PG-MCML.
The full core is a complete round-based AES-128 built from the same
16-cell library, functionally verified against FIPS-197 inside the run.
"""

import pytest
from conftest import run_once

from repro.aes import encrypt_block
from repro.cells import build_pg_mcml_library
from repro.experiments import scope
from repro.netlist import LogicSimulator
from repro.synth import build_aes_core, encrypt_with_core


def test_scope_comparison(benchmark):
    result = run_once(benchmark, scope.main)

    ise = result.row("PG-MCML S-box ISE")
    core = result.row("full PG-MCML core")

    # The ISE is the cheap island the paper argues for...
    assert result.area_ratio() > 3.0
    assert core.cells > 4 * ise.cells
    # ... but with power gating BOTH approaches idle at micro-watts:
    # the historical "MCML everywhere is prohibitive" power argument
    # dissolves once the sleep transistor exists; area remains the cost.
    assert core.avg_power_w < 3.0 * ise.avg_power_w

    benchmark.extra_info["area_ratio"] = round(result.area_ratio(), 2)
    benchmark.extra_info["power_uw"] = {
        "ise": round(ise.avg_power_w * 1e6, 2),
        "full_core": round(core.avg_power_w * 1e6, 2),
    }


def test_full_core_functional(benchmark):
    """The protected core must still be AES: FIPS-197 under the clock."""
    core = build_aes_core(build_pg_mcml_library())
    sim = LogicSimulator(core.netlist)
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    pt = bytes.fromhex("00112233445566778899aabbccddeeff")

    def encrypt():
        return encrypt_with_core(core, sim, pt, key)

    ct = run_once(benchmark, encrypt)
    assert ct == encrypt_block(pt, key)
    assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"
    benchmark.extra_info["cells"] = core.cells()
    benchmark.extra_info["gated_cells"] = core.sleep_tree.n_gated_cells
