"""Benchmark (extension): the §2 related-work argument, quantified.

DyCML / SABL / MDPL vs CMOS / MCML / PG-MCML on the S-box ISE block:
power at the paper's duty, idle power, area, and the two practicality
axes (commodity EDA flow, per-gate clock).  PG-MCML must come out as
the only DPA-resistant style that is simultaneously micro-watt idle and
deployable with an unmodified flow — the paper's thesis.
"""

import pytest
from conftest import run_once

from repro.experiments import related


def test_related_work_positioning(benchmark):
    result = run_once(benchmark, related.main)

    pg = result.row("pgmcml")
    mcml = result.row("mcml")
    sabl = result.row("sabl")
    mdpl = result.row("mdpl")
    dycml = result.row("dycml")

    # PG-MCML idle power beats every other resistant style by >>10x.
    for other in (mcml, sabl, mdpl, dycml):
        assert pg.idle_power_w < other.idle_power_w / 10.0

    # The precharge styles burn full-clock dynamic power forever.
    assert sabl.power_at_duty_w > 50 * pg.power_at_duty_w
    assert mdpl.power_at_duty_w > 50 * pg.power_at_duty_w

    # DyCML is the closest competitor on power but loses the flow axes.
    assert dycml.power_at_duty_w < mcml.power_at_duty_w
    assert not dycml.commodity_eda
    assert dycml.needs_gate_clock

    # MDPL pays the largest area (4-5x CMOS per its paper).
    assert mdpl.area_um2 == max(r.area_um2 for r in result.rows)

    # The headline: PG-MCML wins on both axes simultaneously.
    assert set(result.pg_wins_on()) == {"idle power", "flow practicality"}

    benchmark.extra_info["idle_power_uw"] = {
        r.style: round(r.idle_power_w * 1e6, 2) for r in result.rows}
