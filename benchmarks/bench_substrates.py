"""Throughput benchmarks of the substrates themselves.

Unlike the experiment benchmarks, these time the engines the
reproduction is built on: the analog solver, the event-driven logic
simulator, the CPU model, and the CPA kernel.  Useful when optimising.
"""

import numpy as np
import pytest

from repro.cells import (
    McmlCellGenerator,
    build_cmos_library,
    build_pg_mcml_library,
    function,
    solve_bias,
)
from repro.cpu import aes_firmware
from repro.netlist import LogicSimulator
from repro.sca import cpa_attack
from repro.sca.leakage import all_guess_hypotheses
from repro.spice import Circuit, Pulse, run_transient
from repro.synth import build_sbox_ise, simulate_sbox_word
from repro.units import ns, ps, uA


def test_spice_transient_buffer(benchmark):
    """Transistor-level transient of an MCML buffer (~800 steps)."""
    bias = solve_bias(uA(50))
    gen = McmlCellGenerator(sizing=bias.sizing)

    def run():
        cell = gen.build(function("BUF"), load_cap=2e-15)
        ckt = cell.circuit
        ckt.v("vdd", cell.vdd_net, 1.2)
        ckt.v("vvn", cell.vn_net, bias.sizing.vn)
        ckt.v("vvp", cell.vp_net, bias.sizing.vp)
        hi, lo = bias.sizing.input_high(), bias.sizing.input_low()
        p, n = cell.input_nets["A"]
        ckt.v("vp_in", p, Pulse(lo, hi, ns(0.2), ps(10), ps(10), ns(0.4)))
        ckt.v("vn_in", n, Pulse(hi, lo, ns(0.2), ps(10), ps(10), ns(0.4)))
        return run_transient(ckt, tstop=ns(1), dt=ps(2))

    result = benchmark(run)
    assert result.current("vdd").average() > uA(20)


def test_logic_sim_sbox_throughput(benchmark):
    """Event-driven words/second through the mapped S-box ISE."""
    ise = build_sbox_ise(build_pg_mcml_library())
    sim = LogicSimulator(ise.netlist)
    words = [0x00112233, 0xDEADBEEF, 0xCAFEBABE, 0x01234567]

    def run():
        return [simulate_sbox_word(ise, sim, w) for w in words]

    results = benchmark(run)
    assert len(results) == len(words)


def test_cpu_aes_block(benchmark):
    """Instructions/second of the processor model on one AES block."""
    fw = aes_firmware(n_blocks=1, use_ise=True)
    key = bytes(range(16))
    pt = [bytes(range(16))]

    def run():
        return fw.run(key, pt)

    cts, stats = benchmark(run)
    assert stats.cycles > 1000


def test_cpa_kernel(benchmark):
    """The 256-guess x 256-trace x 80-sample correlation kernel."""
    rng = np.random.default_rng(0)
    traces = rng.normal(size=(256, 80))
    pts = list(range(256))
    hypotheses = all_guess_hypotheses(pts)
    traces[:, 40] += hypotheses[0x2B]

    def run():
        return cpa_attack(traces, pts, true_key=0x2B)

    result = benchmark(run)
    assert result.succeeded
