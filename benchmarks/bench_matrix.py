"""Benchmark (extension): the attack × countermeasure campaign grid.

The matrix target on its smoke grid: CMOS vs. WDDL under first-order
CPA, second-order CPA, MLPA and TVLA.  The assertions pin the headline
the grid exists to show — the same attack budget that breaks CMOS does
not break WDDL — plus the engineering properties (acquisition dedupe,
no failed cells on a well-formed grid).
"""

from conftest import run_once

from repro.experiments import matrix
from repro.sca import TVLA_THRESHOLD


def test_matrix_smoke_grid(benchmark):
    report = run_once(benchmark, matrix.main)

    by_cell = {(c.cell.style, c.cell.attack): c for c in report.cells}
    assert all(c.ok for c in report.cells)

    # CMOS: first-order CPA recovers the key within the smoke budget.
    cmos_cpa = by_cell[("cmos", "cpa")]
    assert cmos_cpa.success_rate == 1.0
    assert cmos_cpa.mtd is not None

    # WDDL: the identical budget does not disclose the key to the
    # Hamming-weight CPA — but MLPA's regression basis absorbs the
    # arbitrary signed rail-imbalance weights and recovers it, the
    # wrong-model-vs-right-model gap the matrix exists to expose.
    wddl_cpa = by_cell[("wddl", "cpa")]
    assert wddl_cpa.success_rate == 0.0
    assert wddl_cpa.guessing_entropy > 0.0
    assert by_cell[("wddl", "mlpa")].success_rate == 1.0

    # TVLA still detects both (constant switching hides the key from
    # CPA; the residual rail imbalance is still t-test visible).
    assert by_cell[("cmos", "tvla")].max_abs_t > TVLA_THRESHOLD
    assert by_cell[("wddl", "tvla")].leak_detected

    # Dedupe: cpa/cpa2/mlpa share each style's random-schedule trace
    # set, so the grid composes fewer sets than it has cells.
    assert report.acquisitions < len(report.cells)
    assert report.acquisitions_reused > 0

    benchmark.extra_info["acquisitions"] = report.acquisitions
    benchmark.extra_info["guessing_entropy"] = {
        f"{s}/{a}": round(c.guessing_entropy, 1)
        for (s, a), c in by_cell.items()
        if c.guessing_entropy is not None}
