"""Benchmark T3: regenerate Table 3 (S-box ISE in three styles).

Covers claim X2 (§6): MCML power cut by ~10^4 through gating; PG-MCML
lands below leakage-dominated CMOS at the paper's 0.01 % ISE duty.
"""

import pytest
from conftest import run_once

from repro.experiments import table3
from repro.experiments.table3 import PAPER_TABLE3


def test_table3_full_pipeline(benchmark):
    result = run_once(benchmark, table3.main, 2)

    cells = {r.style: r.cells for r in result.rows}
    areas = {r.style: r.area_um2 for r in result.rows}
    delays = {r.style: r.delay_ns for r in result.rows}
    power_paper_duty = {r.style: r.avg_power_at_paper_duty_w
                        for r in result.rows}

    # Cell counts: ordering and CMOS/MCML ratio.
    assert cells["cmos"] > cells["pgmcml"] > cells["mcml"]
    assert cells["cmos"] / cells["mcml"] == pytest.approx(
        PAPER_TABLE3["cmos"][0] / PAPER_TABLE3["mcml"][0], abs=0.25)

    # Areas: differential block ~2.5x the CMOS one; PG slightly above MCML.
    assert areas["mcml"] / areas["cmos"] == pytest.approx(2.53, abs=0.6)
    assert areas["pgmcml"] > areas["mcml"]

    # Delays: CMOS < MCML < PG-MCML, PG overhead a few percent.
    assert delays["cmos"] < delays["mcml"] < delays["pgmcml"]
    assert delays["pgmcml"] / delays["mcml"] < 1.05

    # Power at the paper's duty: who wins and by roughly what factor.
    assert result.power_ratio_at_paper_duty("mcml", "pgmcml") > 1e3
    assert power_paper_duty["pgmcml"] < power_paper_duty["cmos"]
    assert power_paper_duty["pgmcml"] == pytest.approx(47.77e-6, rel=0.5)

    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["power_uw_at_paper_duty"] = {
        k: round(v * 1e6, 2) for k, v in power_paper_duty.items()}
    benchmark.extra_info["measured_duty_pct"] = result.measured_duty * 100


def test_table3_duty_sweep(benchmark):
    """PG-MCML average power scales linearly with the ISE duty — the
    design's whole value proposition."""
    def sweep():
        return [table3.run(n_blocks=1, duty_override=d)
                for d in (1e-4, 1e-3, 1e-2)]

    results = run_once(benchmark, sweep)
    powers = [r.row("pgmcml").avg_power_w for r in results]
    assert powers[0] < powers[1] < powers[2]
    # An order of magnitude in duty is roughly an order in power once
    # above the leakage floor.
    assert powers[2] / powers[1] == pytest.approx(10.0, rel=0.4)
    benchmark.extra_info["pg_power_uw_vs_duty"] = [
        round(p * 1e6, 2) for p in powers]
