"""Benchmark: parallel trace acquisition vs serial, byte for byte.

Times a 256-trace fig6-style CPA campaign (CMOS target, the heaviest
per-trace style) serially and with a 4-worker pool, proves the two
trace matrices are byte-identical and the CPA verdict unchanged, and
records traces/sec for both in ``BENCH_acquisition.json`` at the repo
root.

Also measures the observability layer (``repro.obs``) on the serial
path: one run with a live Telemetry handle (its metrics registry
snapshot lands in the JSON under ``telemetry``) and the no-telemetry
run time it is compared against — the disabled path must stay within
2 % of a run with no handles at all, which is what
``telemetry_overhead_pct`` records.

The speedup itself is machine-dependent (a single-core container can
only demonstrate equality, not scaling), so the ≥2.5x acceptance bar
is asserted only where at least 4 CPUs are visible; the JSON always
records what was measured plus the cpu count it was measured on.
"""

import json
import os
import time

import numpy as np
import pytest
from conftest import run_once

from repro.cells import build_cmos_library
from repro.obs import Telemetry
from repro.sca import AttackCampaign
from repro.sca.acquisition import resolve_backend

N_TRACES = 256
WORKERS = 4
KEY = 0x2B

#: Acquirer lockstep block sizes timed for the ``batch`` section.  The
#: per-trace event simulation dominates this path, so batching buys
#: little here — the section's job is regression proof (byte-identical
#: matrices at every size), with the wall-clock recorded for context.
BATCH_SIZES = (1, 8, 32)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(_REPO_ROOT, "BENCH_acquisition.json")


def _timed_campaign(campaign, **kwargs):
    begin = time.perf_counter()
    result = campaign.run(list(range(N_TRACES)), **kwargs)
    return result, time.perf_counter() - begin


def _disabled_path_overhead_pct(serial_s: float) -> dict:
    """Measured cost of the no-op telemetry path on the serial run.

    The serial campaign above runs with NULL_TELEMETRY, whose calls are
    cached no-ops; the disabled "overhead" is those calls' cost.  The
    bench's instrumentation is chunk-level (a handful of calls per
    16-trace chunk plus one span per acquire), so we time the no-op
    call directly and scale by the calls the serial path actually
    makes.
    """
    from repro.obs import NULL_TELEMETRY

    n = 200_000
    begin = time.perf_counter()
    for _ in range(n):
        NULL_TELEMETRY.counter("bench").inc()
    per_call_s = (time.perf_counter() - begin) / n
    # Serial path: ~4 no-op touches per chunk (branch + span + two
    # metric sites) + 2 per acquire call; be pessimistic and charge 8.
    chunks = -(-N_TRACES // 16)
    calls = 8 * chunks + 2
    return {
        "null_call_ns": round(per_call_s * 1e9, 2),
        "disabled_calls_charged": calls,
        "disabled_overhead_pct": round(
            100.0 * calls * per_call_s / serial_s, 5),
    }


def run_comparison():
    library = build_cmos_library()
    serial_result, serial_s = _timed_campaign(
        AttackCampaign(library, KEY), workers=1)
    parallel_result, parallel_s = _timed_campaign(
        AttackCampaign(library, KEY), workers=WORKERS)

    # Telemetry-enabled serial run: registry numbers for the report and
    # proof that instrumentation changes nothing.
    telemetry = Telemetry()
    observed_result, observed_s = _timed_campaign(
        AttackCampaign(library, KEY, telemetry=telemetry), workers=1)

    # Batched acquirer blocks: same campaign at each lockstep size.
    batch_section = {"batch_sizes": list(BATCH_SIZES),
                     "batch_seconds": {}, "byte_identical": {}}
    for batch in BATCH_SIZES:
        batch_result, batch_s = _timed_campaign(
            AttackCampaign(library, KEY), workers=1, batch=batch)
        batch_section["batch_seconds"][str(batch)] = round(batch_s, 4)
        batch_section["byte_identical"][str(batch)] = bool(
            np.array_equal(serial_result.traces, batch_result.traces))

    report = {
        "experiment": "fig6-style CPA acquisition, cmos target",
        "n_traces": N_TRACES,
        "workers": WORKERS,
        "backend": resolve_backend("auto", WORKERS),
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "serial_traces_per_sec": round(N_TRACES / serial_s, 2),
        "parallel_traces_per_sec": round(N_TRACES / parallel_s, 2),
        "speedup": round(serial_s / parallel_s, 3),
        "byte_identical": bool(np.array_equal(serial_result.traces,
                                              parallel_result.traces)),
        "cpa_rank_serial": serial_result.rank,
        "cpa_rank_parallel": parallel_result.rank,
        "batch": batch_section,
        "telemetry": {
            "enabled_serial_seconds": round(observed_s, 4),
            "enabled_serial_traces_per_sec": round(
                N_TRACES / observed_s, 2),
            "byte_identical_with_telemetry": bool(np.array_equal(
                serial_result.traces, observed_result.traces)),
            # The serial/parallel runs above carry NULL_TELEMETRY —
            # their time *is* the disabled path; positive means
            # enabling telemetry cost that much.
            "enabled_overhead_pct": round(
                (observed_s / serial_s - 1.0) * 100.0, 2),
            "registry": telemetry.registry.snapshot(),
            **_disabled_path_overhead_pct(serial_s),
        },
    }
    with open(RESULT_PATH, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report, serial_result, parallel_result


def test_acquisition_parallel_equivalence_and_throughput(benchmark):
    report, serial_result, parallel_result = run_once(benchmark,
                                                      run_comparison)
    assert report["byte_identical"]
    assert np.array_equal(serial_result.cpa.peak_per_guess,
                          parallel_result.cpa.peak_per_guess)
    assert report["cpa_rank_serial"] == report["cpa_rank_parallel"]
    assert report["telemetry"]["byte_identical_with_telemetry"]
    assert all(report["batch"]["byte_identical"].values()), report["batch"]
    assert report["telemetry"]["registry"].get("sca.acquisition.traces", {}
                                               ).get("value") == N_TRACES
    assert report["telemetry"]["disabled_overhead_pct"] <= 2.0, report
    if (os.cpu_count() or 1) >= WORKERS:
        assert report["speedup"] >= 2.5, report
    benchmark.extra_info.update(report)


def main():
    report, _, _ = run_comparison()
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {RESULT_PATH}")
    return report


if __name__ == "__main__":
    main()
