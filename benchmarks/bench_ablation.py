"""Benchmarks A1/A2: the §4 topology study and the §5 Vt assignment.

A1 replays Fig. 2's design-space argument at transistor level: the
series sleep transistor (d) is the only topology that wakes within a
fraction of a clock cycle AND cuts the sleep current by >10^3 AND costs
a single device.  A2 shows why the paper mixes Vt flavours.
"""

import pytest
from conftest import run_once

from repro.cells import PowerGateTopology
from repro.experiments import ablation


def test_topology_study(benchmark):
    topo, vt = run_once(benchmark, ablation.main)

    d = topo.point(PowerGateTopology.SERIES_SLEEP)
    a = topo.point(PowerGateTopology.BIAS_PULLDOWN)
    c = topo.point(PowerGateTopology.BODY_BIAS)

    # (d): fast wake, huge on/off ratio, accurate bias current.
    assert topo.chosen_is_best()
    assert d.wake_time < 0.5e-9
    assert d.on_off_ratio > 1e3
    assert d.active_current == pytest.approx(50e-6, rel=0.15)

    # (a): cannot recharge the bias line within the window (slow wake).
    assert a.wake_time is None or a.wake_time > 2.0 * d.wake_time

    # (c): misses the current target within a practical bias range —
    # the paper's -0.5..1 V requirement made it impractical.
    assert abs(c.active_current - 50e-6) > 0.3 * 50e-6

    benchmark.extra_info["sleep_na"] = {
        p.topology.value: round(p.sleep_current * 1e9, 3)
        for p in topo.points}

    # A2: Vt flavours.
    mix = vt.point("paper mix (hvt core, lvt loads)")
    lvt = vt.point("all low-Vt")
    hvt = vt.point("all high-Vt")
    assert lvt.sleep_current > 10 * mix.sleep_current   # leaky in sleep
    assert hvt.delay > 1.5 * mix.delay                  # slow loads
    benchmark.extra_info["vt_sleep_na"] = {
        "mix": round(mix.sleep_current * 1e9, 3),
        "all_lvt": round(lvt.sleep_current * 1e9, 3),
    }

    # Granularity (§4): coarse gating is prohibitive for constant-current
    # logic; fine grain costs the Table 1 site delta and wakes per cell.
    gran = ablation.run_granularity()
    fine = gran.point("fine (per cell)")
    coarse = gran.point("coarse (per block)")
    assert fine.area_overhead_pct < 10.0 < coarse.area_overhead_pct
    assert fine.wake_time < coarse.wake_time
    benchmark.extra_info["granularity_area_pct"] = {
        "fine": round(fine.area_overhead_pct, 2),
        "coarse": round(coarse.area_overhead_pct, 2),
    }


def test_corner_robustness(benchmark):
    """§4: 'to ensure a correct functionality in all the process
    corners' — the chosen topology keeps working at every corner."""
    from repro.cells import PgMcmlCellGenerator, function, solve_bias
    from repro.spice import DC, solve_dc
    from repro.tech import corner

    def run_corners():
        bias = solve_bias(50e-6, gated=True)
        rows = {}
        for name in ("tt", "ff", "ss", "fs", "sf"):
            tech = corner(name).technology()
            gen = PgMcmlCellGenerator(tech, bias.sizing)
            cell = gen.build(function("BUF"))
            ckt = cell.circuit
            ckt.v("vdd", cell.vdd_net, tech.vdd)
            ckt.v("vvn", cell.vn_net, bias.sizing.vn)
            ckt.v("vvp", cell.vp_net, bias.sizing.vp)
            ckt.v("vsleep", cell.sleep_net, tech.vdd)
            hi = bias.sizing.input_high(tech)
            lo = bias.sizing.input_low(tech)
            p, n = cell.input_nets["A"]
            ckt.v("vinp", p, DC(hi))
            ckt.v("vinn", n, DC(lo))
            op = solve_dc(ckt)
            out_p, out_n = cell.output_nets["Y"]
            rows[name] = (op.current("vdd"), op[out_p] - op[out_n])
        return rows

    rows = run_once(benchmark, run_corners)
    for name, (iss, swing) in rows.items():
        assert swing > 0.15, f"corner {name} lost the logic level"
        assert 10e-6 < iss < 200e-6, f"corner {name} bias current broken"
    benchmark.extra_info["iss_ua_per_corner"] = {
        k: round(v[0] * 1e6, 1) for k, v in rows.items()}
