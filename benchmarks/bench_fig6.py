"""Benchmark F6: regenerate Fig. 6 (CPA per logic style) + ablation A3.

The security headline: CPA with the HW(S-box out) model over all 256
plaintexts recovers the key from the CMOS implementation and fails
against both MCML and PG-MCML.  The ablation sweeps the attacker's
instrument resolution against PG-MCML.
"""

import pytest
from conftest import run_once

from repro.experiments import fig6


def test_fig6_cpa_outcomes(benchmark):
    result = run_once(benchmark, fig6.main)
    assert result.matches_paper()
    assert result.rank("cmos") == 0
    assert result.rank("mcml") > 5
    assert result.rank("pgmcml") > 5
    assert result.distinguishability("cmos") > 1.2
    assert result.distinguishability("pgmcml") < 1.0
    benchmark.extra_info["ranks"] = {
        s: result.rank(s) for s in ("cmos", "mcml", "pgmcml")}
    benchmark.extra_info["margins"] = {
        s: round(result.distinguishability(s), 3)
        for s in ("cmos", "mcml", "pgmcml")}


def test_fig6_multiple_keys(benchmark):
    """'We repeatedly attacked all the implementations' — the outcome
    pattern must hold across secret keys, not for one lucky byte."""
    def campaign():
        return [fig6.run(key=k) for k in (0x2B, 0x7E, 0xC4)]

    results = run_once(benchmark, campaign)
    for res in results:
        assert res.matches_paper(), f"key {res.key:#04x}"
    benchmark.extra_info["keys"] = [hex(r.key) for r in results]


def test_fig6_key_sweep_success_rates(benchmark):
    """'All the attacks on the CMOS implementations were successful,
    while none of the ones performed on conventional MCML as well as on
    PG-MCML were able to reveal the secret key' — as success rates over
    a key sample, for both CPA and the (multi-bit) DPA of the title."""
    from repro.cells import build_cmos_library, build_pg_mcml_library
    from repro.sca import AttackCampaign

    keys = [0x00, 0x2B, 0x55, 0x7E, 0xA1, 0xC4, 0xE7, 0xFF]

    def sweep():
        rates = {}
        for build in (build_cmos_library, build_pg_mcml_library):
            lib = build()
            cpa_wins = dpa_wins = 0
            for key in keys:
                result = AttackCampaign(lib, key).run(with_dpa=True)
                cpa_wins += result.succeeded
                dpa_wins += result.dpa.succeeded
            rates[lib.style] = (cpa_wins / len(keys),
                                dpa_wins / len(keys))
        return rates

    rates = run_once(benchmark, sweep)
    cpa_cmos, dpa_cmos = rates["cmos"]
    cpa_pg, dpa_pg = rates["pgmcml"]
    assert cpa_cmos >= 0.85   # "all successful" (allow one unlucky key)
    assert dpa_cmos >= 0.75
    assert cpa_pg == 0.0      # "none ... able to reveal the secret key"
    assert dpa_pg == 0.0
    benchmark.extra_info["success_rates"] = {
        "cmos": {"cpa": cpa_cmos, "dpa": dpa_cmos},
        "pgmcml": {"cpa": cpa_pg, "dpa": dpa_pg},
    }


def test_fig6_across_dies(benchmark):
    """Mismatch is random per die: the resistance claim must hold for
    *any* fabricated chip, not one lucky mismatch draw."""
    def campaign():
        return [fig6.run(mismatch_seed=seed) for seed in (0, 17, 4242)]

    results = run_once(benchmark, campaign)
    for res in results:
        assert res.succeeded("cmos")
        assert not res.succeeded("mcml")
        assert not res.succeeded("pgmcml")
    benchmark.extra_info["pg_rank_per_die"] = [
        r.rank("pgmcml") for r in results]


def test_fig6_cpa_evolution(benchmark):
    """Correlation vs trace count: on CMOS the true key escapes the
    wrong-key envelope and stays out; on PG-MCML it never does."""
    from repro.cells import build_cmos_library, build_pg_mcml_library
    from repro.sca import AttackCampaign, cpa_evolution

    def evolve():
        out = {}
        for build in (build_cmos_library, build_pg_mcml_library):
            campaign = AttackCampaign(build(), 0x2B)
            result = campaign.run()
            out[result.style] = cpa_evolution(
                result.traces, result.plaintexts, true_key=0x2B, step=32)
        return out

    curves = run_once(benchmark, evolve)
    assert curves["cmos"].escape_count() is not None
    assert curves["cmos"].final_rank() == 0
    assert curves["pgmcml"].escape_count() is None
    benchmark.extra_info["cmos_escape_at"] = curves["cmos"].escape_count()


def test_fig6_resolution_ablation(benchmark):
    """A3: how good a probe would the attacker need?  At the paper's
    1 uA resolution PG-MCML resists; only an unrealistically ideal
    probe starts seeing the mismatch residuals."""
    result = run_once(benchmark, fig6.resolution_ablation)
    by_res = {row["resolution_ua"]: row for row in result.rows}
    assert by_res[1.0]["succeeded"] == 0.0   # the paper's instrument
    # Finer probes must not *reduce* the information available.
    peaks = [row["true_peak"] for row in result.rows]
    assert peaks[-1] >= peaks[0] - 0.05
    benchmark.extra_info["rank_vs_resolution"] = {
        f"{k}uA": int(v["rank"]) for k, v in by_res.items()}
