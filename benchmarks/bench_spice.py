"""Benchmark: vectorized device-bank MNA assembly vs the reference loop.

Times cell-level transients with both assemblies (selected through
``REPRO_SPICE_ASSEMBLY``) and records the results in
``BENCH_spice.json`` at the repo root:

* a single PG-MCML buffer driven through a full 256-step switching
  window — the smallest realistic workload, where ufunc dispatch and
  the scalar loop roughly break even;
* an 8-buffer PG-MCML chain (~80 devices), the headline: the batched
  EKV evaluation amortises dispatch across the device axis and must be
  ≥3× faster than the loop;
* 256 per-trace buffer testbenches (pulse polarity driven by the
  plaintext's low bit) marched through the lockstep batched transient
  engine at batch sizes 1 / 8 / 32 — batch=1 is the serial oracle, the
  batched chunks must match it to ≤1e-9 V and batch=32 must be ≥4×
  faster;
* the 256-trace serial CPA acquisition of ``bench_acquisition.py``,
  re-timed under the bank default and compared against the reference
  numbers in ``BENCH_acquisition.json``.  That path is logic-sim plus
  power models — no SPICE in the per-trace loop — so its role here is
  regression proof: the verdict (CPA rank) and throughput must not
  degrade with the bank assembly active.

Every timing is a best-of-``REPEATS`` wall clock; the bank and loop
solutions of each transient are compared point for point so the JSON
also certifies the assemblies agree (≤1e-9 V across the whole wave).

The ``@slow`` sparse section (CI job ``sparse-bench``) adds the PR 8
cases: a full S-box-unit DC solve where the sparse CSC assembly must
beat the dense banks ≥5× with ≤1e-9 V divergence, and a factor-timing
probe of the complete PG-MCML AES core (72k unknowns) that only the
sparse path can represent at all.
"""

import json
import os
import time

import numpy as np
import pytest
from conftest import run_once

from repro.cells import build_cmos_library, build_pg_mcml_library
from repro.cells.functions import function
from repro.cells.pgmcml import PgMcmlCellGenerator
from repro.sca import AttackCampaign
from repro.spice import Circuit, run_transient_batch
from repro.spice.dc import _ASSEMBLY_ENV
from repro.spice.stimulus import Pulse
from repro.spice.transient import run_transient
from repro.tech import TECH90

N_STEPS = 256
CHAIN_LEN = 8
REPEATS = 3
N_TRACES = 256
KEY = 0x2B

#: Lockstep batched-transient case: 256 per-trace testbenches, chunked
#: at each of these batch sizes (1 = the serial oracle).
BATCH_TRACES = 256
BATCH_SIZES = (1, 8, 32)
BATCH_STEPS = 64

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(_REPO_ROOT, "BENCH_spice.json")
ACQ_REFERENCE_PATH = os.path.join(_REPO_ROOT, "BENCH_acquisition.json")

#: Interconnect resistance between chained buffer stages, ohms.
WIRE_RES = 10.0

#: Output load per stage, farads.
LOAD_CAP = 2e-15


def build_chain(n_cells: int):
    """``n_cells`` PG-MCML buffers in one circuit, wired in series.

    Returns ``(circuit, window)`` with a full-swing differential pulse
    on the first stage's input and every rail / bias / sleep net tied
    to its DC source — the same testbench shape as
    ``repro.cells.characterize``, scaled across cells.
    """
    tech = TECH90
    gen = PgMcmlCellGenerator(tech)
    ckt = Circuit(f"pg_chain{n_cells}")
    cells = [gen.build(function("BUF"), circuit=ckt, prefix=f"u{i}_",
                       load_cap=LOAD_CAP)
             for i in range(n_cells)]
    tied = set()
    for cell in cells:
        for short, net, value in (("vdd", cell.vdd_net, tech.vdd),
                                  ("vvn", cell.vn_net, gen.sizing.vn),
                                  ("vvp", cell.vp_net, gen.sizing.vp),
                                  ("vslp", cell.sleep_net, tech.vdd)):
            if net not in tied:
                tied.add(net)
                ckt.v(f"{short}_{net}", net, value)
    window = N_STEPS * 1e-12
    edge = 10e-12
    vdd, swing = tech.vdd, gen.sizing.swing
    in_p, in_n = cells[0].input_nets["A"]
    ckt.v("vin_p", in_p, Pulse(vdd - swing, vdd, window / 2, edge, edge,
                               window, 0.0))
    ckt.v("vin_n", in_n, Pulse(vdd, vdd - swing, window / 2, edge, edge,
                               window, 0.0))
    for i in range(n_cells - 1):
        out_p, out_n = next(iter(cells[i].output_nets.values()))
        nxt_p, nxt_n = cells[i + 1].input_nets["A"]
        ckt.resistor(f"rw{i}_p", out_p, nxt_p, WIRE_RES)
        ckt.resistor(f"rw{i}_n", out_n, nxt_n, WIRE_RES)
    return ckt, window


def _timed_transient(circuit, window, assembly):
    """Best-of-``REPEATS`` transient wall time under one assembly."""
    previous = os.environ.get(_ASSEMBLY_ENV)
    os.environ[_ASSEMBLY_ENV] = assembly
    try:
        best, result = None, None
        for _ in range(REPEATS):
            begin = time.perf_counter()
            result = run_transient(circuit, tstop=window,
                                   dt=window / N_STEPS)
            elapsed = time.perf_counter() - begin
            if best is None or elapsed < best:
                best = elapsed
    finally:
        if previous is None:
            os.environ.pop(_ASSEMBLY_ENV, None)
        else:
            os.environ[_ASSEMBLY_ENV] = previous
    return result, best


def _transient_case(name: str, n_cells: int) -> dict:
    circuit, window = build_chain(n_cells)
    bank_result, bank_s = _timed_transient(circuit, window, "bank")
    loop_result, loop_s = _timed_transient(circuit, window, "loop")
    max_delta = max(
        float(np.max(np.abs(bank_result.voltages[node]
                            - loop_result.voltages[node])))
        for node in bank_result.voltages)
    return {
        "case": name,
        "devices": len(circuit.devices),
        "steps": N_STEPS,
        "bank_seconds": round(bank_s, 4),
        "loop_seconds": round(loop_s, 4),
        "speedup": round(loop_s / bank_s, 3),
        "max_voltage_delta": max_delta,
    }


def build_trace_lane(plaintext: int):
    """One PG-MCML buffer testbench for one acquisition trace.

    The differential input pulse's polarity is the plaintext's low bit
    — every lane shares the template's topology and stimulus
    breakpoints (the lockstep requirements), only stimulus values
    differ, exactly like a campaign's per-plaintext testbenches.
    """
    circuit, window = build_chain(1)
    if plaintext & 1:
        sources = {s.name: s for s in circuit.vsources}
        p, n = sources["vin_p"], sources["vin_n"]
        p.stimulus, n.stimulus = n.stimulus, p.stimulus
    return circuit, window


def _batched_transient_case() -> dict:
    """256 one-buffer traces at batch 1 / 8 / 32, vs the serial oracle.

    The batch=1 pass runs the plain serial engine — its waveforms are
    the oracle every batched chunk is compared against (≤1e-9 V), and
    its wall time is the speedup baseline.
    """
    lanes = []
    window = None
    for i in range(BATCH_TRACES):
        circuit, window = build_trace_lane(i)
        lanes.append(circuit)
    dt = window / BATCH_STEPS
    timings = {}
    oracle = None
    worst = 0.0
    for batch in BATCH_SIZES:
        begin = time.perf_counter()
        if batch == 1:
            results = [run_transient(ckt, tstop=window, dt=dt)
                       for ckt in lanes]
        else:
            results = []
            for b0 in range(0, BATCH_TRACES, batch):
                results.extend(run_transient_batch(
                    lanes[b0:b0 + batch], tstop=window, dt=dt))
        timings[batch] = time.perf_counter() - begin
        if batch == 1:
            oracle = results
        else:
            worst = max(worst, max(
                float(np.max(np.abs(ref.voltages[node]
                                    - res.voltages[node])))
                for ref, res in zip(oracle, results)
                for node in ref.voltages))
    return {
        "case": f"batched_acquisition_{BATCH_TRACES}",
        "traces": BATCH_TRACES,
        "steps": BATCH_STEPS,
        "assembly": "bank",
        "batch_sizes": list(BATCH_SIZES),
        "batch_seconds": {str(b): round(timings[b], 4)
                          for b in BATCH_SIZES},
        "traces_per_sec": {str(b): round(BATCH_TRACES / timings[b], 2)
                           for b in BATCH_SIZES},
        "speedup_batch8": round(timings[1] / timings[8], 3),
        "speedup_batch32": round(timings[1] / timings[32], 3),
        "max_voltage_delta_vs_serial": worst,
    }


def _serial_acquisition() -> dict:
    """Serial 256-trace CPA under the bank default, vs the reference."""
    library = build_cmos_library()
    campaign = AttackCampaign(library, KEY)
    begin = time.perf_counter()
    result = campaign.run(list(range(N_TRACES)), workers=1)
    elapsed = time.perf_counter() - begin
    entry = {
        "n_traces": N_TRACES,
        "serial_seconds": round(elapsed, 4),
        "serial_traces_per_sec": round(N_TRACES / elapsed, 2),
        "cpa_rank": result.rank,
    }
    if os.path.exists(ACQ_REFERENCE_PATH):
        with open(ACQ_REFERENCE_PATH) as fh:
            reference = json.load(fh)
        entry["reference_serial_seconds"] = reference["serial_seconds"]
        entry["reference_cpa_rank"] = reference["cpa_rank_serial"]
        entry["delta_vs_reference_pct"] = round(
            (elapsed / reference["serial_seconds"] - 1.0) * 100.0, 2)
    return entry


def run_comparison():
    report = {
        "experiment": "device-bank vs reference-loop MNA assembly",
        "cpu_count": os.cpu_count(),
        "assembly_env": os.environ.get(_ASSEMBLY_ENV, "bank"),
        "transients": [
            _transient_case("pgmcml_buffer", 1),
            _transient_case(f"pgmcml_chain{CHAIN_LEN}", CHAIN_LEN),
        ],
        "batched": _batched_transient_case(),
        "acquisition": _serial_acquisition(),
    }
    with open(RESULT_PATH, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report


def test_bank_assembly_speedup_and_equivalence(benchmark):
    report = run_once(benchmark, run_comparison)
    by_case = {entry["case"]: entry for entry in report["transients"]}
    chain = by_case[f"pgmcml_chain{CHAIN_LEN}"]
    assert chain["speedup"] >= 3.0, chain
    for entry in report["transients"]:
        assert entry["max_voltage_delta"] <= 1e-9, entry
    batched = report["batched"]
    assert batched["speedup_batch32"] >= 4.0, batched
    assert batched["max_voltage_delta_vs_serial"] <= 1e-9, batched
    acq = report["acquisition"]
    assert acq["cpa_rank"] == 0, acq
    if "reference_cpa_rank" in acq:
        assert acq["cpa_rank"] == acq["reference_cpa_rank"], acq
    benchmark.extra_info.update(report)


# -- sparse CSC assembly vs the dense banks (PR 8) ----------------------------
#
# Run separately (CI job ``sparse-bench``; ``pytest -m slow``): the
# honest dense baseline at S-box-unit scale takes ~30 s of LAPACK, and
# the AES-core case elaborates 144k devices.

def _sbox_unit_testbench():
    """One PG-MCML AES S-box LUT (≈400 cells), ready for a DC solve."""
    from repro.synth import (attach_core_testbench, elaborate_netlist,
                             map_lut, sbox_truth_tables)
    lib = build_pg_mcml_library()
    block = map_lut(lib, sbox_truth_tables(),
                    [f"a{i}" for i in range(8)], name="sbox_bench")
    elab = elaborate_netlist(block.netlist)
    attach_core_testbench(
        elab, {f"a{i}": bool((0x53 >> (7 - i)) & 1) for i in range(8)})
    return elab


def _sparse_sbox_case() -> dict:
    """DC solve of the S-box unit: sparse vs dense-bank, same circuit.

    The headline gate: splu on the canonical CSC pattern must beat the
    dense LAPACK factorization ≥5× at this scale, with every node
    voltage within 1e-9 V.
    """
    from repro.spice import solve_dc
    from repro.spice.dc import System

    elab = _sbox_unit_testbench()
    timings, ops, iters = {}, {}, {}
    for assembly in ("bank", "sparse"):
        sys_ = System(elab.circuit, assembly=assembly)
        begin = time.perf_counter()
        op = solve_dc(elab.circuit, system=sys_)
        timings[assembly] = time.perf_counter() - begin
        ops[assembly] = op
        iters[assembly] = op.diagnostics.total_iterations
    max_delta = max(abs(ops["sparse"].voltages[n] - ops["bank"].voltages[n])
                    for n in ops["bank"].voltages)
    return {
        "case": "pgmcml_sbox_unit_dc",
        "devices": len(elab.circuit.devices),
        "unknowns": System(elab.circuit).n,
        "bank_seconds": round(timings["bank"], 4),
        "sparse_seconds": round(timings["sparse"], 4),
        "speedup_sparse": round(timings["bank"] / timings["sparse"], 3),
        "newton_iterations": iters,
        "max_voltage_delta": max_delta,
    }


def _sparse_aes_core_case() -> dict:
    """Sparse-only scale probe: the full PG-MCML AES core.

    No dense baseline exists here — a dense Jacobian at 72k unknowns
    is ~40 GB — so the case records what the sparse path achieves:
    pattern construction, one Newton assembly, and two numeric
    factorizations (the second shows the cached index plans leave only
    splu itself on the per-iteration path).
    """
    from repro.netlist import LogicSimulator
    from repro.spice.dc import System
    from repro.synth import (attach_core_testbench, build_aes_core,
                             elaborate_netlist, initial_point)

    core = build_aes_core(build_pg_mcml_library())
    begin = time.perf_counter()
    elab = elaborate_netlist(core.netlist, sleep_tree=core.sleep_tree)
    elaborate_s = time.perf_counter() - begin
    inputs = {f"pt{i}": i % 3 == 0 for i in range(128)}
    inputs.update({f"key{i}": i % 5 == 0 for i in range(128)})
    inputs.update({"clk": False, "load": True})
    attach_core_testbench(elab, inputs)
    sim = LogicSimulator(core.netlist)
    sim.initialize(inputs)
    ic = initial_point(elab, sim.values)

    begin = time.perf_counter()
    sys_ = System(elab.circuit, assembly="sparse")
    asm = sys_.sparse_assembly()
    pattern_s = time.perf_counter() - begin
    fixed = elab.circuit.fixed_nodes(0.0)
    x = np.array([ic.voltages[n] for n in sys_.unknowns])
    begin = time.perf_counter()
    f, data = sys_.residual_and_jacobian(x, fixed, 0.0)
    assemble_s = time.perf_counter() - begin
    factor_s = []
    for _ in range(2):
        begin = time.perf_counter()
        dx, singular = asm.solve(data, -f)
        factor_s.append(time.perf_counter() - begin)
    return {
        "case": "pgmcml_aes_core_sparse",
        "devices": len(elab.circuit.devices),
        "unknowns": sys_.n,
        "nnz": asm.nnz,
        "dense_jacobian_gigabytes": round(sys_.n * sys_.n * 8 / 1e9, 1),
        "elaborate_seconds": round(elaborate_s, 2),
        "pattern_seconds": round(pattern_s, 2),
        "assemble_seconds": round(assemble_s, 3),
        "factor_seconds": [round(s, 2) for s in factor_s],
        "singular_events": int(singular),
        "dx_finite": bool(np.all(np.isfinite(dx))),
    }


def run_sparse_comparison():
    """The sparse-assembly report, merged into ``BENCH_spice.json``."""
    sparse_report = {
        "experiment": "sparse CSC vs dense-bank MNA assembly",
        "sbox": _sparse_sbox_case(),
        "aes_core": _sparse_aes_core_case(),
    }
    report = {}
    if os.path.exists(RESULT_PATH):
        with open(RESULT_PATH) as fh:
            report = json.load(fh)
    report["sparse"] = sparse_report
    with open(RESULT_PATH, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return sparse_report


@pytest.mark.slow
def test_sparse_assembly_speedup_and_scale(benchmark):
    report = run_once(benchmark, run_sparse_comparison)
    sbox = report["sbox"]
    assert sbox["speedup_sparse"] >= 5.0, sbox
    assert sbox["max_voltage_delta"] <= 1e-9, sbox
    assert (sbox["newton_iterations"]["sparse"]
            == sbox["newton_iterations"]["bank"]), sbox
    core = report["aes_core"]
    assert core["dx_finite"], core
    assert core["unknowns"] > 50_000, core
    assert max(core["factor_seconds"]) < 120.0, core
    benchmark.extra_info.update(report)


def main():
    report = run_comparison()
    report["sparse"] = run_sparse_comparison()
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {RESULT_PATH}")
    return report


if __name__ == "__main__":
    main()
