"""Benchmark F5: regenerate Fig. 5 (gated vs ungated ISE current).

The oscilloscope picture: conventional MCML flat at the full tail
current; PG-MCML at its leakage floor except inside the sleep window
around a SubBytes burst, with the sleep signal plotted alongside.
"""

import pytest
from conftest import run_once

from repro.experiments import fig5


def test_fig5_waveform(benchmark):
    result = run_once(benchmark, fig5.main)

    # Conventional MCML: flat, tens of mA (paper shows ~30 mA).
    assert result.mcml_current.swing() == 0.0
    assert 10.0 < result.mcml_flat_ma < 400.0

    # PG-MCML: reaches the MCML level when awake...
    assert result.pg_peak_ma == pytest.approx(result.mcml_flat_ma, rel=0.05)
    # ... and is 'almost negligible' when asleep.
    assert result.on_off_ratio > 1e3

    # The sleep signal leads the burst by the insertion delay.
    t_on, _ = result.window
    rise = result.sleep_signal.first_crossing(0.6, "rise")
    assert rise == pytest.approx(t_on, abs=1e-10)

    # Window length: same order as the 14.4 ns the paper annotates.
    assert 5.0 < result.window_length_ns() < 60.0

    benchmark.extra_info["mcml_flat_ma"] = round(result.mcml_flat_ma, 2)
    benchmark.extra_info["pg_floor_ua"] = round(result.pg_floor_ua, 3)
    benchmark.extra_info["window_ns"] = round(result.window_length_ns(), 2)
    benchmark.extra_info["paper_window_ns"] = 14.421


def test_fig5_full_block_timeline(benchmark):
    """Every wake window across a whole AES block stays bounded and the
    awake fraction matches the schedule arithmetic."""
    result = run_once(benchmark, fig5.run, 1)
    schedule = result.schedule
    assert len(schedule.windows) >= 10  # one burst per AES round
    total = schedule.windows[-1][1]
    fraction = schedule.awake_fraction(0.0, total)
    assert 0.0 < fraction < 0.5
    benchmark.extra_info["n_wake_windows"] = len(schedule.windows)
    benchmark.extra_info["awake_fraction"] = round(fraction, 4)
