"""Benchmark T1: regenerate Table 1 (MCML vs PG-MCML cell areas).

Also checks claim X1 (§4): ~6 % mean sleep-transistor area overhead.
"""

from conftest import run_once

from repro.experiments import table1


def test_table1_areas(benchmark):
    result = run_once(benchmark, table1.main)
    assert result.max_abs_error_um2() < 1e-3
    assert abs(result.mean_overhead_pct - 5.56) < 0.5
    benchmark.extra_info["mean_overhead_pct"] = result.mean_overhead_pct
    benchmark.extra_info["paper_overhead_pct"] = "~6"
