"""Benchmark (extension): TVLA leakage assessment per logic style.

Non-specific fixed-vs-random t-test — the evaluation a modern reviewer
would run alongside Fig. 6's CPA.  Expected: CMOS leaks hardest; the
differential styles carry only the mismatch residual, far weaker but
detectable (leakage is reduced, not eliminated — exactly what the later
side-channel literature found for MCML-class logic).
"""

from conftest import run_once

from repro.experiments import tvla
from repro.sca import TVLA_THRESHOLD


def test_tvla_styles(benchmark):
    result = run_once(benchmark, tvla.main)

    cmos = result.row("cmos")
    mcml = result.row("mcml")
    pg = result.row("pgmcml")

    # CMOS is flagrantly leaky.
    assert cmos.leaks
    assert cmos.max_abs_t > TVLA_THRESHOLD

    # All three styles are t-test *detectable* (mismatch is physics),
    # but the exploitable amplitude differs by orders of magnitude.
    assert cmos.max_abs_delta > 10.0 * mcml.max_abs_delta
    assert cmos.max_abs_delta > 10.0 * pg.max_abs_delta
    # PG gating does not add leakage beyond conventional MCML's ballpark.
    assert pg.max_abs_delta < 2.0 * mcml.max_abs_delta

    benchmark.extra_info["max_abs_t"] = {
        r.style: round(r.max_abs_t, 2) for r in result.rows}
    benchmark.extra_info["amplitude_ua"] = {
        r.style: round(r.max_abs_delta * 1e6, 3) for r in result.rows}


def test_tvla_detection_threshold_ordering(benchmark):
    """CMOS must be detected with no more traces than MCML needs."""
    from repro.cells import build_cmos_library, build_mcml_library

    def thresholds():
        return (tvla.detection_threshold(build_cmos_library),
                tvla.detection_threshold(build_mcml_library))

    t_cmos, t_mcml = run_once(benchmark, thresholds)
    assert t_cmos is not None
    if t_mcml is not None:
        assert t_cmos <= t_mcml
    benchmark.extra_info["traces_to_detection"] = {
        "cmos": t_cmos, "mcml": t_mcml}
